"""Table 5 — index sizes as the dataset size grows.

The paper's Table 5 reports index sizes in megabytes for 4-64 million
points.  The headline observations the reproduction checks: WaZI's size is
essentially identical to Base (the workload-aware layout costs no extra
space), the grid/cracking indexes (Flood, QUASII) are smaller than the
clustered tree indexes, and every index grows linearly with the data.
"""

import pytest

from benchmarks.common import (
    MAIN_INDEXES,
    MID_SELECTIVITY,
    SCALING_SIZES,
    build_named_index,
    dataset,
    measure_index,
    print_results_table,
    print_section,
    range_workload,
)

REGION = "iberia"
NUM_QUERIES = 80


@pytest.fixture(scope="module")
def size_results():
    results = {}
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    for size in SCALING_SIZES:
        points = dataset(REGION, size)
        results[size] = {
            name: measure_index(name, points, workload.queries[:5], point_queries=())
            for name in MAIN_INDEXES
        }
    return results


def test_table5_index_size(benchmark, size_results):
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    points = dataset(REGION, SCALING_SIZES[0])
    index = build_named_index("WaZI", points, workload.queries)
    benchmark.pedantic(index.size_bytes, rounds=10, iterations=1)

    print_section(f"Table 5: index size (MB), {REGION}")
    rows = []
    for size in SCALING_SIZES:
        rows.append(
            [size]
            + [size_results[size][name].size_bytes / (1024 * 1024) for name in MAIN_INDEXES]
        )
    print_results_table("size in MB", ["Size"] + list(MAIN_INDEXES), rows)

    # Shape checks mirroring the paper's Table 5.
    for size in SCALING_SIZES:
        base_size = size_results[size]["Base"].size_bytes
        wazi_size = size_results[size]["WaZI"].size_bytes
        assert wazi_size <= 1.35 * base_size, "WaZI should cost (almost) no extra space"
    for name in MAIN_INDEXES:
        small = size_results[SCALING_SIZES[0]][name].size_bytes
        large = size_results[SCALING_SIZES[-1]][name].size_bytes
        ratio = large / small
        expected_ratio = SCALING_SIZES[-1] / SCALING_SIZES[0]
        assert 0.4 * expected_ratio <= ratio <= 2.5 * expected_ratio, (
            f"{name} size does not grow roughly linearly"
        )
