"""Sharded-serving benchmark: throughput scaling + zero-copy memory accounting.

Exercises the serving stack end to end — build the index offline, split it
into Z-range shards (``repro.serving.build_shards``), open the shard
directory with mmap'd columns, and serve a range-query batch — and checks
three things:

1. **Exactness** — the merged sharded results are byte-identical to the
   unsharded engine's (contents *and* ordering), with in-process backends
   and with real worker processes.  Per-worker query streams derived with
   ``common.worker_seed`` replay identically sharded and unsharded.
2. **Throughput scaling** — per-shard busy times (reported by every
   backend reply) model the critical path of a W-worker deployment:
   ``T_W = max over workers of (sum of its shards' busy seconds)`` under
   the round-robin shard→worker assignment ``open_sharded`` uses.  The
   modeled speedup ``T_1(unsharded) / T_8`` must reach ``--min-speedup``
   (default 3.0; the full run serves a 1M-point dataset).  The model is
   what a W-core machine would see; real wall-clock with forked workers is
   also measured and reported, but not asserted — this container may have
   a single core, where process parallelism cannot help wall time.
3. **Memory** — workers open shards with ``mmap=True``: every column must
   be served from the file mapping (``column_info``), and the per-worker
   Rss/Pss readings show each extra worker costs page tables, not another
   copy of the columns.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py           # full, 1M points
    PYTHONPATH=src python benchmarks/bench_serve.py --quick   # CI-sized canary

Writes a report to ``results/bench_serve.txt`` and exits non-zero on a
correctness failure or when the modeled 8-worker speedup falls below the
threshold (full run only).
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

# Script mode puts benchmarks/ (not the repo root) on sys.path.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import DEFAULT_SEED, worker_seed, write_json_report
from repro.serving import build_shards, open_sharded
from repro.workloads import generate_dataset, generate_range_workload
from repro.zindex import ZIndex

WORKER_COUNTS = (1, 2, 4, 8)


def _same_results(expect, got) -> bool:
    if len(expect) != len(got):
        return False
    for e, g in zip(expect, got):
        ex, ey = e.as_arrays()
        gx, gy = g.as_arrays()
        if not (np.array_equal(ex, gx) and np.array_equal(ey, gy)):
            return False
    return True


def _model_critical_path(busy, workers: int) -> float:
    """Wall time of a W-worker deployment: the busiest worker's busy sum.

    Mirrors ``spawn_shard_backends``'s round-robin assignment
    (shard ``i`` → worker ``i % W``); scatters pipeline, so a worker's
    requests serialize while distinct workers overlap.
    """
    loads = [0.0] * workers
    for shard_id, seconds in enumerate(busy):
        loads[shard_id % workers] += seconds
    return max(loads)


def _fmt_bytes(value) -> str:
    if value is None:
        return "n/a"
    return f"{value / 1e6:8.1f}MB"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: 50k points, scaling reported but not asserted")
    parser.add_argument("--region", default="newyork")
    parser.add_argument("--num-points", type=int, default=None)
    parser.add_argument("--num-queries", type=int, default=None)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="Fail when the modeled 8-worker speedup over the "
                             "unsharded engine drops below this (full run only)")
    parser.add_argument("--report", default="results/bench_serve.txt")
    args = parser.parse_args(argv)

    num_points = args.num_points if args.num_points is not None else (
        50_000 if args.quick else 1_000_000
    )
    num_queries = args.num_queries if args.num_queries is not None else (
        60 if args.quick else 200
    )
    leaf_capacity = 256
    selectivity = 0.0256

    lines = []

    def emit(text=""):
        print(text, flush=True)
        lines.append(text)

    failures = []

    emit(f"serving benchmark: {args.region} n={num_points} queries={num_queries} "
         f"shards={args.shards} L={leaf_capacity} seed={args.seed}")

    points = generate_dataset(args.region, num_points, seed=args.seed)
    queries = generate_range_workload(
        args.region, num_queries, selectivity_percent=selectivity, seed=args.seed
    ).queries

    started = time.perf_counter()
    index = ZIndex(points, leaf_capacity=leaf_capacity, use_skipping=True)
    emit(f"built unsharded index in {time.perf_counter() - started:.1f}s "
         f"({len(index.leaflist)} leaves)")

    # -- T1: the unsharded single-process reference -----------------------
    index.range_count(index.extent())  # warm the flat cache + walk lists
    index.batch_range_query(queries[:5])
    started = time.perf_counter()
    expect = index.batch_range_query(queries)
    t1 = time.perf_counter() - started
    total_hits = sum(r.count() for r in expect)
    emit(f"unsharded batch: {t1 * 1e3:.1f}ms for {num_queries} queries "
         f"({total_hits} rows)")

    tmpdir = Path(tempfile.mkdtemp(prefix="bench_serve_"))
    try:
        started = time.perf_counter()
        plan = build_shards(
            index, tmpdir / "shards", num_shards=args.shards, workload=queries
        )
        emit(f"built {plan.num_shards} workload-balanced Z-range shards in "
             f"{time.perf_counter() - started:.1f}s "
             f"(rows per shard: {[s.num_points for s in plan.shards]})")

        # -- exactness + the busy-time model (in-process backends) --------
        with open_sharded(tmpdir / "shards", workers=0) as sharded:
            info = sharded.column_info()
            unmapped = [
                entry for entry in info
                if entry["store"] != "MmapColumnStore"
                or not all(entry["mapped"].values())
            ]
            if unmapped:
                failures.append(f"{len(unmapped)} shard(s) not fully mmap-served")
            emit(f"shard columns: {info[0]['store']}, all mapped="
                 f"{not unmapped} "
                 f"({sum(e['column_bytes'] for e in info) / 1e6:.1f}MB total)")

            # Warm every shard: fault the mmap pages in and materialise the
            # per-shard scalar-walk caches before timing.
            sharded.range_count(index.extent())
            sharded.batch_range_query(queries[:5])
            sharded.reset_busy()
            started = time.perf_counter()
            merged = sharded.batch_range_query(queries)
            scatter_wall = time.perf_counter() - started
            busy = list(sharded.shard_busy_seconds)

            if not _same_results(expect, merged):
                failures.append("merged sharded results differ from unsharded")
            emit(f"merged results byte-identical: {_same_results(expect, merged)}")
            emit(f"in-process scatter wall: {scatter_wall * 1e3:.1f}ms, "
                 f"busy sum {sum(busy) * 1e3:.1f}ms, "
                 f"max shard {max(busy) * 1e3:.1f}ms")

            emit("")
            emit("modeled scaling (critical path of round-robin workers):")
            emit(f"  {'workers':>8} {'T_model_ms':>11} {'speedup_vs_T1':>14}")
            model_speedups = {}
            for workers in WORKER_COUNTS:
                if workers > plan.num_shards:
                    continue
                t_model = _model_critical_path(busy, workers)
                model_speedups[workers] = t1 / t_model if t_model > 0 else float("inf")
                emit(f"  {workers:>8} {t_model * 1e3:>11.1f} "
                     f"{model_speedups[workers]:>13.2f}x")

        # -- real worker processes: exactness + wall + memory -------------
        emit("")
        emit("worker processes (wall clock is core-bound; reported, not asserted):")
        for workers in (1, min(8, plan.num_shards)):
            with open_sharded(tmpdir / "shards", workers=workers) as sharded:
                sharded.batch_range_query(queries[:5])
                started = time.perf_counter()
                merged = sharded.batch_range_query(queries)
                wall = time.perf_counter() - started
                if not _same_results(expect, merged):
                    failures.append(
                        f"worker-backed results differ from unsharded (W={workers})"
                    )
                readings = sharded.worker_rss()
                hosts = {}
                for backend, reading in zip(sharded._backends, readings):
                    hosts[backend.host.pid] = reading
                emit(f"  W={workers}: wall {wall * 1e3:.1f}ms, byte-identical="
                     f"{_same_results(expect, merged)}")
                for pid, reading in sorted(hosts.items()):
                    emit(f"    pid {pid}: rss {_fmt_bytes(reading['rss_bytes'])}  "
                         f"pss {_fmt_bytes(reading['pss_bytes'])}  "
                         f"private {_fmt_bytes(reading['private_bytes'])}")

        # -- satellite: per-worker seeded streams replay identically ------
        emit("")
        replay_ok = True
        with open_sharded(tmpdir / "shards", workers=0) as sharded:
            for shard_id in range(plan.num_shards):
                stream = generate_range_workload(
                    args.region, 8, selectivity_percent=selectivity,
                    seed=worker_seed(args.seed, shard_id),
                ).queries
                if not _same_results(
                    index.batch_range_query(stream),
                    sharded.batch_range_query(stream),
                ):
                    replay_ok = False
                    failures.append(
                        f"worker-seeded stream {shard_id} replayed differently"
                    )
        emit(f"per-worker seeded streams (worker_seed) replay identically: {replay_ok}")
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    status = 0
    if failures:
        emit("")
        emit("FAILED:")
        for failure in failures:
            emit(f"  {failure}")
        status = 1
    elif not args.quick:
        top = max(w for w in model_speedups)
        if model_speedups[top] < args.min_speedup:
            emit("")
            emit(f"FAILED: modeled {top}-worker speedup "
                 f"{model_speedups[top]:.2f}x below {args.min_speedup:.1f}x")
            status = 1
    if status == 0:
        emit("")
        emit("OK")

    report = Path(args.report)
    report.parent.mkdir(parents=True, exist_ok=True)
    report.write_text("\n".join(lines) + "\n")
    print(f"report written to {report}")
    write_json_report("bench_serve", {
        "scatter_wall_seconds": scatter_wall,
        "busy_seconds_sum": sum(busy),
        "model_speedups": {str(w): s for w, s in model_speedups.items()},
        "min_speedup_threshold": args.min_speedup,
        "failures": len(failures),
    })
    return status


if __name__ == "__main__":
    sys.exit(main())
