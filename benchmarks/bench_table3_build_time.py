"""Table 3 — index construction time as the dataset size grows.

The paper's Table 3 reports build seconds for the six indexes from 4 to 64
million points: STR is cheapest, Flood next, Base linear, CUR and WaZI a
few times Base (density estimation / cost search), and QUASII by far the
most expensive.  The reproduction sweeps the scaled-down sizes and checks
the ordering (STR fastest, WaZI costlier than Base, build time growing with
size).
"""

import pytest

from benchmarks.common import (
    MAIN_INDEXES,
    MID_SELECTIVITY,
    SCALING_SIZES,
    build_named_index,
    dataset,
    measure_index,
    print_results_table,
    print_section,
    range_workload,
)

REGION = "calinev"
NUM_QUERIES = 100


@pytest.fixture(scope="module")
def build_time_results():
    results = {}
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    for size in SCALING_SIZES:
        points = dataset(REGION, size)
        results[size] = {
            name: measure_index(name, points, workload.queries, point_queries=())
            for name in MAIN_INDEXES
        }
    return results


def test_table3_build_time(benchmark, build_time_results):
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    points = dataset(REGION, SCALING_SIZES[1])
    benchmark.pedantic(
        lambda: build_named_index("Base", points, workload.queries), rounds=2, iterations=1
    )

    print_section(f"Table 3: build time (seconds), {REGION}")
    rows = []
    for size in SCALING_SIZES:
        rows.append(
            [size] + [build_time_results[size][name].build_seconds for name in MAIN_INDEXES]
        )
    print_results_table("build seconds", ["Size"] + list(MAIN_INDEXES), rows)

    # Shape checks mirroring the paper's Table 3.
    largest = SCALING_SIZES[-1]
    at_largest = build_time_results[largest]
    assert at_largest["STR"].build_seconds <= at_largest["WaZI"].build_seconds
    assert at_largest["Base"].build_seconds <= at_largest["WaZI"].build_seconds
    for name in MAIN_INDEXES:
        assert (
            build_time_results[largest][name].build_seconds
            > build_time_results[SCALING_SIZES[0]][name].build_seconds
        )
