"""Figure 10 — point-query latency as the dataset size grows.

Point queries are sampled from the data distribution (Section 6.4).  The
paper finds WaZI and Base fastest (cheap per-node computations in the
quaternary tree), Flood close behind, the R-tree packings slower, and
QUASII slowest because of its fractured layout.
"""

import pytest

from benchmarks.common import (
    MAIN_INDEXES,
    MID_SELECTIVITY,
    SCALING_SIZES,
    build_named_index,
    dataset,
    measure_index,
    point_workload,
    print_results_table,
    print_section,
    range_workload,
)

REGION = "japan"
NUM_QUERIES = 100


@pytest.fixture(scope="module")
def point_query_results():
    results = {}
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    for size in SCALING_SIZES:
        points = dataset(REGION, size)
        queries = point_workload(REGION, size)
        results[size] = {
            name: measure_index(name, points, workload.queries, point_queries=queries)
            for name in MAIN_INDEXES
        }
    return results


def test_fig10_point_query_scaling(benchmark, point_query_results):
    size = SCALING_SIZES[2]
    points = dataset(REGION, size)
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    queries = point_workload(REGION, size)
    index = build_named_index("WaZI", points, workload.queries)
    benchmark.pedantic(
        lambda: [index.point_query(q) for q in queries], rounds=3, iterations=1
    )

    print_section(f"Figure 10: point query latency vs dataset size ({REGION})")
    rows = []
    for size in SCALING_SIZES:
        rows.append(
            [size] + [point_query_results[size][name].point_mean_micros for name in MAIN_INDEXES]
        )
    print_results_table("mean point-query latency (us)", ["Size"] + list(MAIN_INDEXES), rows)

    filtered_rows = []
    for size in SCALING_SIZES:
        filtered_rows.append(
            [size]
            + [
                point_query_results[size][name].point_stats.per_query("points_filtered")
                for name in MAIN_INDEXES
            ]
        )
    print_results_table(
        "points inspected per point query", ["Size"] + list(MAIN_INDEXES), filtered_rows
    )

    # Shape checks: the Z-index family answers point queries with less point
    # inspection than QUASII's fractured layout at the largest size, and
    # WaZI stays within a small factor of Base.
    largest = SCALING_SIZES[-1]
    wazi = point_query_results[largest]["WaZI"]
    base = point_query_results[largest]["Base"]
    quasii = point_query_results[largest]["QUASII"]
    assert wazi.point_stats.per_query("points_filtered") <= 2.0 * base.point_stats.per_query(
        "points_filtered"
    )
    assert wazi.point_mean_micros < quasii.point_mean_micros
