"""Smoke benchmark: correctness + speedup canary for the kNN/join engine.

Companion to ``bench_smoke.py`` for the two non-range scenarios of the
paper's Section 6.3 remark.  Runs in seconds (``--quick``) or under a
minute (full) and checks two things for every index in the Z-index family:

1. **Exactness** — ``batch_knn``, ``batch_radius_query`` and the batched
   join operators return *byte-identical* results (contents and order) to
   the scalar expanding-window / filter-and-refine decomposition the seed
   implemented (``SpatialIndex.knn`` + one ``range_query`` per probe), and
   kNN distances match a NumPy brute-force oracle.
2. **Speedup** — the aggregate wall-clock of the batched scenarios beats
   the scalar decomposition by at least ``--min-speedup``.  kNN dominates
   the aggregate (the scalar path pays a Python distance sort per window);
   the joins contribute smaller amortisation/refinement gains.

Usage::

    PYTHONPATH=src python benchmarks/bench_knn_join.py            # full
    PYTHONPATH=src python benchmarks/bench_knn_join.py --quick    # CI canary

A full run also writes the measurement table to
``results/bench_knn_join.txt`` (``--report`` overrides the path; pass
``--report ""`` to skip).  Exit status is non-zero on a correctness
failure or when the aggregate speedup falls below the threshold.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from contextlib import contextmanager

import numpy as np

# Script mode puts benchmarks/ (not the repo root) on sys.path.
from pathlib import Path
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import write_json_report
from repro.core import WaZI
from repro.geometry import Rect
from repro.interfaces import SpatialIndex
from repro.joins import box_join, knn_join, radius_join
from repro.workloads import (
    dataset_extent,
    generate_dataset,
    generate_probe_points,
    generate_range_workload,
)
from repro.zindex import BaseZIndex

#: Query-window selectivity (percent of data-space area) of the join windows.
JOIN_SELECTIVITY_PERCENT = 0.0256


# ---------------------------------------------------------------------------
# scalar reference decompositions (the seed's per-probe hot paths, pinned)
# ---------------------------------------------------------------------------
def scalar_knn_workload(index, probes, k):
    """One ``SpatialIndex.knn`` (expanding window + Python sort) per probe."""
    knn = SpatialIndex.knn
    return [knn(index, probe, k) for probe in probes]


def scalar_box_join(index, probes, half_width):
    pairs = []
    for probe in probes:
        window = Rect(
            probe.x - half_width, probe.y - half_width,
            probe.x + half_width, probe.y + half_width,
        )
        for match in index.range_query(window):
            pairs.append((probe, match))
    return pairs


def scalar_radius_join(index, probes, radius):
    radius_squared = radius * radius
    pairs = []
    for probe in probes:
        window = Rect(probe.x - radius, probe.y - radius, probe.x + radius, probe.y + radius)
        for candidate in index.range_query(window):
            if candidate.distance_squared(probe) <= radius_squared:
                pairs.append((probe, candidate))
    return pairs


def scalar_knn_join(index, probes, k):
    knn = SpatialIndex.knn
    return [(probe, knn(index, probe, k)) for probe in probes]


# ---------------------------------------------------------------------------
# measurement helpers
# ---------------------------------------------------------------------------
@contextmanager
def _gc_paused():
    """Collect once, then keep the collector out of the timed region."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def measure_millis(fn, repeats):
    """Best-of-``repeats`` wall clock of ``fn()`` in milliseconds."""
    best = float("inf")
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    return best * 1e3


def knn_oracle_distances(xs, ys, center, k):
    """Sorted squared distances of the true k nearest points (NumPy oracle)."""
    dx = xs - center.x
    dy = ys - center.y
    d2 = dx * dx
    d2 += dy * dy
    k = min(k, d2.size)
    return np.sort(np.partition(d2, k - 1)[:k]).tolist()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: 20k points, fewer probes, relaxed threshold")
    parser.add_argument("--region", default="newyork")
    parser.add_argument("--num-points", type=int, default=None)
    parser.add_argument("--num-probes", type=int, default=None)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="Fail when the aggregate batch/scalar speedup drops "
                             "below this (default 2.0, or 1.2 with --quick)")
    parser.add_argument("--report", default=None,
                        help="Write the measurement table to this path "
                             "(default results/bench_knn_join.txt on full runs)")
    args = parser.parse_args(argv)

    num_points = args.num_points or (20_000 if args.quick else 100_000)
    num_probes = args.num_probes or (30 if args.quick else 100)
    min_speedup = args.min_speedup if args.min_speedup is not None else (
        1.2 if args.quick else 2.0
    )
    repeats = 2 if args.quick else 3
    report_path = args.report
    if report_path is None and not args.quick:
        report_path = "results/bench_knn_join.txt"

    lines = []

    def emit(text=""):
        print(text)
        lines.append(text)

    emit(f"dataset: {args.region} n={num_points} probes={num_probes} "
         f"k={args.k} seed={args.seed}")
    points = generate_dataset(args.region, num_points, seed=args.seed)
    xs = np.fromiter((p.x for p in points), dtype=np.float64, count=num_points)
    ys = np.fromiter((p.y for p in points), dtype=np.float64, count=num_points)
    probes = generate_probe_points(args.region, num_probes, seed=args.seed)
    extent = dataset_extent(args.region)
    half_width = float(np.sqrt(extent.area * JOIN_SELECTIVITY_PERCENT / 100.0)) / 2.0
    workload = generate_range_workload(args.region, 50, JOIN_SELECTIVITY_PERCENT,
                                       seed=args.seed)

    failures = 0
    scalar_total = 0.0
    batch_total = 0.0
    emit(f"{'index':>6} {'scenario':>12} {'scalar':>10} {'batch':>10} "
         f"{'speedup':>8}  result")
    for index_name, factory in (
        ("WaZI", lambda: WaZI(points, workload.queries, leaf_capacity=64, seed=args.seed)),
        ("Base", lambda: BaseZIndex(points, leaf_capacity=64)),
    ):
        index = factory()

        # -- exactness ---------------------------------------------------
        batch_neighbours = index.batch_knn(probes, args.k)
        if batch_neighbours != scalar_knn_workload(index, probes, args.k):
            emit(f"FAIL: {index_name} batch_knn differs from the scalar decomposition")
            failures += 1
        if [index.knn(p, args.k) for p in probes] != batch_neighbours:
            emit(f"FAIL: {index_name} knn differs from batch_knn")
            failures += 1
        for probe, neighbours in zip(probes[:20], batch_neighbours):
            got = [p.distance_squared(probe) for p in neighbours]
            if got != knn_oracle_distances(xs, ys, probe, args.k):
                emit(f"FAIL: {index_name} kNN distances differ from brute force at {probe}")
                failures += 1
                break
        if box_join(index, probes, half_width) != scalar_box_join(index, probes, half_width):
            emit(f"FAIL: {index_name} box_join differs from the scalar decomposition")
            failures += 1
        if radius_join(index, probes, half_width) != scalar_radius_join(index, probes, half_width):
            emit(f"FAIL: {index_name} radius_join differs from the scalar decomposition")
            failures += 1
        if knn_join(index, probes, args.k) != scalar_knn_join(index, probes, args.k):
            emit(f"FAIL: {index_name} knn_join differs from the scalar decomposition")
            failures += 1

        # -- latency -----------------------------------------------------
        scenarios = (
            (f"knn k={args.k}",
             lambda: scalar_knn_workload(index, probes, args.k),
             lambda: index.batch_knn(probes, args.k),
             f"{sum(len(r) for r in batch_neighbours)} neighbours"),
            ("box join",
             lambda: scalar_box_join(index, probes, half_width),
             lambda: box_join(index, probes, half_width),
             f"{len(box_join(index, probes, half_width))} pairs"),
            ("radius join",
             lambda: scalar_radius_join(index, probes, half_width),
             lambda: radius_join(index, probes, half_width),
             f"{len(radius_join(index, probes, half_width))} pairs"),
            (f"knn join k={args.k}",
             lambda: scalar_knn_join(index, probes, args.k),
             lambda: knn_join(index, probes, args.k),
             f"{num_probes * args.k} pairs"),
        )
        for label, scalar_fn, batch_fn, result_note in scenarios:
            scalar_ms = measure_millis(scalar_fn, repeats=repeats)
            batch_ms = measure_millis(batch_fn, repeats=repeats)
            scalar_total += scalar_ms
            batch_total += batch_ms
            emit(f"{index_name:>6} {label:>12} {scalar_ms:>8.1f}ms {batch_ms:>8.1f}ms "
                 f"{scalar_ms / batch_ms:>7.2f}x  {result_note}")

    speedup = scalar_total / batch_total
    emit()
    emit(f"aggregate speedup (scalar / batch over all scenarios): "
         f"{speedup:.2f}x  (threshold {min_speedup:.1f}x)")

    if report_path:
        with open(report_path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"report written to {report_path}")

    write_json_report("bench_knn_join", {
        "num_points": num_points,
        "num_probes": num_probes,
        "k": args.k,
        "aggregate_speedup": speedup,
        "min_speedup_threshold": min_speedup,
        "failures": failures,
    })

    if failures:
        print(f"\nFAILED: {failures} correctness failure(s)")
        return 1
    if speedup < min_speedup:
        print(f"\nFAILED: aggregate speedup {speedup:.2f}x below {min_speedup:.1f}x")
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
