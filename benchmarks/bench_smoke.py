"""Smoke benchmark: correctness + speedup canary for the columnar engine.

Runs in seconds (``--quick``) or about a minute (full), making it suitable
for CI, unlike the full figure suite.  It checks three things:

1. **Exactness** — WaZI's vectorized ``range_query`` and
   ``batch_range_query`` return byte-identical result sets to a NumPy
   brute-force scan and to each other, across the Figure 6 selectivity grid.
2. **Speedup** — the vectorized engine is compared against a pinned
   *reference scalar engine*: a faithful reproduction of the pre-columnar
   (seed) hot path — two-corner projection walking boxed ``LeafEntry``
   objects, per-point Python filtering, and the same logical counter
   bookkeeping.  Both run against the identical WaZI layout, so the ratio
   isolates the storage/query-engine change.
3. **Update throughput** — a burst of inserts exercising the incremental
   leaf-split repair (the seed rebuilt the whole LeafList per overflow).

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py            # full, asserts >= 5x
    PYTHONPATH=src python benchmarks/bench_smoke.py --quick    # CI-sized canary

Exit status is non-zero on a correctness failure or when the mean speedup
falls below ``--min-speedup`` (default 5.0 full / 1.5 quick).
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from contextlib import contextmanager

import numpy as np

# Script mode puts benchmarks/ (not the repo root) on sys.path.
from pathlib import Path
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import write_json_report
from repro.core import WaZI
from repro.evaluation.metrics import CostCounters
from repro.geometry import Point
from repro.storage.leaflist import END_OF_LIST
from repro.workloads import generate_dataset, generate_range_workload
from repro.zindex import BaseZIndex

SELECTIVITIES = (0.0016, 0.0064, 0.0256, 0.1024)


class ReferenceScalarEngine:
    """The seed implementation's range-query hot path, pinned for comparison.

    Reproduces the pre-columnar behaviour against an already-built index:
    the projection walks boxed leaf entries (bounding boxes were stored
    ``Rect`` objects, points boxed ``Point`` lists) and the scan filters
    every point of every relevant page with a Python-level comparison,
    maintaining the same :class:`CostCounters` the seed maintained.
    """

    class _BoxedPage:
        """Stand-in for the seed's list-backed page (boxed points, stored bbox)."""

        __slots__ = ("points", "bbox")

        def __init__(self, points, bbox) -> None:
            self.points = points
            self.bbox = bbox

        def __len__(self) -> int:
            return len(self.points)

        def filter_range(self, query):
            return [p for p in self.points if query.contains_xy(p.x, p.y)]

    def __init__(self, index) -> None:
        self.index = index
        self.pages = [
            self._BoxedPage(entry.page.points, entry.page.bbox)
            for entry in index.leaflist
        ]
        self.counters = CostCounters()

    def range_query(self, query):
        relevant = self._project(query)
        return self._scan_pages(relevant, query)

    def _project(self, query):
        index = self.index
        low_leaf = index._leaf_for(query.xmin, query.ymin)
        high_leaf = index._leaf_for(query.xmax, query.ymax)
        low = low_leaf.leaf_index if low_leaf is not None else 0
        high = high_leaf.leaf_index if high_leaf is not None else len(index.leaflist) - 1
        if low > high:
            low, high = high, low
        entries = index.leaflist.entries
        pages = self.pages
        counters = self.counters
        use_skipping = index.use_skipping
        relevant = []
        bbs_checked = 0
        position = low
        while 0 <= position <= high:
            entry = entries[position]
            bbs_checked += 1
            box = pages[position].bbox
            if box is None:
                box = entry.cell
                overlaps = False
            else:
                overlaps = box.overlaps(query)
            if overlaps:
                relevant.append(position)
                position += 1
                continue
            if not use_skipping:
                position += 1
                continue
            target = position + 1
            disqualified = False
            ends = False
            if box.ymax < query.ymin:
                pointer = entry.below
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if box.ymin > query.ymax:
                pointer = entry.above
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if box.xmax < query.xmin:
                pointer = entry.left
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if box.xmin > query.xmax:
                pointer = entry.right
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if not disqualified:
                position += 1
                continue
            if ends:
                counters.leaves_skipped += max(0, high - position)
                break
            counters.leaves_skipped += target - position - 1
            position = target
        counters.bbs_checked += bbs_checked
        return relevant

    def _scan_pages(self, relevant, query):
        results = []
        counters = self.counters
        for position in relevant:
            page = self.pages[position]
            counters.pages_scanned += 1
            counters.points_filtered += len(page)
            matches = page.filter_range(query)
            counters.points_returned += len(matches)
            results.extend(matches)
        return results


def brute_force_arrays(xs, ys, query):
    mask = (
        (xs >= query.xmin) & (xs <= query.xmax)
        & (ys >= query.ymin) & (ys <= query.ymax)
    )
    return int(mask.sum())


@contextmanager
def _gc_paused():
    """Collect once, then keep the collector out of the timed region."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def measure(fn, queries, repeats):
    """Best-of-``repeats`` mean latency in microseconds (min rejects noise)."""
    best = float("inf")
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            for query in queries:
                fn(query)
            best = min(best, time.perf_counter() - start)
    return best / len(queries) * 1e6


def measure_batch(index, queries, repeats):
    best = float("inf")
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            index.batch_range_query(queries)
            best = min(best, time.perf_counter() - start)
    return best / len(queries) * 1e6


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: 20k points, fewer queries, relaxed threshold")
    parser.add_argument("--region", default="newyork")
    parser.add_argument("--num-points", type=int, default=None)
    parser.add_argument("--num-queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="Fail when mean engine speedup drops below this "
                             "(default 5.0, or 1.5 with --quick)")
    args = parser.parse_args(argv)

    num_points = args.num_points or (20_000 if args.quick else 100_000)
    num_queries = args.num_queries or (40 if args.quick else 100)
    min_speedup = args.min_speedup if args.min_speedup is not None else (
        1.5 if args.quick else 5.0
    )
    repeats = 3 if args.quick else 5

    print(f"dataset: {args.region} n={num_points} seed={args.seed}")
    points = generate_dataset(args.region, num_points, seed=args.seed)
    xs = np.fromiter((p.x for p in points), dtype=np.float64, count=num_points)
    ys = np.fromiter((p.y for p in points), dtype=np.float64, count=num_points)

    failures = 0
    reference_means = []
    batch_means = []
    # Two page sizes: 64 is this repo's default; 256 is what the paper uses
    # on its large (multi-million point) datasets — 100k points in pure
    # Python plays that role here.
    capacities = (64, 256)
    print(f"{'L':>4} {'selectivity':>12} {'reference':>11} {'single':>9} "
          f"{'batch':>9} {'speedup':>8}  hits/q")
    for leaf_capacity in capacities:
        for selectivity in SELECTIVITIES:
            workload = generate_range_workload(
                args.region, num_queries, selectivity, seed=args.seed
            )
            queries = workload.queries
            index = WaZI(points, queries, leaf_capacity=leaf_capacity, seed=args.seed)
            reference = ReferenceScalarEngine(index)

            # -- exactness -----------------------------------------------
            batch_results = index.batch_range_query(queries)
            for query, batch_result in zip(queries, batch_results):
                single_result = index.range_query(query)
                if single_result != batch_result:
                    print(f"FAIL: single/batch mismatch at L={leaf_capacity} "
                          f"selectivity {selectivity}")
                    failures += 1
                    break
                if brute_force_arrays(xs, ys, query) != len(single_result):
                    print(f"FAIL: result-count mismatch vs brute force at "
                          f"L={leaf_capacity} {selectivity}")
                    failures += 1
                    break
                ref_set = sorted((p.x, p.y) for p in reference.range_query(query))
                if ref_set != sorted((p.x, p.y) for p in single_result):
                    print(f"FAIL: result-set mismatch vs reference at "
                          f"L={leaf_capacity} {selectivity}")
                    failures += 1
                    break

            # -- latency -------------------------------------------------
            ref_us = measure(reference.range_query, queries, repeats=2)
            single_us = measure(index.range_query, queries, repeats=repeats)
            batch_us = measure_batch(index, queries, repeats=repeats)
            hits = sum(len(r) for r in batch_results) / len(queries)
            print(f"{leaf_capacity:>4} {selectivity:>12} {ref_us:>9.1f}us "
                  f"{single_us:>7.1f}us {batch_us:>7.1f}us "
                  f"{ref_us / batch_us:>7.2f}x  {hits:8.1f}")
            reference_means.append(ref_us)
            batch_means.append(batch_us)

    mean_speedup = sum(reference_means) / sum(batch_means)
    print(f"\nmean engine speedup (reference / batch, ratio of means over "
          f"{len(reference_means)} workload cells): "
          f"{mean_speedup:.2f}x  (threshold {min_speedup:.1f}x)")

    # -- update throughput ----------------------------------------------
    burst = 2_000 if args.quick else 10_000
    rng = np.random.default_rng(args.seed)
    insert_index = BaseZIndex(points[: num_points // 2], leaf_capacity=64)
    extent = insert_index.extent()
    extra = [
        Point(
            float(extent.xmin + x * extent.width),
            float(extent.ymin + y * extent.height),
        )
        for x, y in rng.random((burst, 2))
    ]
    start = time.perf_counter()
    for point in extra:
        insert_index.insert(point)
    insert_us = (time.perf_counter() - start) / burst * 1e6
    print(f"inserts: {burst} in {insert_us:.1f} us/insert "
          f"(incremental leaf-split repair)")

    write_json_report("bench_smoke", {
        "num_points": num_points,
        "num_queries": num_queries,
        "mean_speedup": mean_speedup,
        "min_speedup_threshold": min_speedup,
        "insert_us": insert_us,
        "failures": failures,
    })

    if failures:
        print(f"\nFAILED: {failures} correctness failure(s)")
        return 1
    if mean_speedup < min_speedup:
        print(f"\nFAILED: mean speedup {mean_speedup:.2f}x below {min_speedup:.1f}x")
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
