"""Engine benchmark: the columnar-first API vs the boxed result path.

Checks the central perf claim of the query-API redesign: on the columnar
Z-index core, count-only and array-consuming plan executions never box a
``Point`` and therefore beat the boxed path by a wide margin, while
returning byte-identical counts and coordinates.

Three scenarios, all on a WaZI index:

1. **Range / count-only** — ``execute_many(plans, count_only=True)``
   against the boxed path (``batch_range_query`` + ``.points()`` per
   result, i.e. what every pre-redesign caller paid).
2. **Range / as_arrays** — the same workload consumed through
   ``ResultSet.as_arrays()`` instead of boxed points.
3. **kNN cold start** — a probe burst against a freshly served index
   (the snapshot-load deployment of the persistence layer leaves the
   boxed cache empty).  The boxed path reproduces the pre-redesign
   engine, which boxed *all* ``n`` points while priming its query caches;
   the columnar path runs the kernel straight off the coordinate columns.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py          # full, 100k points
    PYTHONPATH=src python benchmarks/bench_engine.py --quick  # CI-sized canary

Exit status is non-zero on any result mismatch or when a scenario's
speedup falls below ``--min-speedup`` (default 2.0 full / 1.3 quick).
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from contextlib import contextmanager
from pathlib import Path

# Script mode puts benchmarks/ (not the repo root) on sys.path.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import write_json_report
from repro.engine import SpatialEngine
from repro.query import KnnQuery, RangeQuery
from repro.workloads import (
    generate_dataset,
    generate_probe_points,
    generate_range_workload,
)

REPORT_PATH = Path(__file__).resolve().parent.parent / "results" / "bench_engine.txt"


@contextmanager
def _gc_paused():
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def timeit(fn, repeats):
    """Best-of-``repeats`` wall-clock seconds (min rejects scheduler noise)."""
    best = float("inf")
    result = None
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: 20k points, relaxed threshold")
    parser.add_argument("--region", default="newyork")
    parser.add_argument("--num-points", type=int, default=None)
    parser.add_argument("--num-queries", type=int, default=None)
    parser.add_argument("--num-probes", type=int, default=None)
    parser.add_argument("--selectivity", type=float, default=1.0,
                        help="Range selectivity in percent of the data space "
                             "(array-consuming workloads are result-heavy)")
    parser.add_argument("--knn-k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="Fail when any scenario drops below this "
                             "(default 2.0, or 1.3 with --quick)")
    args = parser.parse_args(argv)

    num_points = args.num_points if args.num_points is not None else (
        20_000 if args.quick else 100_000
    )
    num_queries = args.num_queries if args.num_queries is not None else (
        40 if args.quick else 100
    )
    num_probes = args.num_probes if args.num_probes is not None else (
        80 if args.quick else 200
    )
    min_speedup = args.min_speedup if args.min_speedup is not None else (
        1.3 if args.quick else 2.0
    )
    repeats = 3 if args.quick else 5

    lines = [
        f"engine benchmark: {args.region} n={num_points} "
        f"queries={num_queries} probes={num_probes} k={args.knn_k} "
        f"selectivity={args.selectivity}% seed={args.seed}",
        "",
    ]
    print(lines[0])

    points = generate_dataset(args.region, num_points, seed=args.seed)
    workload = generate_range_workload(
        args.region, num_queries, args.selectivity, seed=args.seed
    )
    queries = workload.queries
    probes = generate_probe_points(args.region, num_probes, seed=args.seed + 1)

    engine = SpatialEngine.build(
        "wazi", points, queries, leaf_capacity=256, seed=args.seed
    )
    index = engine.index
    plans = [RangeQuery(query) for query in queries]
    knn_plans = [KnnQuery(probe, args.knn_k) for probe in probes]

    failures = 0
    speedups = {}

    # -- range: boxed reference -------------------------------------------
    def range_boxed():
        return [result.points() for result in engine.batch_range_query(queries)]

    boxed_seconds, boxed_lists = timeit(range_boxed, repeats)

    # -- range: count-only -------------------------------------------------
    def range_counts():
        return engine.execute_many(plans, count_only=True)

    count_seconds, counts = timeit(range_counts, repeats)
    if counts != [len(result) for result in boxed_lists]:
        print("FAIL: count-only counts differ from the boxed path")
        failures += 1
    speedups["range count-only"] = boxed_seconds / count_seconds

    # -- range: as_arrays --------------------------------------------------
    def range_arrays():
        return [result.as_arrays() for result in engine.execute_many(plans)]

    arrays_seconds, arrays = timeit(range_arrays, repeats)
    for (xs, ys), boxed in zip(arrays, boxed_lists):
        if xs.tolist() != [p.x for p in boxed] or ys.tolist() != [p.y for p in boxed]:
            print("FAIL: as_arrays coordinates differ from the boxed path")
            failures += 1
            break
    speedups["range as_arrays"] = boxed_seconds / arrays_seconds

    hits = sum(counts) / max(1, len(queries))
    lines += [
        f"range workload ({len(queries)} queries, {hits:.0f} hits/query):",
        f"  boxed (.points())    {boxed_seconds * 1e3:9.1f} ms",
        f"  count-only           {count_seconds * 1e3:9.1f} ms   "
        f"{speedups['range count-only']:.2f}x",
        f"  as_arrays            {arrays_seconds * 1e3:9.1f} ms   "
        f"{speedups['range as_arrays']:.2f}x",
    ]

    # -- kNN: cold-start serving burst ------------------------------------
    # Each repeat starts from the state a snapshot load leaves behind: the
    # coordinate columns are live, the boxed cache is empty.  The boxed
    # reference reproduces the pre-redesign engine, whose cache priming
    # boxed every indexed point before the first probe was answered.
    def knn_boxed_cold():
        index._flat_points = None  # fresh serving process
        index._ensure_boxed()      # what the old _prime_query_caches paid
        return [result.points() for result in engine.batch_knn(probes, args.knn_k)]

    knn_boxed_seconds, knn_boxed_lists = timeit(knn_boxed_cold, repeats)

    def knn_arrays_cold():
        index._flat_points = None  # fresh serving process
        return [result.as_arrays() for result in engine.execute_many(knn_plans)]

    knn_arrays_seconds, knn_arrays = timeit(knn_arrays_cold, repeats)
    for (xs, ys), boxed in zip(knn_arrays, knn_boxed_lists):
        if xs.tolist() != [p.x for p in boxed] or ys.tolist() != [p.y for p in boxed]:
            print("FAIL: kNN as_arrays neighbours differ from the boxed path")
            failures += 1
            break
    speedups["knn cold-start as_arrays"] = knn_boxed_seconds / knn_arrays_seconds
    lines += [
        f"kNN cold-start burst ({len(probes)} probes, k={args.knn_k}):",
        f"  boxed (prime+points) {knn_boxed_seconds * 1e3:9.1f} ms",
        f"  as_arrays            {knn_arrays_seconds * 1e3:9.1f} ms   "
        f"{speedups['knn cold-start as_arrays']:.2f}x",
    ]

    lines.append("")
    for scenario, speedup in speedups.items():
        verdict = "ok" if speedup >= min_speedup else "BELOW THRESHOLD"
        lines.append(f"{scenario:26s} {speedup:6.2f}x  (threshold {min_speedup:.1f}x) {verdict}")

    report = "\n".join(lines) + "\n"
    print("\n".join(lines[1:]))
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(report)
    print(f"\nreport written to {REPORT_PATH.relative_to(Path.cwd())}"
          if REPORT_PATH.is_relative_to(Path.cwd()) else f"\nreport written to {REPORT_PATH}")

    write_json_report("bench_engine", {
        "num_points": len(points),
        "num_range_queries": len(queries),
        "num_knn_probes": len(probes),
        "speedups": speedups,
        "min_speedup_threshold": min_speedup,
        "failures": failures,
    })

    if failures:
        print(f"\nFAILED: {failures} correctness failure(s)")
        return 1
    below = [s for s, v in speedups.items() if v < min_speedup]
    if below:
        print(f"\nFAILED: scenarios below {min_speedup:.1f}x: {', '.join(below)}")
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
