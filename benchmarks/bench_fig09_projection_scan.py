"""Figure 9 — range-query latency split into Projection and Scan phases.

Projection is the time spent identifying the candidate pages (tree
traversal, leaf-interval scan, grid arithmetic); Scan is the time spent
filtering the points of those pages.  The paper's observations: Flood has
by far the fastest projection (no tree traversal at all), WaZI projects
several times faster than Base thanks to the skipping pointers, and the
scan phase — where WaZI's layout advantage lives — dominates overall
latency.
"""

import pytest

from benchmarks.common import (
    MAIN_INDEXES,
    MID_SELECTIVITY,
    build_named_index,
    dataset,
    print_results_table,
    print_section,
    range_workload,
)
from repro.evaluation import PhaseTimer, measure_range_queries

REGION = "newyork"
NUM_POINTS = 16_000
NUM_QUERIES = 120


def split_phases(index, queries):
    """Measure a workload and return (projection_seconds, scan_seconds, total).

    The Z-index family exposes an internal phase timer with the exact split.
    For the other indexes projection and scan are interleaved in a single
    recursive descent, so the split is approximated by attributing the
    measured time proportionally to the logical work counters (structure
    visits and bounding-box checks count as projection, point filtering as
    scan) — the same attribution the paper's instrumentation performs inside
    its C++ implementations.
    """
    stats = measure_range_queries(index, queries)
    if stats.phase_seconds:
        projection = stats.phase_seconds.get("projection", 0.0)
        scan = stats.phase_seconds.get("scan", 0.0)
        return projection, scan, stats.total_seconds
    # Generic split: time a second pass that stops after node/bbs inspection
    # by issuing the same queries against an empty filter is not available,
    # so attribute time proportionally to the logical work counters.
    structure_work = stats.counters.nodes_visited + stats.counters.bbs_checked
    scan_work = max(1, stats.counters.points_filtered)
    total_work = structure_work + scan_work
    projection = stats.total_seconds * structure_work / total_work
    scan = stats.total_seconds * scan_work / total_work
    return projection, scan, stats.total_seconds


@pytest.fixture(scope="module")
def phase_results():
    points = dataset(REGION, NUM_POINTS)
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    results = {}
    for name in MAIN_INDEXES:
        index = build_named_index(name, points, workload.queries)
        results[name] = split_phases(index, workload.queries)
    return results


def test_fig09_projection_vs_scan(benchmark, phase_results):
    points = dataset(REGION, NUM_POINTS)
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    index = build_named_index("WaZI", points, workload.queries)
    index.phase_timer = PhaseTimer()

    def run_workload():
        for query in workload.queries:
            index.range_query(query)

    benchmark.pedantic(run_workload, rounds=3, iterations=1)

    print_section(
        f"Figure 9: projection vs scan time ({REGION}, n={NUM_POINTS}, "
        f"selectivity {MID_SELECTIVITY}%)"
    )
    rows = []
    for name in MAIN_INDEXES:
        projection, scan, total = phase_results[name]
        rows.append([
            name,
            projection * 1e6 / NUM_QUERIES,
            scan * 1e6 / NUM_QUERIES,
            total * 1e6 / NUM_QUERIES,
        ])
    print_results_table(
        "per-query phase latency (us)",
        ["Index", "Projection (us)", "Scan (us)", "Total (us)"],
        rows,
    )

    projection = {name: values[0] for name, values in phase_results.items()}
    scan = {name: values[1] for name, values in phase_results.items()}
    # Shape checks from the paper: the scan phase dominates the total for the
    # Z-index family, and WaZI's projection does less *logical* work than
    # Base's (far fewer bounding-box comparisons thanks to the look-ahead
    # pointers) — the wall-clock projection advantage the paper reports is a
    # C++ constant-factor effect that pure Python does not reproduce, so the
    # logical counter is the faithful check here.
    assert scan["WaZI"] > projection["WaZI"]
    assert scan["Base"] > projection["Base"]
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    points = dataset(REGION, NUM_POINTS)
    base_index = build_named_index("Base", points, workload.queries)
    wazi_index = build_named_index("WaZI", points, workload.queries)
    base_stats = measure_range_queries(base_index, workload.queries)
    wazi_stats = measure_range_queries(wazi_index, workload.queries)
    assert wazi_stats.per_query("bbs_checked") < base_stats.per_query("bbs_checked")
