"""Figure 4 — average range-query latency of *all* indexes considered.

The paper's Figure 4 motivates discarding the rank-space baselines (Zpgm,
HRR, QUILTS, RSMI) because they perform significantly worse than the other
indexes.  This benchmark reproduces the comparison with every index in this
library (the six main indexes plus Zpgm, the dynamic R-tree, the quad-tree
and the k-d tree) on the default dataset and a mixed-selectivity workload,
and checks the shape: WaZI is at or near the front, Zpgm at or near the
back.
"""

import pytest

from benchmarks.common import (
    DEFAULT_LEAF_CAPACITY,
    DEFAULT_SEED,
    dataset,
    measure_index,
    print_results_table,
    print_section,
    range_workload,
)

ALL_INDEXES = (
    "Base", "CUR", "Flood", "QUASII", "STR", "WaZI", "Zpgm", "R-tree", "QuadTree", "k-d tree"
)
NUM_POINTS = 12_000
REGION = "newyork"


@pytest.fixture(scope="module")
def mixed_workload():
    """A workload mixing the paper's low/mid/high selectivities."""
    queries = []
    for selectivity in (0.0016, 0.0256, 0.1024):
        queries.extend(range_workload(REGION, selectivity, 50).queries)
    return queries


@pytest.fixture(scope="module")
def figure4_results(mixed_workload):
    points = dataset(REGION, NUM_POINTS)
    return {
        name: measure_index(name, points, mixed_workload, leaf_capacity=DEFAULT_LEAF_CAPACITY,
                            seed=DEFAULT_SEED)
        for name in ALL_INDEXES
    }


def test_fig04_average_range_latency(benchmark, figure4_results, mixed_workload):
    points = dataset(REGION, NUM_POINTS)
    wazi = None

    def run_wazi_workload():
        nonlocal wazi
        if wazi is None:
            from benchmarks.common import build_named_index

            wazi = build_named_index("WaZI", points, mixed_workload)
        for query in mixed_workload:
            wazi.range_query(query)

    benchmark.pedantic(run_wazi_workload, rounds=2, iterations=1)

    rows = []
    for name in ALL_INDEXES:
        result = figure4_results[name]
        rows.append([
            name,
            result.range_mean_micros,
            result.range_stats.per_query("points_filtered"),
            result.range_stats.per_query("excess_points"),
        ])
    rows.sort(key=lambda row: row[1])
    print_section(f"Figure 4: average range query latency, all indexes ({REGION}, n={NUM_POINTS})")
    print_results_table(
        "sorted by mean latency (us/query)",
        ["Index", "mean latency (us)", "points filtered/query", "excess points/query"],
        rows,
    )

    latencies = {name: figure4_results[name].range_mean_micros for name in ALL_INDEXES}
    # Shape check: WaZI must beat the rank-space Zpgm baseline and the
    # classic R-tree bulk loads, mirroring the figure.
    assert latencies["WaZI"] < latencies["Zpgm"]
    assert latencies["WaZI"] < latencies["STR"]
    assert latencies["WaZI"] < latencies["CUR"]
