"""Snapshot benchmark: load-vs-rebuild speedup + round-trip exactness canary.

Exercises the columnar snapshot subsystem the way a deployment would —
build the index offline once, then serve many processes from the binary
snapshot — and checks two things:

1. **Exactness** — a snapshot-loaded index returns *byte-identical*
   results to the freshly built one: same range/batch-range/kNN result
   lists (contents **and** ordering), same logical cost counters, across
   the Z-index family (WaZI, WaZI−SK, Base, Base+SK).  A rebuild-recipe
   snapshot of a non-Z-index baseline must replay to identical results as
   well.
2. **Speedup** — ``load_snapshot`` must be at least ``--min-speedup``
   times faster than rebuilding the index from the raw points (default
   5.0 full / 2.0 with ``--quick``).  The full run measures WaZI at 100k
   points, where construction pays the greedy split search and the RFDE
   forest while the load is an O(n) memcpy of the stored columns.

Usage::

    PYTHONPATH=src python benchmarks/bench_snapshot.py           # full, 100k points
    PYTHONPATH=src python benchmarks/bench_snapshot.py --quick   # CI-sized canary

Writes a report to ``results/bench_snapshot.txt`` and exits non-zero on a
correctness failure or when the load speedup falls below the threshold.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

# Script mode puts benchmarks/ (not the repo root) on sys.path.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import write_json_report
from repro.api import build_index
from repro.evaluation import measure_snapshot_roundtrip
from repro.persistence import load_snapshot, save_rebuild_snapshot
from repro.workloads import generate_dataset, generate_knn_workload, generate_range_workload

ZINDEX_NAMES = ("wazi", "wazi-sk", "base", "base+sk")
REBUILD_NAME = "str"


def check_exactness(built, loaded, queries, probes, k):
    """Byte-identical results + counters between a built and a loaded index."""
    failures = []
    built.reset_counters()
    loaded.reset_counters()
    for query in queries:
        if ([p.as_tuple() for p in built.range_query(query)]
                != [p.as_tuple() for p in loaded.range_query(query)]):
            failures.append(f"range_query mismatch at {query}")
            break
    built_batch = built.batch_range_query(queries)
    loaded_batch = loaded.batch_range_query(queries)
    if any(
        [p.as_tuple() for p in a] != [p.as_tuple() for p in b]
        for a, b in zip(built_batch, loaded_batch)
    ):
        failures.append("batch_range_query mismatch")
    if [[p.as_tuple() for p in r] for r in built.batch_knn(probes, k)] != [
        [p.as_tuple() for p in r] for r in loaded.batch_knn(probes, k)
    ]:
        failures.append("batch_knn mismatch")
    if built.counters.snapshot() != loaded.counters.snapshot():
        failures.append(
            f"counter mismatch: {built.counters.snapshot()} vs {loaded.counters.snapshot()}"
        )
    if len(built) != len(loaded):
        failures.append(f"cardinality mismatch: {len(built)} vs {len(loaded)}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: 20k points, relaxed threshold")
    parser.add_argument("--region", default="newyork")
    parser.add_argument("--num-points", type=int, default=None)
    parser.add_argument("--num-queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="Fail when the WaZI load-vs-rebuild speedup drops below "
                             "this (default 5.0, or 2.0 with --quick)")
    parser.add_argument("--report", default="results/bench_snapshot.txt")
    args = parser.parse_args(argv)

    num_points = args.num_points if args.num_points is not None else (
        20_000 if args.quick else 100_000
    )
    num_queries = args.num_queries if args.num_queries is not None else (
        30 if args.quick else 60
    )
    min_speedup = args.min_speedup if args.min_speedup is not None else (
        2.0 if args.quick else 5.0
    )
    load_repeats = 3 if args.quick else 5
    leaf_capacity = 64
    knn_k = 10

    lines = []

    def emit(text=""):
        print(text)
        lines.append(text)

    emit(f"snapshot benchmark: {args.region} n={num_points} "
         f"queries={num_queries} L={leaf_capacity} seed={args.seed}")
    points = generate_dataset(args.region, num_points, seed=args.seed)
    workload = generate_range_workload(
        args.region, num_queries, selectivity_percent=0.0256, seed=args.seed
    )
    queries = workload.queries
    probes = generate_knn_workload(
        args.region, 30 if args.quick else 60, k=knn_k, seed=args.seed
    ).probes

    tmpdir = Path(tempfile.mkdtemp(prefix="bench_snapshot_"))
    try:
        return _run(args, points, queries, probes, tmpdir, num_points,
                    leaf_capacity, knn_k, load_repeats, min_speedup, emit, lines)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def _run(args, points, queries, probes, tmpdir, num_points,
         leaf_capacity, knn_k, load_repeats, min_speedup, emit, lines):
    failures = []
    wazi_speedup = None
    emit(f"\n{'index':>8} {'build':>9} {'save':>9} {'load':>9} "
         f"{'speedup':>8} {'bytes':>11}  exactness")
    for name in ZINDEX_NAMES:
        start = time.perf_counter()
        built = build_index(name, points, queries, leaf_capacity=leaf_capacity,
                            seed=args.seed)
        build_seconds = time.perf_counter() - start

        path = tmpdir / f"{name.replace('+', '_')}.snapshot"
        stats = measure_snapshot_roundtrip(
            built, path, build_seconds=build_seconds, repeats=load_repeats
        )
        save_seconds = stats["snapshot_save_seconds"]
        load_seconds = stats["snapshot_load_seconds"]
        speedup = stats["snapshot_load_speedup"]
        loaded = load_snapshot(path)

        index_failures = check_exactness(built, loaded, queries, probes, knn_k)
        failures.extend(f"{name}: {failure}" for failure in index_failures)
        emit(f"{name:>8} {build_seconds:>8.3f}s {save_seconds:>8.3f}s "
             f"{load_seconds:>8.4f}s {speedup:>7.1f}x {path.stat().st_size:>11}  "
             f"{'FAIL' if index_failures else 'byte-identical'}")
        if name == "wazi":
            wazi_speedup = speedup

    # Rebuild-recipe snapshot for a non-Z-index baseline: replay must be exact.
    path = tmpdir / f"{REBUILD_NAME}.snapshot"
    built = build_index(REBUILD_NAME, points, queries, leaf_capacity=leaf_capacity,
                        seed=args.seed)
    save_rebuild_snapshot(REBUILD_NAME, points, path, workload=queries,
                          leaf_capacity=leaf_capacity, seed=args.seed)
    replayed = load_snapshot(path)
    replay_failures = check_exactness(built, replayed, queries[:10], probes[:5], knn_k)
    failures.extend(f"{REBUILD_NAME} (rebuild recipe): {f}" for f in replay_failures)
    emit(f"\nrebuild-recipe snapshot ({REBUILD_NAME}): "
         f"{'FAIL' if replay_failures else 'replayed byte-identical'}")

    emit(f"\nWaZI load-vs-rebuild speedup at {num_points} points: "
         f"{wazi_speedup:.1f}x  (threshold {min_speedup:.1f}x)")

    status = 0
    if failures:
        emit("\nFAILED:")
        for failure in failures:
            emit(f"  {failure}")
        status = 1
    elif wazi_speedup < min_speedup:
        emit(f"\nFAILED: load speedup {wazi_speedup:.2f}x below {min_speedup:.1f}x")
        status = 1
    else:
        emit("\nOK")

    report = Path(args.report)
    report.parent.mkdir(parents=True, exist_ok=True)
    report.write_text("\n".join(lines) + "\n")
    print(f"report written to {report}")
    write_json_report("bench_snapshot", {
        "num_points": num_points,
        "wazi_load_speedup": wazi_speedup,
        "min_speedup_threshold": min_speedup,
        "failures": len(failures),
    })
    return status


if __name__ == "__main__":
    sys.exit(main())
