"""Sanitizer overhead benchmark: zero cost off, measured cost on.

The runtime sanitizer (``repro.devtools.invariants``) deep-checks every
built or snapshot-loaded Z-index when ``REPRO_SANITIZE=1``.  Its contract
has two halves, and this benchmark checks both:

1. **Disabled mode is free.**  Not "cheap" — *free*.  When the sanitizer
   is not installed, ``ZIndex._build`` and ``ZIndex.from_snapshot_state``
   must be the pristine, unwrapped library functions (checked by object
   identity), so a production import of ``repro`` pays zero overhead: no
   wrapper frames, no flag tests, nothing.  Importing
   ``repro.devtools.invariants`` by itself must not change that.
2. **Enabled mode is observation-only and affordable.**  With the
   sanitizer installed, builds and snapshot loads must return byte-equal
   results and identical cost counters to the pristine run (the checks
   may read, never write), and the per-build / per-load / per-explicit
   check cost is measured and reported so regressions in check cost show
   up in the CI artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_sanitize.py           # full, 50k points
    PYTHONPATH=src python benchmarks/bench_sanitize.py --quick   # CI-sized canary

Writes a report to ``results/bench_sanitize.txt`` and exits non-zero when
the disabled-mode identity check fails, enabled-mode results diverge, or
the sanitizer leaves the library patched after uninstall.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

# Script mode puts benchmarks/ (not the repo root) on sys.path.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import write_json_report
from repro.engine import build_index
from repro.persistence import load_snapshot, save_snapshot
from repro.workloads import generate_dataset, generate_range_workload
from repro.zindex.base import ZIndex

RESULTS = Path(__file__).resolve().parent.parent / "results"


def _workload_signature(index, queries):
    """Results + counters of a query workload, as comparable plain data."""
    index.reset_counters()
    rows = [tuple(p.as_tuple() for p in index.range_query(q)) for q in queries]
    return rows, index.counters.snapshot()


def _timed(fn, repeats):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: 8k points, 2 repeats")
    parser.add_argument("--region", default="newyork")
    args = parser.parse_args(argv)

    num_points = 8_000 if args.quick else 50_000
    repeats = 2 if args.quick else 3
    failures = []
    lines = [f"bench_sanitize: {num_points} points, region={args.region}"]

    # --- 1. Disabled mode: the library must be literally unpatched. -------
    pristine_build = ZIndex.__dict__["_build"]
    pristine_load = ZIndex.__dict__["from_snapshot_state"].__func__

    from repro.devtools import invariants  # import must not patch anything

    if invariants.sanitizer_installed():
        failures.append("sanitizer reports installed before install_sanitizer()")
    if ZIndex.__dict__["_build"] is not pristine_build:
        failures.append("importing repro.devtools.invariants patched ZIndex._build")
    if ZIndex.__dict__["from_snapshot_state"].__func__ is not pristine_load:
        failures.append(
            "importing repro.devtools.invariants patched ZIndex.from_snapshot_state"
        )
    lines.append("disabled mode: ZIndex entry points are the pristine functions "
                 "(identity check) -> overhead is exactly zero")

    points = generate_dataset(args.region, num_points, seed=7)
    workload = generate_range_workload(args.region, num_queries=40,
                                       selectivity_percent=0.0256, seed=11)
    queries = list(workload.queries)

    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(tmp) / "bench.snapshot"

        def build():
            return build_index("wazi", points, queries[:8], leaf_capacity=64, seed=0)

        base_build_s, index = _timed(build, repeats)
        save_snapshot(index, snap)
        base_load_s, loaded = _timed(lambda: load_snapshot(snap), repeats)
        base_sig = _workload_signature(loaded, queries)

        # --- 2. Enabled mode: observation-only, measured cost. -----------
        invariants.install_sanitizer()
        try:
            san_build_s, san_index = _timed(build, repeats)
            san_load_s, san_loaded = _timed(lambda: load_snapshot(snap), repeats)
            san_sig = _workload_signature(san_loaded, queries)
            check_s, _ = _timed(
                lambda: invariants.check_index_invariants(san_index), repeats
            )
        finally:
            invariants.uninstall_sanitizer()

        if san_sig != base_sig:
            failures.append("sanitized run diverged from pristine run "
                            "(results or counters differ)")
        if ZIndex.__dict__["_build"] is not pristine_build:
            failures.append("uninstall_sanitizer left ZIndex._build patched")
        if ZIndex.__dict__["from_snapshot_state"].__func__ is not pristine_load:
            failures.append("uninstall_sanitizer left ZIndex.from_snapshot_state patched")

    def ratio(sanitized, base):
        return sanitized / base if base > 0 else float("inf")

    lines += [
        f"build:        pristine {base_build_s * 1e3:9.1f} ms   "
        f"sanitized {san_build_s * 1e3:9.1f} ms   x{ratio(san_build_s, base_build_s):.2f}",
        f"load:         pristine {base_load_s * 1e3:9.1f} ms   "
        f"sanitized {san_load_s * 1e3:9.1f} ms   x{ratio(san_load_s, base_load_s):.2f}",
        f"explicit check_index_invariants: {check_s * 1e3:.1f} ms per call",
        "enabled mode: results and counters byte-equal to pristine run"
        if not failures else "FAILURES: " + "; ".join(failures),
    ]

    report = "\n".join(lines) + "\n"
    print(report, end="")
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "bench_sanitize.txt").write_text(report)
    write_json_report("bench_sanitize", {
        "build_overhead_ratio": ratio(san_build_s, base_build_s),
        "load_overhead_ratio": ratio(san_load_s, base_load_s),
        "check_seconds": check_s,
        "failures": len(failures),
    })

    if failures:
        print(f"bench_sanitize: FAIL ({len(failures)} failure(s))", file=sys.stderr)
        return 1
    print("bench_sanitize: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
