"""Figure 8 — range-query time as the dataset size grows.

The paper varies the dataset from 4 to 64 million points at the mid
selectivity (0.0256 %) and observes that every index scales roughly
linearly, with WaZI in front throughout.  The reproduction sweeps the
scaled-down sizes from ``benchmarks.common.SCALING_SIZES``.
"""

import pytest

from benchmarks.common import (
    MAIN_INDEXES,
    MID_SELECTIVITY,
    SCALING_SIZES,
    dataset,
    measure_index,
    print_results_table,
    print_section,
    range_workload,
)

REGION = "newyork"
NUM_QUERIES = 100


@pytest.fixture(scope="module")
def scaling_results():
    results = {}
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    for size in SCALING_SIZES:
        points = dataset(REGION, size)
        results[size] = {
            name: measure_index(name, points, workload.queries) for name in MAIN_INDEXES
        }
    return results


def test_fig08_range_query_scaling(benchmark, scaling_results):
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    points = dataset(REGION, SCALING_SIZES[2])
    from benchmarks.common import build_named_index

    index = build_named_index("WaZI", points, workload.queries)
    benchmark.pedantic(
        lambda: [index.range_query(q) for q in workload.queries], rounds=3, iterations=1
    )

    print_section(
        f"Figure 8: range query time vs dataset size ({REGION}, selectivity {MID_SELECTIVITY}%)"
    )
    rows = []
    for size in SCALING_SIZES:
        rows.append(
            [size] + [scaling_results[size][name].range_mean_micros for name in MAIN_INDEXES]
        )
    print_results_table("mean range-query latency (us)", ["Size"] + list(MAIN_INDEXES), rows)

    excess_rows = []
    for size in SCALING_SIZES:
        excess_rows.append(
            [size]
            + [
                scaling_results[size][name].range_stats.per_query("excess_points")
                for name in MAIN_INDEXES
            ]
        )
    print_results_table(
        "excess points per query", ["Size"] + list(MAIN_INDEXES), excess_rows
    )

    # Shape checks: work grows with dataset size for every index, and WaZI
    # stays ahead of (or level with) Base on the logical metric at every size.
    for name in MAIN_INDEXES:
        small = scaling_results[SCALING_SIZES[0]][name].range_stats.per_query("points_filtered")
        large = scaling_results[SCALING_SIZES[-1]][name].range_stats.per_query("points_filtered")
        assert large > small
    for size in SCALING_SIZES:
        wazi = scaling_results[size]["WaZI"].range_stats.per_query("excess_points")
        base = scaling_results[size]["Base"].range_stats.per_query("excess_points")
        assert wazi <= base * 1.05
