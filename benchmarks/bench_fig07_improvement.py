"""Figure 7 — percentage improvement over Base, by dataset and by selectivity.

The paper reports, for each competing index, its percentage improvement in
range-query latency over the Base Z-index, aggregated once per dataset and
once per selectivity.  The reproduction reports both the wall-clock
improvement and the improvement on the excess-points metric (which is what
the layout optimisation actually controls), and asserts the paper's
qualitative findings: WaZI is the only index that improves on Base
everywhere, and its advantage shrinks as selectivity grows.
"""

import pytest

from benchmarks.common import (
    REGIONS,
    SELECTIVITIES,
    dataset,
    measure_index,
    print_results_table,
    print_section,
    range_workload,
)
from repro.evaluation import percent_improvement

COMPARED = ("QUASII", "CUR", "STR", "Flood", "WaZI")
NUM_POINTS = 8_000
NUM_QUERIES = 100


@pytest.fixture(scope="module")
def figure7_results():
    results = {}
    for region in REGIONS:
        points = dataset(region, NUM_POINTS)
        for selectivity in SELECTIVITIES:
            workload = range_workload(region, selectivity, NUM_QUERIES)
            cell = {"Base": measure_index("Base", points, workload.queries)}
            for name in COMPARED:
                cell[name] = measure_index(name, points, workload.queries)
            results[(region, selectivity)] = cell
    return results


def _improvements(results, metric):
    """Per-(region, selectivity) percentage improvement over Base for a metric."""
    improvements = {}
    for key, cell in results.items():
        base_value = metric(cell["Base"])
        improvements[key] = {
            name: percent_improvement(base_value, metric(cell[name])) for name in COMPARED
        }
    return improvements


def test_fig07_percentage_improvement_over_base(benchmark, figure7_results):
    benchmark.pedantic(
        lambda: _improvements(figure7_results, lambda r: r.range_mean_micros),
        rounds=3,
        iterations=1,
    )
    for metric_name, metric in (
        ("wall-clock latency", lambda r: r.range_mean_micros),
        ("excess points", lambda r: r.range_stats.per_query("excess_points") + 1e-9),
    ):
        improvements = _improvements(figure7_results, metric)
        print_section(f"Figure 7: % improvement over Base ({metric_name})")

        by_region = []
        for region in REGIONS:
            row = [region]
            for name in COMPARED:
                values = [improvements[(region, s)][name] for s in SELECTIVITIES]
                row.append(sum(values) / len(values))
            by_region.append(row)
        print_results_table("averaged per dataset", ["Region"] + list(COMPARED), by_region)

        by_selectivity = []
        for selectivity in SELECTIVITIES:
            row = [selectivity]
            for name in COMPARED:
                values = [improvements[(region, selectivity)][name] for region in REGIONS]
                row.append(sum(values) / len(values))
            by_selectivity.append(row)
        print_results_table(
            "averaged per selectivity", ["Selectivity %"] + list(COMPARED), by_selectivity
        )

    # Shape checks on the excess-points metric: WaZI improves on Base for
    # every dataset, and the improvement shrinks with growing selectivity.
    improvements = _improvements(
        figure7_results, lambda r: r.range_stats.per_query("excess_points") + 1e-9
    )
    for region in REGIONS:
        average = sum(improvements[(region, s)]["WaZI"] for s in SELECTIVITIES) / len(SELECTIVITIES)
        assert average > 0, f"WaZI does not improve on Base for {region}"
    low = sum(improvements[(r, SELECTIVITIES[0])]["WaZI"] for r in REGIONS) / len(REGIONS)
    high = sum(improvements[(r, SELECTIVITIES[-1])]["WaZI"] for r in REGIONS) / len(REGIONS)
    assert low >= high - 10.0, "improvement should not grow substantially with selectivity"
