"""Figure 6 — range-query latency, four datasets x four selectivities.

Regenerates the grid of the paper's main result: for each of the four
regions and each of the four selectivities, the average range-query latency
(and the logical excess-point counts) of the six compared indexes.  The
shape checks assert the paper's headline: WaZI is never worse than Base and
beats the non-SFC baselines on the skewed workloads.
"""

import pytest

from benchmarks.common import (
    MAIN_INDEXES,
    REGIONS,
    SELECTIVITIES,
    dataset,
    measure_index,
    print_results_table,
    print_section,
    range_workload,
)

NUM_POINTS = 8_000
NUM_QUERIES = 100


@pytest.fixture(scope="module")
def figure6_results():
    """results[(region, selectivity)][index] -> ComparisonResult."""
    results = {}
    for region in REGIONS:
        points = dataset(region, NUM_POINTS)
        for selectivity in SELECTIVITIES:
            workload = range_workload(region, selectivity, NUM_QUERIES)
            results[(region, selectivity)] = {
                name: measure_index(name, points, workload.queries)
                for name in MAIN_INDEXES
            }
    return results


def test_fig06_range_query_latency(benchmark, figure6_results):
    points = dataset(REGIONS[0], NUM_POINTS)
    workload = range_workload(REGIONS[0], SELECTIVITIES[2], NUM_QUERIES)
    from benchmarks.common import build_named_index

    index = build_named_index("WaZI", points, workload.queries)

    def run_workload():
        for query in workload.queries:
            index.range_query(query)

    benchmark.pedantic(run_workload, rounds=3, iterations=1)

    print_section("Figure 6: average range query latency (us/query)")
    for selectivity in SELECTIVITIES:
        rows = []
        for region in REGIONS:
            cell = figure6_results[(region, selectivity)]
            rows.append([region] + [cell[name].range_mean_micros for name in MAIN_INDEXES])
        print_results_table(
            f"selectivity {selectivity}%",
            ["Region"] + list(MAIN_INDEXES),
            rows,
        )

    print_section("Figure 6 (companion): excess points per query")
    for selectivity in SELECTIVITIES:
        rows = []
        for region in REGIONS:
            cell = figure6_results[(region, selectivity)]
            rows.append(
                [region]
                + [cell[name].range_stats.per_query("excess_points") for name in MAIN_INDEXES]
            )
        print_results_table(
            f"selectivity {selectivity}%",
            ["Region"] + list(MAIN_INDEXES),
            rows,
        )

    # Shape checks: on the logical excess-point metric (robust to Python
    # timing noise) WaZI must not lose to Base anywhere, and must beat the
    # R-tree packings on average.
    wazi_wins_vs_str = 0
    total_cells = 0
    for key, cell in figure6_results.items():
        wazi_excess = cell["WaZI"].range_stats.per_query("excess_points")
        base_excess = cell["Base"].range_stats.per_query("excess_points")
        str_excess = cell["STR"].range_stats.per_query("excess_points")
        assert wazi_excess <= base_excess * 1.05, f"WaZI worse than Base at {key}"
        wazi_wins_vs_str += wazi_excess < str_excess
        total_cells += 1
    assert wazi_wins_vs_str >= 0.75 * total_cells
