"""Adaptive-lifecycle benchmark: observe → advise → adapt under drift.

The paper's claim is that a Z-index laid out for the *observed* workload
beats a workload-oblivious (or stale) layout.  This benchmark drives the
engine through the runtime version of that claim with the
``scan_heavy`` drift scenario of :mod:`repro.workloads.drift`: tiny
interactive hotspot lookups give way to region-wide analytical scans, so
both layout dimensions the engine adapts — split placement and page
granularity — are wrong for the new traffic.

1. **Serve** — a WaZI engine is built for the interactive phase (the
   layout a previous adaptation would have produced), then serves the
   analytical phase with ``record=True``.
2. **Observe overhead** — the same batched range replay is timed with
   recording off and on; the recording overhead must stay **under 10%**
   at 100k points (it is one vectorised block append per batch).
3. **Advise** — ``engine.advise()`` must recommend adapting (the measured
   scan cost of the stale layout vs the density estimate of a re-derived
   one).
4. **Adapt** — ``engine.adapt()`` re-derives the layout from the recorded
   workload and hot-swaps it.  The replayed queries must return
   **byte-identical result sets** before and after the swap (compared as
   lexicographically sorted coordinate bytes — the curve order changes,
   the results must not), and the adapted layout must serve the recorded
   workload with at least ``--min-speedup`` (default **1.3x**) lower mean
   range latency than the stale layout.
5. **Persist** — the adapted engine round-trips through
   ``save``/``open`` with its observed history intact.

Usage::

    PYTHONPATH=src python benchmarks/bench_adapt.py          # full, 100k points
    PYTHONPATH=src python benchmarks/bench_adapt.py --quick  # CI-sized canary

Exit status is non-zero on any correctness failure or missed threshold.
The report lands in ``results/bench_adapt.txt``.
"""

from __future__ import annotations

import argparse
import gc
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

# Allow both `python benchmarks/bench_adapt.py` and `python -m benchmarks...`:
# script mode puts benchmarks/ (not the repo root) on sys.path.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import warm_query_caches, write_json_report
from repro.engine import SpatialEngine
from repro.query import RangeQuery
from repro.workloads import drift_scenario, generate_dataset

REPORT_PATH = Path(__file__).resolve().parent.parent / "results" / "bench_adapt.txt"


@contextmanager
def _gc_paused():
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def timeit_pair(fn_a, fn_b, repeats):
    """Interleaved best-of-``repeats`` timing of two competing functions.

    Alternating A/B rounds inside one gc-paused block means slow drift in
    machine load hits both sides equally, so the *ratio* of the two
    best-of times is robust even when absolute timings wobble.
    Returns ``(seconds_a, result_a, seconds_b, result_b)``.
    """
    best_a = best_b = float("inf")
    result_a = result_b = None
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            result_a = fn_a()
            best_a = min(best_a, time.perf_counter() - start)
            start = time.perf_counter()
            result_b = fn_b()
            best_b = min(best_b, time.perf_counter() - start)
    return best_a, result_a, best_b, result_b


def canonical_result_bytes(result) -> bytes:
    """A result set's coordinates as order-independent canonical bytes.

    An adapted layout returns the same result *sets* in a different curve
    order; sorting lexicographically by (x, y) before taking the raw
    float64 bytes makes "byte-identical results" a well-defined check.
    """
    xs, ys = result.as_arrays()
    order = np.lexsort((ys, xs))
    return xs[order].tobytes() + ys[order].tobytes()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: fewer queries/repeats (same 100k "
                             "points — the overhead bound is defined there)")
    parser.add_argument("--region", default="newyork")
    parser.add_argument("--num-points", type=int, default=None)
    parser.add_argument("--num-queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="Required stale/adapted mean-latency ratio on the "
                             "recorded-workload replay (default 1.3)")
    parser.add_argument("--max-record-overhead", type=float, default=0.10,
                        help="Allowed relative slowdown of the recorded batch "
                             "replay (default 0.10 = 10%%)")
    args = parser.parse_args(argv)

    num_points = args.num_points if args.num_points is not None else 100_000
    num_queries = args.num_queries if args.num_queries is not None else (
        400 if args.quick else 800
    )
    repeats = 5 if args.quick else 7

    lines = [
        f"adapt benchmark: {args.region} n={num_points} "
        f"queries/phase={num_queries} seed={args.seed} "
        f"(scan_heavy scenario, WaZI)",
        "",
    ]
    print(lines[0])
    failures = 0

    points = generate_dataset(args.region, num_points, seed=1)
    phases = drift_scenario(
        "scan_heavy", args.region, num_queries=num_queries, seed=args.seed
    )
    train = phases[0].workload    # interactive: what the layout was derived for
    drifted = phases[1].workload  # analytical: what the engine now serves
    replay_rects = drifted.queries
    replay_plans = [RangeQuery(rect) for rect in replay_rects]

    start = time.perf_counter()
    engine = SpatialEngine.build(
        "wazi", points, train.queries, leaf_capacity=64, seed=1
    )
    build_seconds = time.perf_counter() - start
    lines.append(f"serving layout built for {phases[0].name}: {build_seconds:6.2f} s")
    warm_query_caches(engine.index, replay_rects)

    # -- observe: recording overhead on the batched count path -------------
    def replay_plain():
        engine.stop_recording()
        return engine.execute_many(replay_plans, count_only=True)

    def replay_recorded():
        engine.start_recording()
        engine.workload_log.clear()
        return engine.execute_many(replay_plans, count_only=True)

    plain_seconds, plain_counts, recorded_seconds, recorded_counts = timeit_pair(
        replay_plain, replay_recorded, repeats
    )
    engine.stop_recording()
    if recorded_counts != plain_counts:
        print("FAIL: recording changed query results")
        failures += 1
    overhead = recorded_seconds / plain_seconds - 1.0
    verdict = "ok" if overhead < args.max_record_overhead else "ABOVE BOUND"
    lines += [
        f"recording overhead (batched count replay, {num_queries} queries):",
        f"  record=False {plain_seconds * 1e3:9.1f} ms",
        f"  record=True  {recorded_seconds * 1e3:9.1f} ms   "
        f"{overhead * 100:+.1f}% (bound {args.max_record_overhead * 100:.0f}%) {verdict}",
    ]
    if overhead >= args.max_record_overhead:
        failures += 1

    # The timing loop above left exactly one copy of the drifted phase in
    # the log — precisely what a serving engine would have observed.
    assert engine.workload_log.num_ranges == len(replay_rects)

    # -- advise ------------------------------------------------------------
    report = engine.advise()
    lines += ["", report.render()]
    if not report.should_adapt:
        print("FAIL: advise() did not recommend adapting under drift")
        failures += 1

    # -- adapt: hot swap with byte-identical results -----------------------
    stale_index = engine.index  # keep the old layout for the comparison
    before = [
        canonical_result_bytes(result)
        for result in engine.batch_range_query(replay_rects)
    ]
    adapt_start = time.perf_counter()
    engine.adapt()
    adapt_seconds = time.perf_counter() - adapt_start
    after = [
        canonical_result_bytes(result)
        for result in engine.batch_range_query(replay_rects)
    ]
    if before != after:
        print("FAIL: results differ across the hot swap")
        failures += 1
    lines += ["", f"adapt (re-derive + hot swap): {adapt_seconds:6.2f} s",
              f"results across swap: {'byte-identical' if before == after else 'MISMATCH'}"]

    # -- stale vs adapted replay latency -----------------------------------
    # Warm both legs identically: the adapt above rebuilt engine.index with
    # cold flat-scan caches while stale_index kept its warm ones, so timing
    # without this would charge the adapted leg the one-off cache build.
    warm_query_caches(stale_index, replay_rects)
    warm_query_caches(engine.index, replay_rects)

    def run_on(index):
        def replay():
            results = index.batch_range_query(replay_rects)
            return [result.count() for result in results]
        return replay

    stale_seconds, stale_counts, adapted_seconds, adapted_counts = timeit_pair(
        run_on(stale_index), run_on(engine.index), repeats
    )
    if stale_counts != adapted_counts:
        print("FAIL: stale and adapted layouts disagree on result counts")
        failures += 1
    ratio = stale_seconds / adapted_seconds
    verdict = "ok" if ratio >= args.min_speedup else "BELOW THRESHOLD"
    lines += [
        "",
        f"recorded-workload replay ({len(replay_rects)} range queries):",
        f"  stale layout   {stale_seconds * 1e3:9.1f} ms  "
        f"({stale_seconds / len(replay_rects) * 1e6:7.1f} us/query)",
        f"  adapted layout {adapted_seconds * 1e3:9.1f} ms  "
        f"({adapted_seconds / len(replay_rects) * 1e6:7.1f} us/query)",
        f"  speedup        {ratio:6.2f}x  (threshold {args.min_speedup:.1f}x) {verdict}",
    ]
    if ratio < args.min_speedup:
        failures += 1

    # -- persist: history survives save/open -------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "adapted.snapshot"
        engine.save(snapshot)
        reopened = SpatialEngine.open(
            "wazi", points, train.queries,
            snapshot_path=snapshot, leaf_capacity=64, seed=1,
        )
        history_ok = (
            reopened.workload_log is not None
            and reopened.workload_log.num_ranges == engine.workload_log.num_ranges
        )
        reopened_counts = [r.count() for r in reopened.batch_range_query(replay_rects)]
        # Counts are layout-independent (any correct index returns them), so
        # the structural check is the page size the adaptation retuned: a
        # rebuild for the stale request would come back with the original.
        layout_ok = (
            reopened_counts == adapted_counts
            and reopened.index.leaf_capacity == engine.index.leaf_capacity
        )
        lines.append(
            f"save/open round trip: history {'restored' if history_ok else 'LOST'}, "
            f"adapted layout {'served' if layout_ok else 'NOT SERVED'}"
        )
        if not history_ok or not layout_ok:
            print("FAIL: adapted snapshot did not restore history + layout")
            failures += 1

    report_text = "\n".join(lines) + "\n"
    print("\n".join(lines[1:]))
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(report_text)
    print(f"\nreport written to {REPORT_PATH}")
    write_json_report("bench_adapt", {
        "num_points": num_points,
        "num_queries": num_queries,
        "record_overhead": overhead,
        "max_record_overhead": args.max_record_overhead,
        "adapt_seconds": adapt_seconds,
        "adapt_speedup": ratio,
        "min_speedup_threshold": args.min_speedup,
        "failures": failures,
    })

    if failures:
        print(f"\nFAILED: {failures} failure(s)")
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
