"""Figure 13 — ablation study of adaptive partitioning vs look-ahead skipping.

Four variants are compared across three selectivities: Base (neither
mechanism), Base+SK (skipping only), WaZI-SK (adaptive layout only) and
WaZI (both).  The four panels of the paper's figure map to query time,
excess points compared, bounding boxes checked and pages scanned.  Shape
checks assert the paper's conclusions: the look-ahead pointers drive the
bounding-box reduction (both +SK variants check 10-100x fewer boxes), the
adaptive layout drives the excess-point and page reductions, and the full
WaZI combines both.
"""

import pytest

from benchmarks.common import (
    build_named_index,
    dataset,
    print_results_table,
    print_section,
    range_workload,
)
from repro.evaluation import measure_range_queries

REGION = "newyork"
NUM_POINTS = 16_000
NUM_QUERIES = 120
ABLATION_SELECTIVITIES = (0.0016, 0.0064, 0.1024)
VARIANTS = ("Base", "WaZI", "Base+SK", "WaZI-SK")
METRICS = (
    ("query time (us)", lambda stats: stats.mean_micros),
    ("excess points", lambda stats: stats.per_query("excess_points")),
    ("bbs checked", lambda stats: stats.per_query("bbs_checked")),
    ("pages scanned", lambda stats: stats.per_query("pages_scanned")),
)


@pytest.fixture(scope="module")
def ablation_results():
    points = dataset(REGION, NUM_POINTS)
    results = {}
    for selectivity in ABLATION_SELECTIVITIES:
        workload = range_workload(REGION, selectivity, NUM_QUERIES)
        per_variant = {}
        for name in VARIANTS:
            index = build_named_index(name, points, workload.queries)
            per_variant[name] = measure_range_queries(index, workload.queries)
        results[selectivity] = per_variant
    return results


def test_fig13_ablation(benchmark, ablation_results):
    points = dataset(REGION, NUM_POINTS)
    workload = range_workload(REGION, ABLATION_SELECTIVITIES[1], NUM_QUERIES)
    base_sk = build_named_index("Base+SK", points, workload.queries)
    benchmark.pedantic(
        lambda: [base_sk.range_query(q) for q in workload.queries], rounds=2, iterations=1
    )

    print_section(f"Figure 13: ablation study ({REGION}, n={NUM_POINTS})")
    for metric_name, metric in METRICS:
        rows = []
        for selectivity in ABLATION_SELECTIVITIES:
            stats = ablation_results[selectivity]
            rows.append([selectivity] + [metric(stats[name]) for name in VARIANTS])
        print_results_table(metric_name, ["Selectivity %"] + list(VARIANTS), rows)

    # Shape checks mirroring the paper's conclusions.
    for selectivity in ABLATION_SELECTIVITIES:
        stats = ablation_results[selectivity]
        # 1. Look-ahead pointers slash the number of bounding boxes compared.
        assert stats["Base+SK"].per_query("bbs_checked") < stats["Base"].per_query("bbs_checked")
        assert stats["WaZI"].per_query("bbs_checked") < stats["WaZI-SK"].per_query("bbs_checked")
        # 2. Adaptive partitioning reduces excess points and pages scanned.
        assert (
            stats["WaZI-SK"].per_query("excess_points")
            <= stats["Base"].per_query("excess_points") * 1.05
        )
        # Pages scanned stay comparable: the adaptive layout trades slightly
        # more (smaller) pages in hot regions for fewer points per page.
        assert (
            stats["WaZI"].per_query("pages_scanned")
            <= stats["Base+SK"].per_query("pages_scanned") * 1.25
        )
        # 3. Skipping alone does not change the data layout, so Base and
        #    Base+SK scan identical pages and points.
        assert stats["Base"].per_query("pages_scanned") == pytest.approx(
            stats["Base+SK"].per_query("pages_scanned")
        )
        assert stats["Base"].per_query("excess_points") == pytest.approx(
            stats["Base+SK"].per_query("excess_points")
        )
