"""Online ingest + continuous adaptation under a continuously drifting workload.

The adaptation benchmark (``bench_adapt.py``) measures one stop-the-world
re-derive after one abrupt regime change.  This benchmark measures the
*online* lifecycle against the traffic it was built for: a hotspot that
never stops moving (:func:`repro.workloads.drift.moving_hotspot`) over a
dataset that keeps growing, where a one-shot adapted layout decays a
little more every step.

Two engines serve identical data throughout:

- **stale** — a WaZI layout derived once for step 0, wrapped in an
  :class:`~repro.online.OnlineIndex` whose maintenance loop only
  *compacts* (ingest works, the layout never changes); the
  one-shot-adapted serving system.
- **online** — the same initial layout behind the full
  ``SpatialEngine.online()`` lifecycle: per-step ingest through the
  service's ``/ingest`` handler, queries recorded into the sliding
  window, and one ``run_once()`` maintenance tick per step that compacts
  the delta and incrementally re-derives regressed subtrees.

Each drift step serves ``--waves`` rounds of fresh queries drawn from
the step's hotspot (a hotspot *dwells* for a few batches before moving
on), with a maintenance tick between rounds — so the online engine pays
the decayed cost for the first wave of a step, adapts, and serves the
remaining waves from the re-derived layout, while the stale engine pays
the decayed cost for every wave.  Both engines replay every wave
count-only and the *logical scan cost* (the ``points_filtered`` counter
delta — rows touched, immune to cache warm-up) is accumulated.  Checks,
each fatal to the exit status:

1. **Adaptation pays** — total stale scan cost must be at least
   ``--min-scan-ratio`` (default **1.3x**) the online engine's.
2. **Byte-identical serving** — at every checkpoint the online engine's
   full result sets equal a stop-the-world rebuild from the current live
   multiset, compared as canonically sorted coordinate bytes; both
   engines must also agree on every count at every step.
3. **Strictly scoped re-derives** — every incremental adapt touches a
   strict subset of the leaf layer (0 < scope < 1), asserted from the
   tick summaries and from the ``repro_incremental_adapt_scope`` gauge
   served by the in-process ``/metrics`` endpoint.

Usage::

    PYTHONPATH=src python benchmarks/bench_online.py          # full
    PYTHONPATH=src python benchmarks/bench_online.py --quick  # CI canary

Both run at 100k+ points (the drift/ingest trade-off is defined there);
``--quick`` shortens the drift.  The report lands in
``results/bench_online.txt`` / ``.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

# Allow both `python benchmarks/bench_online.py` and `python -m benchmarks...`:
# script mode puts benchmarks/ (not the repo root) on sys.path.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import write_json_report
from repro.engine import SpatialEngine, build_index
from repro.geometry import Point, Rect
from repro.online import MaintenanceLoop, MaintenancePolicy, OnlineIndex
from repro.query import RangeQuery
from repro.service import SpatialService
from repro.workloads import dataset_extent, generate_dataset, moving_hotspot
from repro.zindex.base import ZIndex

REPORT_PATH = Path(__file__).resolve().parent.parent / "results" / "bench_online.txt"


def canonical_result_bytes(result) -> bytes:
    """Order-independent canonical bytes of one result set."""
    xs, ys = result.as_arrays()
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    order = np.lexsort((ys, xs))
    return xs[order].tobytes() + ys[order].tobytes()


def hotspot_rect(extent: Rect, center, fraction: float) -> Rect:
    """The (relative-coordinate) hotspot sub-rectangle of the extent."""
    cx = extent.xmin + center[0] * extent.width
    cy = extent.ymin + center[1] * extent.height
    half_w = extent.width * fraction / 2.0
    half_h = extent.height * fraction / 2.0
    xmin = min(max(extent.xmin, cx - half_w), extent.xmax - 2 * half_w)
    ymin = min(max(extent.ymin, cy - half_h), extent.ymax - 2 * half_h)
    return Rect(xmin, ymin, xmin + 2 * half_w, ymin + 2 * half_h)


def scan_cost(index, rects) -> int:
    """Logical rows touched by a count-only replay (counter delta)."""
    before = index.counters.points_filtered
    index.batch_range_count(list(rects))
    return index.counters.points_filtered - before


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: fewer steps/queries (same 100k "
                             "points — the drift trade-off is defined there)")
    parser.add_argument("--region", default="newyork")
    parser.add_argument("--num-points", type=int, default=100_000)
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--queries-per-step", type=int, default=None)
    parser.add_argument("--waves", type=int, default=3,
                        help="Query rounds served per drift step, with a "
                             "maintenance tick between rounds (default 3)")
    parser.add_argument("--inserts-per-step", type=int, default=120)
    parser.add_argument("--deletes-per-step", type=int, default=40)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--min-scan-ratio", type=float, default=1.3,
                        help="Required stale/online total replay scan-cost "
                             "ratio (default 1.3)")
    args = parser.parse_args(argv)

    steps = args.steps if args.steps is not None else (5 if args.quick else 10)
    queries_per_step = args.queries_per_step if args.queries_per_step is not None \
        else (100 if args.quick else 200)
    hotspot_fraction = 0.12
    checkpoint_every = max(2, steps // 3)

    header = (
        f"online benchmark: {args.region} n={args.num_points} steps={steps} "
        f"waves/step={args.waves} queries/wave={queries_per_step} "
        f"ingest={args.inserts_per_step}+/{args.deletes_per_step}- "
        f"seed={args.seed} (moving_hotspot, WaZI)"
    )
    lines = [header, ""]
    print(header)
    failures = 0

    points = generate_dataset(args.region, args.num_points, seed=1)
    extent = dataset_extent(args.region)
    # One drift trajectory, --waves independent query batches per step:
    # identical centers (the geometry is deterministic), fresh rects.
    phase_waves = [
        moving_hotspot(
            args.region, steps, queries_per_step,
            selectivity_percent=0.002, hotspot_fraction=hotspot_fraction,
            start=(0.25, 0.25), end=(0.70, 0.37),
            seed=args.seed + 101 * wave,
        )
        for wave in range(args.waves)
    ]
    phases = phase_waves[0]

    # One expensive workload-aware build for step 0, cloned for the twin so
    # both engines start from the byte-identical layout.
    start = time.perf_counter()
    initial = build_index(
        "wazi", points, phases[0].workload.queries, leaf_capacity=64, seed=1
    )
    build_seconds = time.perf_counter() - start
    twin = ZIndex.from_snapshot_state(initial.snapshot_state(), validate=False)
    lines.append(f"step-0 layout built: {build_seconds:6.2f} s "
                 f"({len(initial.leaflist)} leaves)")

    # -- stale: one-shot adapted, maintenance compacts but never adapts ----
    stale = OnlineIndex(initial)
    stale_loop = MaintenanceLoop(stale, policy=MaintenancePolicy(compact_min_rows=1))

    # -- online: the full engine lifecycle ---------------------------------
    engine = SpatialEngine(twin)
    policy = MaintenancePolicy(
        compact_min_rows=1,
        adapt_min_queries=min(64, queries_per_step),
        window_size=2 * queries_per_step,
        scope_depth=5,   # depth-2 cells hold ~25% of the data each — far
        min_leaf_capacity=8,  # too coarse to isolate a 0.12-wide hotspot
    )
    loop = engine.online(policy, start=False)  # ticks driven per step below
    service = SpatialService(engine, record=False)

    # Live multiset tracking for the stop-the-world parity rebuilds.
    inserted: list = []
    deleted_coords: set = set()
    rng = np.random.default_rng(args.seed + 1009)

    online_cost = 0
    stale_cost = 0
    per_step_ratio = []
    scopes = []
    parity_checkpoints = 0
    parity_failures = 0

    for step, phase in enumerate(phases):
        workload = phase.workload
        rects = workload.queries
        hotspot = hotspot_rect(
            extent, workload.extra["hotspot_center"], hotspot_fraction
        )

        # -- ingest: the data drifts with the workload ---------------------
        xs = rng.uniform(hotspot.xmin, hotspot.xmax, size=args.inserts_per_step)
        ys = rng.uniform(hotspot.ymin, hotspot.ymax, size=args.inserts_per_step)
        fresh = [Point(float(x), float(y)) for x, y in zip(xs, ys)]
        doomed = []
        if step >= 2 and args.deletes_per_step:
            base = (step - 2) * args.inserts_per_step
            doomed = inserted[base : base + args.deletes_per_step]
        service.handle_ingest({
            "insert": [[p.x, p.y] for p in fresh],
            "delete": [[p.x, p.y] for p in doomed],
        })
        for p in fresh:
            stale.insert(p)
        for p in doomed:
            stale.delete(p)
        inserted.extend(fresh)
        deleted_coords.update((p.x, p.y) for p in doomed)

        # -- replay: --waves query rounds, a maintenance tick after each ---
        # The online leg goes through the engine so the plans land in the
        # sliding workload window the tick adapts from; the stale leg's
        # loop only ever compacts.
        step_online = 0
        step_stale = 0
        step_adapts = 0
        for wave in range(args.waves):
            rects = phase_waves[wave][step].workload.queries
            plans = [RangeQuery(rect) for rect in rects]
            before = engine.index.counters.points_filtered
            online_counts = engine.execute_many(plans, count_only=True)
            step_online += engine.index.counters.points_filtered - before
            step_stale += scan_cost(stale, rects)

            if online_counts != stale.batch_range_count(rects):
                print(f"FAIL: step {step} wave {wave}: engines disagree "
                      f"on result counts")
                failures += 1

            summary = loop.run_once()
            stale_loop.run_once()
            if summary["adapted"]:
                step_adapts += 1
                scopes.append(summary["scope"])

        online_cost += step_online
        stale_cost += step_stale
        per_step_ratio.append(step_stale / max(1, step_online))

        # -- checkpoint: byte-identical to a stop-the-world rebuild --------
        if step % checkpoint_every == checkpoint_every - 1 or step == steps - 1:
            parity_checkpoints += 1
            live = [
                p for p in points + inserted
                if (p.x, p.y) not in deleted_coords
            ]
            rebuilt = ZIndex(live, leaf_capacity=64)
            want = [canonical_result_bytes(r) for r in rebuilt.batch_range_query(rects)]
            got = [
                canonical_result_bytes(r)
                for r in engine.index.batch_range_query(rects)
            ]
            if got != want:
                parity_failures += 1
                print(f"FAIL: step {step}: results differ from a fresh rebuild")
                failures += 1

        lines.append(
            f"step {step:2d}: scan cost stale {step_stale:>12,} / online "
            f"{step_online:>12,}  ({per_step_ratio[-1]:5.2f}x)  "
            f"{'adapted x%d scope<=%.3f' % (step_adapts, max(scopes[-step_adapts:])) if step_adapts else '-'}"
        )

    # -- verdicts ----------------------------------------------------------
    ratio = stale_cost / max(1, online_cost)
    verdict = "ok" if ratio >= args.min_scan_ratio else "BELOW THRESHOLD"
    lines += [
        "",
        f"total replay scan cost ({steps} steps x {args.waves} waves x "
        f"{queries_per_step} queries):",
        f"  stale (one-shot adapted) {stale_cost:>14,} rows",
        f"  online (continuous)      {online_cost:>14,} rows",
        f"  ratio                    {ratio:6.2f}x  "
        f"(threshold {args.min_scan_ratio:.1f}x) {verdict}",
    ]
    if ratio < args.min_scan_ratio:
        failures += 1

    if not scopes:
        print("FAIL: no maintenance tick performed an incremental adapt")
        failures += 1
    if any(not (0.0 < scope < 1.0) for scope in scopes):
        print("FAIL: an incremental adapt was not a strict subset of the leaves")
        failures += 1
    lines.append(
        f"incremental adapts: {len(scopes)} "
        f"(scope min {min(scopes):.3f} max {max(scopes):.3f})"
        if scopes else "incremental adapts: none"
    )
    lines.append(
        f"parity checkpoints: {parity_checkpoints} "
        f"({'all byte-identical' if parity_failures == 0 else f'{parity_failures} MISMATCHED'})"
    )
    lines.append(
        f"compactions: online {loop.compactions}, stale {stale_loop.compactions}"
    )
    if loop.compactions == 0:
        print("FAIL: the online maintenance loop never compacted")
        failures += 1

    # The scope metric as the service exports it (the /metrics route body).
    metrics_text = service.metrics_text()
    if "repro_incremental_adapt_scope" not in metrics_text:
        print("FAIL: /metrics does not export repro_incremental_adapt_scope")
        failures += 1
    adapt_lines = [
        line for line in metrics_text.splitlines()
        if line.startswith("repro_incremental_adapt") or line.startswith("repro_ingest")
    ]
    lines += ["", "/metrics (online families):"] + [f"  {line}" for line in adapt_lines]

    engine.offline()

    report_text = "\n".join(lines) + "\n"
    print("\n".join(lines[1:]))
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(report_text)
    print(f"\nreport written to {REPORT_PATH}")
    write_json_report("bench_online", {
        "num_points": args.num_points,
        "steps": steps,
        "queries_per_step": queries_per_step,
        "waves_per_step": args.waves,
        "inserts_per_step": args.inserts_per_step,
        "deletes_per_step": args.deletes_per_step,
        "stale_scan_cost": stale_cost,
        "online_scan_cost": online_cost,
        "scan_ratio": ratio,
        "min_scan_ratio_threshold": args.min_scan_ratio,
        "incremental_adapts": len(scopes),
        "max_scope": max(scopes) if scopes else None,
        "compactions": loop.compactions,
        "parity_checkpoints": parity_checkpoints,
        "failures": failures,
    })

    if failures:
        print(f"\nFAILED: {failures} failure(s)")
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
