"""Shared configuration and helpers for the benchmark suite.

Every benchmark module regenerates one of the paper's tables or figures.
The paper runs on 4-64 million points in C++; this pure-Python reproduction
scales the dataset sizes down (default 16 000 points, scaling experiments up
to ~48 000) so that the whole suite completes in minutes on a laptop while
preserving the *relative* behaviour of the indexes — which is the claim the
reproduction checks.  All sizes can be raised via the environment variables
``REPRO_BENCH_SCALE`` (a multiplier) without touching the code.

Each module prints the regenerated rows/series (the same quantities the
paper reports) in addition to registering pytest-benchmark timings, so a
plain ``pytest benchmarks/ --benchmark-only -s`` shows the tables.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import List, Sequence

from repro.engine import build_index
from repro.evaluation import (
    ComparisonResult,
    format_table,
    measure_build,
    measure_point_queries,
    measure_range_queries,
)
from repro.geometry import Point, Rect
from repro.workloads import (
    generate_dataset,
    generate_point_queries,
    generate_range_workload,
)

#: Multiplier applied to every dataset/workload size (for larger machines).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: The four datasets of the paper (Figure 5).
REGIONS = ("calinev", "newyork", "japan", "iberia")

#: The four selectivities of Table 2 / Figure 6, in percent of data space.
SELECTIVITIES = (0.0016, 0.0064, 0.0256, 0.1024)
MID_SELECTIVITY = 0.0256

#: The six indexes of the main experiments (Figures 6-10, Tables 3-5).
MAIN_INDEXES = ("Base", "CUR", "Flood", "QUASII", "STR", "WaZI")

#: Default experiment sizes (the paper's 4M-64M scaled down ~250x).
DEFAULT_NUM_POINTS = int(16_000 * SCALE)
SCALING_SIZES = tuple(int(n * SCALE) for n in (4_000, 8_000, 16_000, 32_000, 48_000))
DEFAULT_NUM_RANGE_QUERIES = int(150 * SCALE) or 1
DEFAULT_NUM_POINT_QUERIES = int(400 * SCALE) or 1
DEFAULT_LEAF_CAPACITY = 64
DEFAULT_SEED = 17

#: Seed-space stride separating per-worker/per-shard streams.  Large and
#: prime so derived seeds never collide with each other or with the small
#: hand-picked base seeds across any realistic worker count.
_WORKER_SEED_STRIDE = 1_000_003


def worker_seed(seed: int, shard_id: int) -> int:
    """The deterministic seed for one worker/shard of a distributed run.

    Serving benchmarks split work across shards and worker processes; each
    slice derives its seed as ``worker_seed(base, shard_id)`` so a sharded
    run and a single-process run replay *identical* workloads — the
    single-process driver iterates the same shard ids and gets the same
    streams, regardless of process count, start method or scheduling
    order.
    """
    if shard_id < 0:
        raise ValueError(f"shard_id must be non-negative, got {shard_id}")
    return int(seed) + _WORKER_SEED_STRIDE * (int(shard_id) + 1)

#: Mapping from the display names used in the tables to build_index() keys.
INDEX_KEYS = {
    "Base": "base",
    "Base+SK": "base+sk",
    "WaZI": "wazi",
    "WaZI-SK": "wazi-sk",
    "STR": "str",
    "CUR": "cur",
    "Flood": "flood",
    "QUASII": "quasii",
    "Zpgm": "zpgm",
    "R-tree": "rtree",
    "QuadTree": "quadtree",
    "k-d tree": "kdtree",
}


@lru_cache(maxsize=32)
def dataset(region: str, num_points: int = DEFAULT_NUM_POINTS, seed: int = DEFAULT_SEED):
    """A cached dataset so multiple benchmarks reuse the same points."""
    return generate_dataset(region, num_points, seed=seed)


@lru_cache(maxsize=64)
def range_workload(
    region: str,
    selectivity: float = MID_SELECTIVITY,
    num_queries: int = DEFAULT_NUM_RANGE_QUERIES,
    seed: int = DEFAULT_SEED,
):
    """A cached range-query workload."""
    return generate_range_workload(region, num_queries, selectivity, seed=seed)


@lru_cache(maxsize=16)
def point_workload(region: str, num_points: int = DEFAULT_NUM_POINTS, seed: int = DEFAULT_SEED):
    """A cached point-query workload sampled from the data distribution."""
    return tuple(
        generate_point_queries(
            region, DEFAULT_NUM_POINT_QUERIES, num_points=num_points, seed=seed
        )
    )


def build_named_index(
    display_name: str,
    points: Sequence[Point],
    queries: Sequence[Rect],
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    seed: int = DEFAULT_SEED,
):
    """Build one of the table indexes by its display name."""
    return build_index(
        INDEX_KEYS[display_name], points, queries, leaf_capacity=leaf_capacity, seed=seed
    )


def warm_query_caches(index, rects: Sequence[Rect]) -> None:
    """Prime an index's lazy query-path caches with one untimed replay.

    The first range query on a freshly built (or freshly adapted) index
    pays one-off costs that have nothing to do with the layout being
    measured: packing the leaf list into the flat scan columns and
    allocating the reusable mask buffers.  A/B layout comparisons must
    call this on *both* indexes before entering the timed region,
    otherwise whichever leg happens to run its first query inside the
    timer absorbs the warm-up and the reported ratio flatters the other
    leg.
    """
    index.batch_range_count(list(rects))


def measure_index(
    display_name: str,
    points: Sequence[Point],
    range_queries: Sequence[Rect],
    point_queries: Sequence[Point] = (),
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    seed: int = DEFAULT_SEED,
) -> ComparisonResult:
    """Build and fully measure one index (build time, size, range/point stats)."""
    index, build_seconds = measure_build(
        lambda: build_named_index(display_name, points, range_queries, leaf_capacity, seed)
    )
    result = ComparisonResult(
        index_name=display_name,
        build_seconds=build_seconds,
        size_bytes=index.size_bytes(),
        num_points=len(index),
    )
    if range_queries:
        result.range_stats = measure_range_queries(index, range_queries)
    if point_queries:
        result.point_stats = measure_point_queries(index, list(point_queries))
    return result


#: All regenerated tables are also appended here so the numbers survive a
#: run without ``-s`` (pytest captures stdout by default).
REPORT_PATH = os.path.join(os.path.dirname(__file__), "..", "results", "benchmark_report.txt")


def _emit(text: str) -> None:
    print(text)
    os.makedirs(os.path.dirname(REPORT_PATH), exist_ok=True)
    with open(REPORT_PATH, "a") as handle:
        handle.write(text + "\n")


def print_section(title: str) -> None:
    _emit("")
    _emit("=" * 72)
    _emit(title)
    _emit("=" * 72)


#: While a benchmark module runs under pytest, every table it prints is
#: also captured here (``{"module": str|None, "tables": [...]}``) so the
#: per-module JSON report can be written without each figure/table module
#: re-describing its own result structure.  ``benchmarks/conftest.py``
#: brackets each module with begin/flush.
_TABLE_CAPTURE: dict = {"module": None, "tables": []}


def begin_table_capture(module: str) -> None:
    """Start collecting printed tables on behalf of ``module``."""
    _TABLE_CAPTURE["module"] = module
    _TABLE_CAPTURE["tables"] = []


def flush_table_capture(module: str) -> str | None:
    """Write ``results/<module>.json`` from the captured tables, if any.

    Modules that assemble a bespoke payload call :func:`write_json_report`
    directly and never print tables, so the two paths cannot clobber each
    other's file.
    """
    tables = _TABLE_CAPTURE["tables"]
    _TABLE_CAPTURE["module"] = None
    _TABLE_CAPTURE["tables"] = []
    if not tables:
        return None
    return write_json_report(module, {"tables": tables})


def print_results_table(title: str, headers: List[str], rows: List[List[object]]) -> None:
    _emit("")
    _emit(format_table(headers, rows, title=title))
    if _TABLE_CAPTURE["module"] is not None:
        _TABLE_CAPTURE["tables"].append(
            {"title": title, "headers": list(headers), "rows": [list(row) for row in rows]}
        )


def micros(seconds: float) -> float:
    return seconds * 1e6


def write_json_report(name: str, payload: dict) -> str:
    """Write a benchmark's machine-readable summary next to its .txt report.

    ``name`` is the module-style benchmark name (``"bench_adapt"``); the
    summary lands in ``results/<name>.json`` with sorted keys so the perf
    trajectory diffs cleanly across commits.  Callers pass whatever
    metrics/speedups/thresholds they assert on; this helper only adds the
    benchmark name and returns the path written.
    """
    import json

    directory = os.path.dirname(REPORT_PATH)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    document = {"benchmark": name}
    document.update(payload)
    with open(path, "w") as handle:
        json.dump(document, handle, sort_keys=True, indent=2, default=float)
        handle.write("\n")
    return path
