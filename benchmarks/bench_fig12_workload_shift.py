"""Figure 12 — effect of workload changes on Base and WaZI.

Base and WaZI are built for a region's original (skewed) workload and then
evaluated on progressively altered workloads: the left panel replaces the
original queries with uniformly placed ones, the right panel with a
*differently* skewed workload.  The paper's findings the reproduction
checks: Base is essentially insensitive to the change, WaZI degrades
gracefully under uniform drift (remaining competitive), and under a
differently-skewed drift WaZI's advantage erodes and can invert once most
of the workload has changed.
"""

import pytest

from benchmarks.common import (
    MID_SELECTIVITY,
    build_named_index,
    dataset,
    print_results_table,
    print_section,
    range_workload,
)
from repro.evaluation import measure_range_queries
from repro.workloads import blend_workloads, generate_range_workload, uniform_range_workload

REGION = "newyork"
NUM_POINTS = 16_000
NUM_QUERIES = 150
CHANGE_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


@pytest.fixture(scope="module")
def shift_results():
    points = dataset(REGION, NUM_POINTS)
    original = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    uniform = uniform_range_workload(REGION, NUM_QUERIES, MID_SELECTIVITY, seed=91)
    differently_skewed = generate_range_workload(
        REGION, NUM_QUERIES, MID_SELECTIVITY, seed=4242
    )
    base = build_named_index("Base", points, original.queries)
    wazi = build_named_index("WaZI", points, original.queries)
    results = {"uniform": [], "skewed": []}
    for label, replacement in (("uniform", uniform), ("skewed", differently_skewed)):
        for fraction in CHANGE_FRACTIONS:
            blended = blend_workloads(original, replacement, fraction, seed=7)
            base_stats = measure_range_queries(base, blended.queries)
            wazi_stats = measure_range_queries(wazi, blended.queries)
            results[label].append(
                {
                    "fraction": fraction,
                    "base_micros": base_stats.mean_micros,
                    "wazi_micros": wazi_stats.mean_micros,
                    "base_excess": base_stats.per_query("excess_points"),
                    "wazi_excess": wazi_stats.per_query("excess_points"),
                }
            )
    return results


def test_fig12_workload_change(benchmark, shift_results):
    points = dataset(REGION, NUM_POINTS)
    original = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    wazi = build_named_index("WaZI", points, original.queries)
    benchmark.pedantic(
        lambda: [wazi.range_query(q) for q in original.queries[:50]], rounds=2, iterations=1
    )

    print_section(f"Figure 12: range query latency under workload drift ({REGION})")
    for label, title in (("uniform", "drift towards a uniform workload"),
                         ("skewed", "drift towards a differently skewed workload")):
        rows = [
            [f"{entry['fraction'] * 100:.0f}%", entry["base_micros"], entry["wazi_micros"],
             entry["base_excess"], entry["wazi_excess"]]
            for entry in shift_results[label]
        ]
        print_results_table(
            title,
            ["% change", "Base (us)", "WaZI (us)", "Base excess pts", "WaZI excess pts"],
            rows,
        )

    # Shape checks: with no drift WaZI beats Base on the logical metric; the
    # WaZI advantage (relative to Base) erodes as the differently-skewed
    # drift grows; under uniform drift WaZI degrades gracefully and stays
    # close to (or better than) Base.
    skewed = shift_results["skewed"]
    ratio_start = skewed[0]["wazi_excess"] / max(1e-9, skewed[0]["base_excess"])
    ratio_end = skewed[-1]["wazi_excess"] / max(1e-9, skewed[-1]["base_excess"])
    assert ratio_start < 1.0
    assert ratio_end > ratio_start
    for entry in shift_results["uniform"]:
        assert entry["wazi_excess"] <= entry["base_excess"] * 1.25
