"""Figure 11 — insert latency and range-query latency over incremental inserts.

The paper inserts 25 % extra points (uniform over the data space) in five
equal batches into WaZI, CUR and Flood, recording the insert latency of
each batch and the range-query latency after it.  Findings the
reproduction checks: WaZI's inserts are the slowest of the three (leaf
splits force LeafList and look-ahead pointer maintenance), and range-query
latency degrades only mildly as inserts accumulate.
"""

import time

import pytest

from benchmarks.common import (
    MID_SELECTIVITY,
    build_named_index,
    dataset,
    print_results_table,
    print_section,
    range_workload,
)
from repro.evaluation import measure_range_queries
from repro.workloads import generate_insert_points

REGION = "newyork"
NUM_POINTS = 12_000
NUM_QUERIES = 100
INSERT_FRACTION = 0.25
NUM_BATCHES = 5
COMPARED = ("WaZI", "CUR", "Flood")


@pytest.fixture(scope="module")
def insert_results():
    points = dataset(REGION, NUM_POINTS)
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    inserts = generate_insert_points(REGION, int(INSERT_FRACTION * NUM_POINTS), seed=31)
    batch_size = len(inserts) // NUM_BATCHES
    results = {}
    for name in COMPARED:
        index = build_named_index(name, points, workload.queries)
        batches = []
        for batch_number in range(NUM_BATCHES):
            batch = inserts[batch_number * batch_size:(batch_number + 1) * batch_size]
            start = time.perf_counter()
            for point in batch:
                index.insert(point)
            insert_seconds = time.perf_counter() - start
            range_stats = measure_range_queries(index, workload.queries)
            batches.append(
                {
                    "inserted_fraction": (batch_number + 1) * INSERT_FRACTION / NUM_BATCHES,
                    "insert_micros": insert_seconds / max(1, len(batch)) * 1e6,
                    "range_micros": range_stats.mean_micros,
                }
            )
        results[name] = batches
    return results


def test_fig11_insert_and_range_latency(benchmark, insert_results):
    points = dataset(REGION, NUM_POINTS)
    workload = range_workload(REGION, MID_SELECTIVITY, NUM_QUERIES)
    flood = build_named_index("Flood", points, workload.queries)
    inserts = generate_insert_points(REGION, 200, seed=32)
    benchmark.pedantic(lambda: [flood.insert(p) for p in inserts], rounds=1, iterations=1)

    print_section(
        f"Figure 11: insert latency and range latency over inserts "
        f"({REGION}, n={NUM_POINTS}, +{int(INSERT_FRACTION * 100)}% uniform inserts)"
    )
    insert_rows = []
    range_rows = []
    fractions = [batch["inserted_fraction"] for batch in insert_results[COMPARED[0]]]
    for row_index, fraction in enumerate(fractions):
        insert_rows.append(
            [f"{fraction * 100:.0f}%"]
            + [insert_results[name][row_index]["insert_micros"] for name in COMPARED]
        )
        range_rows.append(
            [f"{fraction * 100:.0f}%"]
            + [insert_results[name][row_index]["range_micros"] for name in COMPARED]
        )
    print_results_table("insert latency (us/insert)", ["% inserted"] + list(COMPARED), insert_rows)
    print_results_table("range latency after inserts (us/query)",
                        ["% inserted"] + list(COMPARED), range_rows)

    # Shape checks: WaZI inserts are the most expensive of the three, and its
    # range latency does not blow up (stays within 2x of the first batch).
    mean_insert = {
        name: sum(b["insert_micros"] for b in insert_results[name]) / NUM_BATCHES
        for name in COMPARED
    }
    assert mean_insert["WaZI"] >= mean_insert["Flood"]
    first = insert_results["WaZI"][0]["range_micros"]
    last = insert_results["WaZI"][-1]["range_micros"]
    assert last <= 2.0 * first
