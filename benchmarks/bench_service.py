"""Service benchmark: the HTTP front end over a sharded mmap backend.

The end-to-end demo of the serving stack: a WaZI engine is built for the
interactive phase of the ``scan_heavy`` drift scenario, sharded
workload-aware into a directory, and served by a *real* ``python -m
repro serve`` subprocess (worker processes + mmap snapshots).  The
drifted analytical phase is then replayed through the HTTP JSON API and
three properties are asserted:

1. **Byte identity** — every HTTP response body is byte-identical to the
   same request executed in-process on the unsharded engine and rendered
   through the same deterministic JSON encoder.  This closes the loop
   over PR-6's shard-merge guarantee *and* the transport.
2. **Exact reconciliation** — ``/metrics`` per-kind histogram counts
   equal the queries sent, and the ``repro_scan_cost_total`` counters
   equal the engine's own CostCounters as reported by ``/stats``; the
   observability layer double-counts nothing and drops nothing.
3. **Overhead bound** — attaching a MetricsRegistry to an engine costs
   **under 10%** on the batched count replay (same bound, same
   methodology as the PR-5 WorkloadLog observe stage).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py          # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick  # CI canary

Exit status is non-zero on any failed assertion.  The report lands in
``results/bench_service.txt`` / ``bench_service.json``.
"""

from __future__ import annotations

import argparse
import gc
import json
import select
import subprocess
import sys
import tempfile
import time
import urllib.request
from contextlib import contextmanager
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
# Script mode puts benchmarks/ (not the repo root) on sys.path.
sys.path.insert(0, str(ROOT))

from benchmarks.common import write_json_report
from repro.engine import SpatialEngine
from repro.obs import COST_FIELDS, MetricsRegistry
from repro.query import RangeQuery
from repro.service import SpatialService, render_json_bytes
from repro.serving import build_shards
from repro.workloads import drift_scenario, generate_dataset

REPORT_PATH = ROOT / "results" / "bench_service.txt"


@contextmanager
def _gc_paused():
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def timeit_pair(fn_a, fn_b, repeats):
    """Interleaved best-of timing (see bench_adapt for the rationale)."""
    best_a = best_b = float("inf")
    result_a = result_b = None
    with _gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            result_a = fn_a()
            best_a = min(best_a, time.perf_counter() - start)
            start = time.perf_counter()
            result_b = fn_b()
            best_b = min(best_b, time.perf_counter() - start)
    return best_a, result_a, best_b, result_b


def start_server(shard_dir: Path, workers: int, timeout: float = 120.0):
    """Spawn ``python -m repro serve`` and wait for its ready line."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(shard_dir),
         "--port", "0", "--workers", str(workers), "--mmap", "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        cwd=ROOT,
    )
    deadline = time.time() + timeout
    captured = ""
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"serve exited early (rc={proc.returncode}): {captured!r}"
            )
        ready, _, _ = select.select([proc.stdout], [], [], 0.5)
        if not ready:
            continue
        line = proc.stdout.readline()
        captured += line
        if '"event"' in line and '"ready"' in line:
            return proc, json.loads(line)["url"]
    proc.kill()
    raise RuntimeError(f"serve did not become ready in {timeout}s: {captured!r}")


def http_post(url: str, path: str, payload: dict) -> bytes:
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.read()


def http_get(url: str, path: str) -> bytes:
    with urllib.request.urlopen(url + path) as response:
        return response.read()


def parse_prometheus(text: str) -> dict:
    """Prometheus exposition text -> ``{"name{labels}": float}``."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, value = line.rsplit(" ", 1)
        samples[series] = float(value)
    return samples


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: fewer queries/repeats (same 100k "
                             "points — the overhead bound is defined there)")
    parser.add_argument("--region", default="newyork")
    parser.add_argument("--num-points", type=int, default=None)
    parser.add_argument("--num-queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-metrics-overhead", type=float, default=0.10,
                        help="Allowed relative slowdown of the batched count "
                             "replay with metrics attached (default 10%%)")
    args = parser.parse_args(argv)

    num_points = args.num_points if args.num_points is not None else 100_000
    num_queries = args.num_queries if args.num_queries is not None else (
        200 if args.quick else 400
    )
    num_probes = 32
    repeats = 5 if args.quick else 7
    failures = 0

    lines = [
        f"service benchmark: {args.region} n={num_points} "
        f"queries/phase={num_queries} shards={args.shards} "
        f"workers={args.workers} seed={args.seed} (scan_heavy, WaZI)",
        "",
    ]
    print(lines[0])

    points = generate_dataset(args.region, num_points, seed=1)
    phases = drift_scenario(
        "scan_heavy", args.region, num_queries=num_queries, seed=args.seed
    )
    train = phases[0].workload
    drifted = phases[1].workload
    rects = drifted.queries

    start = time.perf_counter()
    engine = SpatialEngine.build(
        "wazi", points, train.queries, leaf_capacity=64, seed=1
    )
    lines.append(f"serving layout built: {time.perf_counter() - start:6.2f} s")

    # The request workload: the drifted ranges, plus knn/radius probes
    # derived from them (scan_heavy is range-only; the service must still
    # prove all three plan kinds over HTTP).
    range_batch = {
        "queries": [
            {"kind": "range", "rect": [r.xmin, r.ymin, r.xmax, r.ymax]}
            for r in rects
        ],
        "count_only": True,
    }
    row_batch = {
        "queries": range_batch["queries"][:num_probes],
    }
    knn_batch = {
        "queries": [
            {"kind": "knn",
             "center": [(r.xmin + r.xmax) / 2.0, (r.ymin + r.ymax) / 2.0],
             "k": 8}
            for r in rects[:num_probes]
        ],
    }
    radius_batch = {
        "queries": [
            {"kind": "radius",
             "center": [(r.xmin + r.xmax) / 2.0, (r.ymin + r.ymax) / 2.0],
             "radius": (r.xmax - r.xmin) / 2.0}
            for r in rects[:num_probes]
        ],
    }
    single_requests = [
        {"kind": "range", "rect": [rects[0].xmin, rects[0].ymin,
                                   rects[0].xmax, rects[0].ymax],
         "limit": 16},
        dict(knn_batch["queries"][0]),
        dict(radius_batch["queries"][0]),
    ]
    expected_kind_counts = {
        "range": len(rects) + num_probes + 1,
        "knn": num_probes + 1,
        "radius": num_probes + 1,
    }
    all_payloads = [range_batch, row_batch, knn_batch, radius_batch,
                    *single_requests]

    with tempfile.TemporaryDirectory(prefix="bench_service_") as tmp:
        shard_dir = Path(tmp) / "shards"
        start = time.perf_counter()
        build_shards(engine.index, shard_dir, args.shards,
                     workload=train.queries)
        lines.append(
            f"sharded {args.shards} ways (workload-weighted): "
            f"{time.perf_counter() - start:6.2f} s"
        )

        proc, url = start_server(shard_dir, args.workers)
        try:
            # -- 1. byte identity vs in-process execution ----------------
            twin = SpatialService(
                SpatialEngine(engine.index), record=False
            )
            mismatches = 0
            http_seconds = 0.0
            for payload in all_payloads:
                start = time.perf_counter()
                body = http_post(url, "/query", payload)
                http_seconds += time.perf_counter() - start
                expect = render_json_bytes(twin.handle_query(payload))
                if body != expect:
                    mismatches += 1
            total_queries = sum(expected_kind_counts.values())
            lines += [
                "",
                f"HTTP replay: {total_queries} queries in "
                f"{len(all_payloads)} requests, {http_seconds * 1e3:.1f} ms",
                f"responses vs in-process unsharded execution: "
                f"{'byte-identical' if mismatches == 0 else f'{mismatches} MISMATCHED'}",
            ]
            if mismatches:
                print(f"FAIL: {mismatches} response(s) not byte-identical")
                failures += 1

            # -- 2. /metrics reconciles exactly --------------------------
            samples = parse_prometheus(http_get(url, "/metrics").decode())
            stats = json.loads(http_get(url, "/stats"))
            for kind, expected in sorted(expected_kind_counts.items()):
                total = samples.get(
                    f'repro_queries_total{{kind="{kind}"}}', 0.0
                )
                hist = samples.get(
                    f'repro_query_latency_micros_count{{kind="{kind}"}}', 0.0
                )
                ok = total == expected and hist == expected
                lines.append(
                    f"  {kind:>6}: sent {expected}, counted {total:.0f}, "
                    f"histogram {hist:.0f}  {'ok' if ok else 'MISMATCH'}"
                )
                if not ok:
                    print(f"FAIL: /metrics {kind} counts do not reconcile")
                    failures += 1
            counter_mismatches = []
            for field in COST_FIELDS:
                metric = samples.get(
                    f'repro_scan_cost_total{{counter="{field}"}}', 0.0
                )
                counters = stats["counters"].get(field, 0)
                if metric != counters:
                    counter_mismatches.append((field, metric, counters))
            lines.append(
                "scan-cost counters vs /stats CostCounters: "
                + ("exact" if not counter_mismatches
                   else f"MISMATCH {counter_mismatches}")
            )
            if counter_mismatches:
                print(f"FAIL: scan-cost counters diverge: {counter_mismatches}")
                failures += 1
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    # -- 3. metrics overhead on the batched count replay -----------------
    plans = [RangeQuery(rect) for rect in rects]
    plain = SpatialEngine(engine.index)
    metered = SpatialEngine(engine.index, metrics=MetricsRegistry())
    plain.batch_range_count(rects)  # warm the flat-scan caches once

    plain_seconds, plain_counts, metered_seconds, metered_counts = timeit_pair(
        lambda: plain.execute_many(plans, count_only=True),
        lambda: metered.execute_many(plans, count_only=True),
        repeats,
    )
    if plain_counts != metered_counts:
        print("FAIL: metrics recording changed query results")
        failures += 1
    overhead = metered_seconds / plain_seconds - 1.0
    verdict = "ok" if overhead < args.max_metrics_overhead else "ABOVE BOUND"
    lines += [
        "",
        f"metrics overhead (batched count replay, {len(plans)} queries):",
        f"  metrics off {plain_seconds * 1e3:9.1f} ms",
        f"  metrics on  {metered_seconds * 1e3:9.1f} ms   "
        f"{overhead * 100:+.1f}% (bound {args.max_metrics_overhead * 100:.0f}%) "
        f"{verdict}",
    ]
    if overhead >= args.max_metrics_overhead:
        failures += 1

    report_text = "\n".join(lines) + "\n"
    print("\n".join(lines[1:]))
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(report_text)
    print(f"\nreport written to {REPORT_PATH}")
    write_json_report("bench_service", {
        "num_points": num_points,
        "num_queries": num_queries,
        "shards": args.shards,
        "workers": args.workers,
        "byte_identical_responses": mismatches == 0,
        "metrics_overhead": overhead,
        "max_metrics_overhead": args.max_metrics_overhead,
        "failures": failures,
    })

    if failures:
        print(f"\nFAILED: {failures} failure(s)")
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
