"""Table 4 — cost redemption against the Base Z-index.

Cost redemption asks: after how many query executions does an index's
faster querying pay back its more expensive construction (relative to
Base)?  The paper finds WaZI redeems itself after roughly 0.2-0.8 million
queries, STR/Flood are cheaper to build but slower to query (so they win
only for short workloads), and QUASII never redeems its construction cost.
"""

import pytest

from benchmarks.common import (
    DEFAULT_NUM_POINTS,
    MID_SELECTIVITY,
    REGIONS,
    dataset,
    measure_index,
    print_results_table,
    print_section,
    range_workload,
)
from repro.evaluation import cost_redemption

COMPARED = ("CUR", "Flood", "QUASII", "STR", "WaZI")
NUM_QUERIES = 120


@pytest.fixture(scope="module")
def redemption_results():
    results = {}
    for region in REGIONS:
        points = dataset(region, DEFAULT_NUM_POINTS)
        workload = range_workload(region, MID_SELECTIVITY, NUM_QUERIES)
        cell = {"Base": measure_index("Base", points, workload.queries)}
        for name in COMPARED:
            cell[name] = measure_index(name, points, workload.queries)
        results[region] = cell
    return results


def test_table4_cost_redemption(benchmark, redemption_results):
    base = redemption_results[REGIONS[0]]["Base"]
    wazi = redemption_results[REGIONS[0]]["WaZI"]
    benchmark.pedantic(
        lambda: cost_redemption(
            "WaZI",
            wazi.build_seconds,
            wazi.range_stats.mean_seconds,
            base.build_seconds,
            base.range_stats.mean_seconds,
        ),
        rounds=5,
        iterations=1,
    )

    print_section("Table 4: cost redemption against Base (number of queries to break even)")
    rows = []
    entries = {}
    for region in REGIONS:
        cell = redemption_results[region]
        base_result = cell["Base"]
        row = [region]
        for name in COMPARED:
            entry = cost_redemption(
                name,
                cell[name].build_seconds,
                cell[name].range_stats.mean_seconds,
                base_result.build_seconds,
                base_result.range_stats.mean_seconds,
            )
            entries[(region, name)] = entry
            row.append(entry.render())
        rows.append(row)
    print_results_table("(+) eventually/always better, (-) eventually/always worse",
                        ["Region"] + list(COMPARED), rows)

    # Shape checks: WaZI builds slower than Base, so wherever it is faster
    # per query it must report a finite positive break-even count; STR builds
    # faster than Base, so it never reports a "(+) with count" cell.
    for region in REGIONS:
        wazi_entry = entries[(region, "WaZI")]
        if wazi_entry.sign == "+":
            assert wazi_entry.queries_to_break_even is None or wazi_entry.queries_to_break_even > 0
        str_entry = entries[(region, "STR")]
        assert not (str_entry.sign == "+" and str_entry.queries_to_break_even is not None)
