"""Kernel tier + plan cache benchmark: the sub-10µs exact-repeat hot path.

Four legs, each a correctness assertion as much as a timing:

1. **Parity** — the batched count and gather replays (the same
   ``scan_heavy`` drifted phase :mod:`bench_adapt` replays) must be
   byte-identical under ``REPRO_KERNELS=numpy`` and
   ``REPRO_KERNELS=numba``.  On a machine without Numba both resolve to
   the NumPy reference and the leg degenerates to a self-check; with
   Numba installed it is the real differential gate (CI runs both).
2. **Plan cache** — an exact-repeat replay through a
   :class:`~repro.engine.SpatialEngine` with ``plan_cache=True`` must
   beat the same replay through an uncached engine on the same index by
   at least ``--min-speedup`` (default **5x**), with identical counts.
   Hits must also stay under 10µs/query — the title claim.
3. **float32 columns** — ``adopt_coord_dtype(np.float32)`` must halve
   the flat coordinate footprint (reported; the count drift, if any, is
   reported too — the mode is value-lossy by design).
4. **Scale** (skipped under ``--quick``) — a 10M-point single-process
   build + replay, proving the kernel path holds up three orders of
   magnitude above the test sizes.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py          # full, incl. 10M leg
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick  # CI-sized

Exit status is non-zero on any failed assertion.  The report lands in
``results/bench_kernels.txt``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

# Script mode puts benchmarks/ (not the repo root) on sys.path.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_adapt import canonical_result_bytes, timeit_pair
from benchmarks.common import warm_query_caches, write_json_report
from repro import kernels
from repro.engine import SpatialEngine, build_index
from repro.query import RangeQuery
from repro.workloads import drift_scenario, generate_dataset

REPORT_PATH = Path(__file__).resolve().parent.parent / "results" / "bench_kernels.txt"


def replay_bytes(index, rects):
    """The full replay as canonical bytes: counts plus gathered results."""
    counts = np.asarray(index.batch_range_count(rects), dtype=np.int64)
    gathered = b"".join(
        canonical_result_bytes(result) for result in index.batch_range_query(rects)
    )
    return counts.tobytes() + gathered


def coord_footprint(index, rects):
    """Bytes held by the flat coordinate columns (primed first)."""
    warm_query_caches(index, rects[:1])
    return index._flat_x.nbytes + index._flat_y.nbytes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: fewer queries/repeats, no 10M leg "
                             "(same 100k points — the speedup bound is defined there)")
    parser.add_argument("--region", default="newyork")
    parser.add_argument("--num-points", type=int, default=None)
    parser.add_argument("--num-queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="Required uncached/cached ratio on the exact-repeat "
                             "batched count replay (default 5.0)")
    parser.add_argument("--scale-points", type=int, default=10_000_000,
                        help="Size of the single-process scale leg (default 10M)")
    args = parser.parse_args(argv)

    num_points = args.num_points if args.num_points is not None else 100_000
    num_queries = args.num_queries if args.num_queries is not None else (
        400 if args.quick else 800
    )
    repeats = 5 if args.quick else 7

    lines = [
        f"kernel benchmark: {args.region} n={num_points} "
        f"queries={num_queries} seed={args.seed} (scan_heavy replay, WaZI)",
        f"kernel tier: requested={kernels.requested_backend() or 'auto'} "
        f"active={kernels.backend_name()} "
        f"numba={'available' if kernels.numba_available() else 'absent'}",
        "",
    ]
    print(lines[0])
    print(lines[1])
    failures = 0

    points = generate_dataset(args.region, num_points, seed=1)
    phases = drift_scenario(
        "scan_heavy", args.region, num_queries=num_queries, seed=args.seed
    )
    replay_rects = phases[1].workload.queries
    replay_plans = [RangeQuery(rect) for rect in replay_rects]

    start = time.perf_counter()
    index = build_index(
        "wazi", points, phases[0].workload.queries, leaf_capacity=64, seed=1
    )
    lines.append(f"index built: {time.perf_counter() - start:6.2f} s")
    warm_query_caches(index, replay_rects)

    # -- leg 1: kernel-tier parity on the full replay ----------------------
    payloads = {}
    for mode in ("numpy", "numba"):
        with kernels.use(mode) as backend:
            resolved = getattr(backend, "BACKEND", mode)
            payloads[mode] = replay_bytes(index, replay_rects)
        lines.append(f"replay under REPRO_KERNELS={mode:<5} -> {resolved} tier")
    identical = payloads["numpy"] == payloads["numba"]
    lines.append(
        f"kernel-tier parity (counts + gathered results): "
        f"{'byte-identical' if identical else 'MISMATCH'}"
    )
    if not identical:
        print("FAIL: kernel tiers disagree on the replay")
        failures += 1

    # -- leg 2: plan cache on exact repeats --------------------------------
    # Two engines over the SAME index: timing isolates the cache itself.
    uncached = SpatialEngine(index)
    cached = SpatialEngine(index, plan_cache=True)

    def replay_uncached():
        return uncached.execute_many(replay_plans, count_only=True)

    def replay_cached():
        return cached.execute_many(replay_plans, count_only=True)

    replay_cached()  # warm pass: populates the cache (every later pass hits)
    uncached_seconds, uncached_counts, cached_seconds, cached_counts = timeit_pair(
        replay_uncached, replay_cached, repeats
    )
    if cached_counts != uncached_counts:
        print("FAIL: cached replay returned different counts")
        failures += 1
    stats = cached.plan_cache.stats
    if stats.misses != len(replay_plans):
        print(f"FAIL: expected exactly one miss per plan, got {stats.misses}")
        failures += 1
    ratio = uncached_seconds / cached_seconds
    per_hit_us = cached_seconds / len(replay_plans) * 1e6
    verdict = "ok" if ratio >= args.min_speedup else "BELOW THRESHOLD"
    hit_verdict = "ok" if per_hit_us < 10.0 else "ABOVE 10us"
    lines += [
        "",
        f"exact-repeat batched count replay ({len(replay_plans)} plans):",
        f"  uncached engine {uncached_seconds * 1e3:9.2f} ms  "
        f"({uncached_seconds / len(replay_plans) * 1e6:8.2f} us/query)",
        f"  plan cache      {cached_seconds * 1e3:9.2f} ms  "
        f"({per_hit_us:8.2f} us/query) {hit_verdict}",
        f"  speedup         {ratio:8.2f}x  (threshold {args.min_speedup:.1f}x) {verdict}",
        f"  cache stats: {stats.hits} hits, {stats.misses} misses, "
        f"hit rate {stats.hit_rate:.3f}",
    ]
    if ratio < args.min_speedup:
        failures += 1
    if per_hit_us >= 10.0:
        failures += 1

    # -- leg 3: float32 column mode ----------------------------------------
    counts64 = list(index.batch_range_count(replay_rects))
    before_bytes = coord_footprint(index, replay_rects)
    index.adopt_coord_dtype(np.float32)
    after_bytes = coord_footprint(index, replay_rects)
    counts32 = list(index.batch_range_count(replay_rects))
    drift = sum(1 for a, b in zip(counts64, counts32) if a != b)
    lines += [
        "",
        "float32 coordinate columns:",
        f"  footprint {before_bytes} -> {after_bytes} bytes "
        f"({after_bytes / before_bytes:.2f}x)",
        f"  count drift vs float64: {drift}/{len(counts64)} queries "
        f"(value-lossy mode; drift is expected, not a failure)",
    ]
    if after_bytes >= before_bytes:
        print("FAIL: float32 columns did not shrink the footprint")
        failures += 1
    index.adopt_coord_dtype(np.float64)

    # -- leg 4: 10M-point single-process run (full mode only) --------------
    if not args.quick:
        n = args.scale_points
        start = time.perf_counter()
        big_points = generate_dataset(args.region, n, seed=1)
        gen_seconds = time.perf_counter() - start
        start = time.perf_counter()
        big = build_index("wazi", big_points, leaf_capacity=256, seed=1)
        build_seconds = time.perf_counter() - start
        del big_points
        scale_rects = replay_rects[:64]
        warm_query_caches(big, scale_rects)
        start = time.perf_counter()
        scale_counts = big.batch_range_count(scale_rects)
        scan_seconds = time.perf_counter() - start
        with kernels.use("numpy"):
            reference_counts = big.batch_range_count(scale_rects)
        scale_ok = scale_counts == reference_counts
        lines += [
            "",
            f"scale leg ({n:,} points, single process):",
            f"  dataset {gen_seconds:7.1f} s   build {build_seconds:7.1f} s",
            f"  {len(scale_rects)}-query count replay {scan_seconds * 1e3:9.1f} ms "
            f"({scan_seconds / len(scale_rects) * 1e6:9.1f} us/query, "
            f"{sum(scale_counts):,} rows)",
            f"  counts vs numpy tier: {'identical' if scale_ok else 'MISMATCH'}",
        ]
        if not scale_ok:
            print("FAIL: scale-leg counts differ between tiers")
            failures += 1

    report_text = "\n".join(lines) + "\n"
    print("\n".join(lines[2:]))
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(report_text)
    print(f"\nreport written to {REPORT_PATH}")
    write_json_report("bench_kernels", {
        "plan_cache_speedup": ratio,
        "plan_cache_hit_us": per_hit_us,
        "min_speedup_threshold": args.min_speedup,
        "float32_footprint_ratio": after_bytes / before_bytes,
        "failures": failures,
    })

    if failures:
        print(f"\nFAILED: {failures} failure(s)")
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
