"""Figure 5 — dataset and query-workload distributions.

The paper's Figure 5 is a scatter-plot panel of the four datasets and their
check-in (query-center) distributions.  In a text-only benchmark we
reproduce it as coarse occupancy grids (ASCII heat maps) plus the summary
statistics that characterise the skew: the share of points in the densest
cells and the divergence between the data and the query-center
distributions (the setup's defining property: queries are skewed
*differently* from the data).
"""

import numpy as np
import pytest

from benchmarks.common import REGIONS, dataset, print_results_table, print_section
from repro.workloads import dataset_extent, generate_checkin_centers
from repro.workloads.datasets import dataset_summary

NUM_POINTS = 8_000
NUM_CENTERS = 2_000
GRID = 8
_SHADES = " .:-=+*#%@"


def ascii_heatmap(grid: np.ndarray) -> str:
    peak = grid.max() or 1
    lines = []
    for row in grid[::-1]:
        line = "".join(_SHADES[min(len(_SHADES) - 1, int(v / peak * (len(_SHADES) - 1)))] for v in row)
        lines.append(line)
    return "\n".join(lines)


def top_cell_share(grid: np.ndarray, fraction: float = 0.125) -> float:
    counts = np.sort(grid.ravel())[::-1]
    top = counts[: max(1, int(len(counts) * fraction))].sum()
    return float(top / max(1, counts.sum()))


@pytest.fixture(scope="module")
def distributions():
    result = {}
    for region in REGIONS:
        extent = dataset_extent(region)
        data_grid = dataset_summary(dataset(region, NUM_POINTS), extent, grid=GRID)
        centers = generate_checkin_centers(region, NUM_CENTERS, seed=23)
        query_grid = dataset_summary(centers, extent, grid=GRID)
        result[region] = (data_grid, query_grid)
    return result


def test_fig05_dataset_and_workload_distributions(benchmark, distributions):
    benchmark.pedantic(lambda: dataset_summary(dataset("calinev", NUM_POINTS),
                                               dataset_extent("calinev"), grid=GRID),
                       rounds=3, iterations=1)
    print_section("Figure 5: data (D) and query-center (Q) distributions")
    rows = []
    for region in REGIONS:
        data_grid, query_grid = distributions[region]
        print(f"\n--- {region}: data distribution ---")
        print(ascii_heatmap(data_grid))
        print(f"--- {region}: check-in / query-center distribution ---")
        print(ascii_heatmap(query_grid))
        data_p = data_grid.ravel() / max(1, data_grid.sum())
        query_p = query_grid.ravel() / max(1, query_grid.sum())
        l1_divergence = float(np.abs(data_p - query_p).sum()) / 2.0
        rows.append([
            region,
            top_cell_share(data_grid),
            top_cell_share(query_grid),
            l1_divergence,
        ])
    print_results_table(
        "distribution skew summary",
        ["Region", "data: share in top 12.5% cells", "queries: share in top 12.5% cells",
         "total-variation distance data vs queries"],
        rows,
    )
    for region, data_share, query_share, divergence in rows:
        # Both distributions are skewed, and the query distribution differs
        # from the data distribution (the paper's experimental premise).
        assert data_share > 0.3
        assert query_share > 0.3
        assert divergence > 0.1
