"""Shared pytest wiring for the figure/table benchmark modules.

Each module's printed tables are captured by ``benchmarks.common`` while
its tests run and flushed to ``results/<module>.json`` afterwards, so
every regenerated figure/table has a machine-readable twin next to the
text report without per-module boilerplate.
"""

import pytest

from benchmarks import common


@pytest.fixture(autouse=True, scope="module")
def _json_table_report(request):
    module = request.module.__name__.rpartition(".")[2]
    common.begin_table_capture(module)
    yield
    common.flush_table_capture(module)
