"""Table 1 — key properties of the compared indexes.

The table is descriptive (SFC-based / query-aware / learned); the benchmark
verifies the property matrix renders and is keyed by the same six indexes
used throughout the evaluation.
"""

from benchmarks.common import MAIN_INDEXES, print_section, write_json_report
from repro.evaluation import index_properties_table
from repro.evaluation.reporting import INDEX_PROPERTIES


def test_table1_index_properties(benchmark):
    table = benchmark(index_properties_table)
    print_section("Table 1: key properties of the indexes in the experiments")
    print(table)
    write_json_report(
        "bench_table1_properties",
        {"properties": {name: dict(props) for name, props in INDEX_PROPERTIES.items()}},
    )
    assert set(INDEX_PROPERTIES) == set(MAIN_INDEXES)
    assert INDEX_PROPERTIES["WaZI"]["sfc_based"]
    assert INDEX_PROPERTIES["WaZI"]["query_aware"]
    assert INDEX_PROPERTIES["WaZI"]["learned"]
