#!/usr/bin/env python3
"""Workload drift: when does a workload-aware index need rebuilding?

WaZI is optimised for the workload it was built with (Section 6.8 of the
paper).  This example reproduces that experiment as an application scenario:
an index built for last month's query log serves queries while the workload
gradually drifts, and an operator wants to know when the index has lost its
edge and should be rebuilt.

The example:

1. builds Base and WaZI for the original skewed workload,
2. evaluates both under increasing drift towards (a) a uniform workload and
   (b) a differently skewed workload,
3. uses the drift detector from ``repro.analysis`` to flag when the observed
   workload has departed from the training workload enough that a rebuild is
   recommended, and
4. rebuilds WaZI on the drifted workload to show the advantage is recovered.

Run with::

    python examples/workload_shift.py
"""

from repro import BaseZIndex, WaZI, generate_dataset, generate_range_workload, uniform_range_workload
from repro.analysis import WorkloadDriftDetector
from repro.evaluation import format_table, measure_range_queries
from repro.workloads import blend_workloads

REGION = "newyork"
NUM_POINTS = 20_000
NUM_QUERIES = 300
SELECTIVITY = 0.0256


def evaluate(index, queries):
    stats = measure_range_queries(index, queries)
    return stats.mean_micros, stats.per_query("excess_points")


def main() -> None:
    data = generate_dataset(REGION, NUM_POINTS, seed=3)
    original = generate_range_workload(REGION, NUM_QUERIES, SELECTIVITY, seed=3)
    differently_skewed = generate_range_workload(REGION, NUM_QUERIES, SELECTIVITY, seed=999)
    uniform = uniform_range_workload(REGION, NUM_QUERIES, SELECTIVITY, seed=555)

    base = BaseZIndex(data, leaf_capacity=64)
    wazi = WaZI(data, original.queries, leaf_capacity=64, seed=3)
    detector = WorkloadDriftDetector.from_workload(original.queries, grid=12)

    rows = []
    for label, replacement in (("uniform", uniform), ("skewed", differently_skewed)):
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            drifted = blend_workloads(original, replacement, fraction, seed=11)
            base_micros, base_excess = evaluate(base, drifted.queries)
            wazi_micros, wazi_excess = evaluate(wazi, drifted.queries)
            drift_score = detector.drift_score(drifted.queries)
            rows.append([
                f"{label} {fraction:.0%}",
                base_micros,
                wazi_micros,
                base_excess,
                wazi_excess,
                drift_score,
                "rebuild" if detector.should_rebuild(drifted.queries) else "keep",
            ])

    print(format_table(
        ["drift", "Base us", "WaZI us", "Base excess", "WaZI excess", "drift score", "advice"],
        rows,
        title=f"Workload drift on '{REGION}' (index built for the original workload)",
    ))

    # Rebuild WaZI for the fully drifted skewed workload and show recovery.
    drifted = blend_workloads(original, differently_skewed, 1.0, seed=11)
    stale_micros, stale_excess = evaluate(wazi, drifted.queries)
    rebuilt = WaZI(data, drifted.queries, leaf_capacity=64, seed=3)
    fresh_micros, fresh_excess = evaluate(rebuilt, drifted.queries)
    print("\nAfter 100% drift to the differently skewed workload:")
    print(f"  stale WaZI : {stale_micros:8.1f} us/query, {stale_excess:7.1f} excess points/query")
    print(f"  rebuilt    : {fresh_micros:8.1f} us/query, {fresh_excess:7.1f} excess points/query")


if __name__ == "__main__":
    main()
