#!/usr/bin/env python3
"""Ablation study: how much does each WaZI mechanism contribute?

WaZI adds two mechanisms on top of the base Z-index — adaptive, workload-
aware partitioning/ordering (Section 4) and look-ahead skipping pointers
(Section 5).  This example reproduces the spirit of the paper's Section 6.9
ablation interactively: it builds the four variants

* ``Base``     — median splits, no skipping,
* ``Base+SK``  — median splits, with look-ahead pointers,
* ``WaZI-SK``  — adaptive layout, no look-ahead pointers,
* ``WaZI``     — adaptive layout and look-ahead pointers,

runs the same workload against each and reports the four metrics of
Figure 13 (query time, excess points, bounding boxes checked, pages
scanned), plus a sweep over the cost-model parameter ``alpha`` showing why
the skip-aware objective (alpha ~ 1e-5) is the right one to optimise when
look-ahead pointers are available.

Run with::

    python examples/ablation_study.py
"""

from repro import BaseZIndex, WaZI, generate_dataset, generate_range_workload
from repro.core import BaseWithSkipping, WaZIWithoutSkipping
from repro.evaluation import format_table, measure_range_queries

REGION = "newyork"
NUM_POINTS = 20_000
NUM_QUERIES = 250
SELECTIVITY = 0.0064


def measure(index, queries):
    stats = measure_range_queries(index, queries)
    return [
        stats.mean_micros,
        stats.per_query("excess_points"),
        stats.per_query("bbs_checked"),
        stats.per_query("pages_scanned"),
    ]


def main() -> None:
    data = generate_dataset(REGION, NUM_POINTS, seed=5)
    workload = generate_range_workload(REGION, NUM_QUERIES, SELECTIVITY, seed=5)

    variants = {
        "Base": BaseZIndex(data, leaf_capacity=64),
        "Base+SK": BaseWithSkipping(data, leaf_capacity=64),
        "WaZI-SK": WaZIWithoutSkipping(data, workload.queries, leaf_capacity=64, seed=5),
        "WaZI": WaZI(data, workload.queries, leaf_capacity=64, seed=5),
    }

    rows = [[name] + measure(index, workload.queries) for name, index in variants.items()]
    print(format_table(
        ["Variant", "query time (us)", "excess points", "bbs checked", "pages scanned"],
        rows,
        title=f"Ablation on '{REGION}' (n={NUM_POINTS}, selectivity {SELECTIVITY}%)",
    ))
    print()
    print("Reading the table: the +SK variants slash the number of bounding boxes")
    print("checked (the skipping mechanism), while the WaZI layouts reduce excess")
    print("points and pages scanned (the adaptive partitioning); the full WaZI")
    print("combines both effects.")

    # Alpha sweep: how skip-aware should the construction objective be?
    print()
    alpha_rows = []
    for alpha in (1.0, 0.1, 1e-3, 1e-5):
        index = WaZI(data, workload.queries, leaf_capacity=64, seed=5, alpha=alpha)
        alpha_rows.append([alpha] + measure(index, workload.queries))
    print(format_table(
        ["alpha", "query time (us)", "excess points", "bbs checked", "pages scanned"],
        alpha_rows,
        title="Effect of the skip-cost parameter alpha on the WaZI layout",
        float_format="{:.4g}",
    ))


if __name__ == "__main__":
    main()
