#!/usr/bin/env python3
"""Location-based-service analytics: comparing indexes on a skewed workload.

The scenario the paper's introduction motivates: a location-based service
holds a large table of points of interest and repeatedly answers rectangular
"what is around this area?" queries whose centers follow user check-ins —
i.e. the query load is skewed towards popular neighbourhoods and differs
from the raw POI distribution.

This example builds all six indexes of the paper's main experiments on the
same data and workload, measures build time, index size, range-query and
point-query latency plus the logical work counters, and prints a comparison
table resembling the paper's evaluation.

Run with::

    python examples/poi_analytics.py [region] [num_points]
"""

import sys

from repro import SpatialEngine, generate_dataset, generate_range_workload
from repro.evaluation import format_table, measure_build, measure_point_queries, measure_range_queries
from repro.workloads import generate_point_queries

INDEXES = ("base", "str", "cur", "flood", "quasii", "wazi")


def main(region: str = "calinev", num_points: int = 20_000) -> None:
    data = generate_dataset(region, num_points, seed=7)
    workload = generate_range_workload(region, 300, selectivity_percent=0.0064, seed=7)
    point_queries = generate_point_queries(region, 500, num_points=num_points, seed=7)

    print(f"region={region}, points={num_points}, range queries={len(workload)}, "
          f"point queries={len(point_queries)}")

    rows = []
    for name in INDEXES:
        engine, build_seconds = measure_build(
            lambda name=name: SpatialEngine.build(
                name, data, workload.queries, leaf_capacity=64, seed=7
            )
        )
        range_stats = measure_range_queries(engine, workload.queries)
        point_stats = measure_point_queries(engine, point_queries)
        rows.append([
            engine.name,
            build_seconds,
            engine.size_bytes() / (1024 * 1024),
            range_stats.mean_micros,
            range_stats.per_query("excess_points"),
            range_stats.per_query("bbs_checked"),
            point_stats.mean_micros,
        ])

    rows.sort(key=lambda row: row[3])
    print()
    print(format_table(
        ["Index", "build (s)", "size (MB)", "range (us)", "excess pts/q", "bbs/q", "point (us)"],
        rows,
        title=f"POI analytics on '{region}' — lower is better everywhere",
    ))

    best = rows[0][0]
    print(f"\nFastest range queries: {best}")
    print("The workload-aware indexes (WaZI, CUR, QUASII) pay a higher build cost; "
          "whether that pays off depends on how many queries the deployment will serve "
          "(see benchmarks/bench_table4_cost_redemption.py).")


if __name__ == "__main__":
    region_arg = sys.argv[1] if len(sys.argv) > 1 else "calinev"
    num_points_arg = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    main(region_arg, num_points_arg)
