"""Adaptive serving: the observe → advise → adapt lifecycle end to end.

A serving deployment rarely gets the workload it was built for — traffic
drifts.  This example walks the engine through a drifting scenario from
:mod:`repro.workloads.drift`:

1. build a WaZI engine for the first phase's workload and start
   **observing** (``record=True``),
2. serve the next phase's (drifted) traffic,
3. ask the engine for **advice** — is the layout still right for what it
   actually serves? —,
4. **adapt**: re-derive the layout from the recorded workload and
   hot-swap it under the (hypothetical) running queries,
5. persist the adapted engine + its observed history, and reopen it.

Run with::

    PYTHONPATH=src python examples/adaptive_serving.py
"""

import tempfile
import time
from pathlib import Path

from repro import RangeQuery, SpatialEngine, drift_scenario, generate_dataset

REGION = "newyork"
NUM_POINTS = 30_000
QUERIES_PER_PHASE = 300


def replay_seconds(index, rects, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for result in index.batch_range_query(rects):
            result.count()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    points = generate_dataset(REGION, NUM_POINTS, seed=1)
    phases = drift_scenario(
        "scan_heavy", REGION, num_queries=QUERIES_PER_PHASE, seed=3
    )
    first, drifted = phases[0].workload, phases[1].workload

    # 1. build for the first phase, observing from the start
    engine = SpatialEngine.build(
        "wazi", points, first.queries, leaf_capacity=64, seed=1, record=True
    )
    print(f"serving engine: {engine} (built for phase {phases[0].name!r})")

    # 2. serve the drifted phase — every executed plan lands in the log
    engine.execute_many([RangeQuery(rect) for rect in drifted.queries])
    print(f"observed traffic: {engine.workload_log}")

    # 3. advise: is the layout still right for the observed traffic?
    report = engine.advise()
    print()
    print(report.render())

    if not report.should_adapt:
        print("layout still fits the traffic; nothing to do")
        return

    # 4. adapt: re-derive the layout from the observed workload and
    #    hot-swap it; result sets produced before the swap stay valid
    stale_index = engine.index
    engine.adapt()
    stale = replay_seconds(stale_index, drifted.queries)
    adapted = replay_seconds(engine.index, drifted.queries)
    print()
    print(f"recorded-workload replay: stale {stale * 1e3:.1f} ms, "
          f"adapted {adapted * 1e3:.1f} ms ({stale / adapted:.2f}x)")

    # 5. persist the adapted engine together with its observed history
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "serving.snapshot"
        engine.save(snapshot)
        reopened = SpatialEngine.open(
            "wazi", points, first.queries,
            snapshot_path=snapshot, leaf_capacity=64, seed=1, record=True,
        )
        print(f"reopened: {reopened} with "
              f"{len(reopened.workload_log)} observed queries restored")


if __name__ == "__main__":
    main()
