#!/usr/bin/env python3
"""Quickstart: serve spatial queries through the columnar-first engine API.

This example walks through the core workflow of the library:

1. generate a dataset (a synthetic stand-in for the paper's OpenStreetMap
   points of interest),
2. describe the anticipated range-query workload (skewed "check-in"
   centers, as in the paper's semi-synthetic setup),
3. build a SpatialEngine around the workload-aware WaZI index (and one
   around the plain Base Z-index for comparison),
4. execute typed query plans — range, point, kNN — with lazy ResultSet
   views, count-only and array-consuming executions,
5. compare the logical work the two indexes perform,
6. persist the engine and serve from the snapshot (the paper's
   offline-build / online-serve deployment story).

Run with::

    python examples/quickstart.py
"""

import tempfile
import time
from pathlib import Path

from repro import (
    KnnQuery,
    Point,
    PointQuery,
    RangeQuery,
    SpatialEngine,
    generate_dataset,
    generate_range_workload,
    run_range_workload,
    workload_summary,
)


def main() -> None:
    # 1. A dataset: 20 000 points of interest from the synthetic NewYork region.
    data = generate_dataset("newyork", 20_000, seed=1)
    print(f"dataset: {len(data)} points, e.g. {data[0]}")

    # 2. An anticipated workload: 300 range queries whose centers follow a
    #    skewed check-in distribution, each covering 0.0256 % of the data space.
    workload = generate_range_workload(
        "newyork", 300, selectivity_percent=0.0256, seed=1
    )
    print(f"workload: {len(workload)} queries, first query = {workload[0]}")

    # 3. Build the engines.  WaZI consumes the workload; Base ignores it.
    wazi = SpatialEngine.build("wazi", data, workload.queries, leaf_capacity=64, seed=1)
    base = SpatialEngine.build("base", data, leaf_capacity=64)
    for engine in (wazi, base):
        index = engine.index
        print(f"{engine.name}: {len(engine)} points, "
              f"{len(index.leaflist)} leaves, depth {index.depth()}")

    # 4. Execute typed query plans.  Results come back as lazy ResultSet
    #    views: counting and the coordinate columns never box a Point.
    plan = RangeQuery(workload.queries[0])
    hits = wazi.execute(plan)
    xs, ys = hits.as_arrays()                      # NumPy columns, zero boxing
    print(f"range plan {plan.rect} -> {hits.count()} points, "
          f"centroid ({xs.mean():.3f}, {ys.mean():.3f})")
    print(f"count-only  -> {wazi.execute(plan, count_only=True)} (no materialisation)")
    print(f"first three -> {wazi.execute(plan, limit=3).points()}")

    probe = data[123]
    print(f"point plan {probe} -> {wazi.execute(PointQuery(probe))}")
    print(f"point plan (missing) -> {wazi.execute(PointQuery(Point(-1.0, -1.0)))}")

    neighbours = wazi.execute(KnnQuery(Point(30.0, 32.0), k=5))
    print("5 nearest neighbours of (30, 32):")
    for neighbour in neighbours:                   # iteration boxes on demand
        print(f"  {neighbour}")

    # 5. Compare the logical work on the full workload.  execute_many routes
    #    a homogeneous plan list through the amortised batch path.
    plans = [RangeQuery(query) for query in workload.queries]
    for engine in (base, wazi):
        engine.execute_many(plans)                 # warm-up + demonstration
        stats = run_range_workload(engine, workload.queries)
        summary = workload_summary(stats)
        print(
            f"{summary['index']:>5s}: {summary['mean_micros']:8.1f} us/query, "
            f"{summary['excess_points_per_query']:7.1f} excess points/query, "
            f"{summary['bbs_checked_per_query']:6.1f} bounding boxes/query"
        )

    # 6. Build once, serve many: persist the engine and load it back without
    #    re-running construction.  The served engine answers every plan
    #    byte-identically; see docs/PERSISTENCE.md for the format.
    with tempfile.TemporaryDirectory() as tmpdir:
        snapshot_path = Path(tmpdir) / "wazi.snapshot"
        wazi.save(snapshot_path)
        start = time.perf_counter()
        serving = SpatialEngine.load(snapshot_path)
        load_ms = (time.perf_counter() - start) * 1e3
        assert serving.execute(plan) == hits
        print(
            f"snapshot: {snapshot_path.stat().st_size / 1024:.0f} KiB, "
            f"loaded {len(serving)} points in {load_ms:.1f} ms "
            f"(results identical to the built engine)"
        )


if __name__ == "__main__":
    main()
