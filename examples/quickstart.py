#!/usr/bin/env python3
"""Quickstart: build a WaZI index and answer spatial queries.

This example walks through the core workflow of the library:

1. generate a dataset (a synthetic stand-in for the paper's OpenStreetMap
   points of interest),
2. describe the anticipated range-query workload (skewed "check-in"
   centers, as in the paper's semi-synthetic setup),
3. build the workload-aware WaZI index and the plain Base Z-index,
4. run range, point and kNN queries,
5. compare the logical work the two indexes perform,
6. snapshot the built index and serve from the snapshot (the paper's
   offline-build / online-serve deployment story).

Run with::

    python examples/quickstart.py
"""

import tempfile
import time
from pathlib import Path

from repro import (
    WaZI,
    BaseZIndex,
    Point,
    generate_dataset,
    generate_range_workload,
    load_snapshot,
    run_range_workload,
    save_snapshot,
)
from repro.api import workload_summary


def main() -> None:
    # 1. A dataset: 20 000 points of interest from the synthetic NewYork region.
    data = generate_dataset("newyork", 20_000, seed=1)
    print(f"dataset: {len(data)} points, e.g. {data[0]}")

    # 2. An anticipated workload: 300 range queries whose centers follow a
    #    skewed check-in distribution, each covering 0.0256 % of the data space.
    workload = generate_range_workload(
        "newyork", 300, selectivity_percent=0.0256, seed=1
    )
    print(f"workload: {len(workload)} queries, first query = {workload[0]}")

    # 3. Build the indexes.  WaZI consumes the workload; Base ignores it.
    wazi = WaZI(data, workload.queries, leaf_capacity=64, seed=1)
    base = BaseZIndex(data, leaf_capacity=64)
    print(f"WaZI: {len(wazi)} points, {len(wazi.leaflist)} leaves, depth {wazi.depth()}")
    print(f"Base: {len(base)} points, {len(base.leaflist)} leaves, depth {base.depth()}")

    # 4. Queries.
    query = workload.queries[0]
    hits = wazi.range_query(query)
    print(f"range query {query} -> {len(hits)} points")

    probe = data[123]
    print(f"point query {probe} -> {wazi.point_query(probe)}")
    print(f"point query (missing) -> {wazi.point_query(Point(-1.0, -1.0))}")

    neighbours = wazi.knn(Point(30.0, 32.0), k=5)
    print("5 nearest neighbours of (30, 32):")
    for neighbour in neighbours:
        print(f"  {neighbour}")

    # 5. Compare the logical work on the full workload.
    for index in (base, wazi):
        stats = run_range_workload(index, workload.queries)
        summary = workload_summary(stats)
        print(
            f"{summary['index']:>5s}: {summary['mean_micros']:8.1f} us/query, "
            f"{summary['excess_points_per_query']:7.1f} excess points/query, "
            f"{summary['bbs_checked_per_query']:6.1f} bounding boxes/query"
        )

    # 6. Build once, serve many: snapshot the built WaZI and load it back
    #    without re-running construction.  The loaded index answers every
    #    query byte-identically; see docs/PERSISTENCE.md for the format.
    with tempfile.TemporaryDirectory() as tmpdir:
        snapshot_path = Path(tmpdir) / "wazi.snapshot"
        save_snapshot(wazi, snapshot_path)
        start = time.perf_counter()
        serving = load_snapshot(snapshot_path)
        load_ms = (time.perf_counter() - start) * 1e3
        assert serving.range_query(query) == hits
        print(
            f"snapshot: {snapshot_path.stat().st_size / 1024:.0f} KiB, "
            f"loaded {len(serving)} points in {load_ms:.1f} ms "
            f"(results identical to the built index)"
        )


if __name__ == "__main__":
    main()
