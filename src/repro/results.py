"""Lazy, columnar result views returned by every query path.

The columnar engine of PRs 1-3 filters candidates entirely on NumPy
coordinate columns, yet the public query surface used to box every result
row back into a :class:`~repro.geometry.Point` before handing it to the
caller — exactly the scalar overhead the columnar refactor exists to
eliminate.  :class:`ResultSet` closes that gap: query paths return a view
over the result *coordinates* (two float64 columns) and ``Point`` objects
are materialised only when a caller explicitly asks for them
(:meth:`ResultSet.points`, iteration, indexing, list comparison).

Array-consuming workloads (analytics over ``.xs``/``.ys``, count-only
plans, result post-filtering via :meth:`mask`/:meth:`take`) therefore never
pay a Python boxing loop, while existing callers keep working unchanged:
``ResultSet`` implements the full sequence protocol and compares equal to
the eager ``List[Point]`` the pre-redesign API returned.

Construction is private to the library; indexes build result sets through
one of three classmethods:

* :meth:`from_points` — wraps an eagerly boxed list (the scalar baselines),
* :meth:`from_arrays` — wraps already-gathered coordinate columns,
* an optional ``boxer`` callback lets the columnar engine keep even the
  boxing lazy *and* identity-preserving (the Z-index family hands back the
  same cached ``Point`` objects the eager path used to return).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.geometry import Point, points_from_arrays, points_to_arrays

__all__ = ["ResultSet"]


def _readonly(array: np.ndarray) -> np.ndarray:
    """Freeze an array before exposing it: result views are immutable."""
    array = np.ascontiguousarray(array, dtype=np.float64)
    array.flags.writeable = False
    return array


class ResultSet(Sequence):
    """A lazy, columnar view over the coordinates of one query's results.

    The two coordinate columns (:attr:`xs` / :attr:`ys`, read-only float64
    arrays) and the result :meth:`count` are available without creating a
    single ``Point``; :meth:`points`, iteration, ``[]`` and comparison with
    plain lists materialise boxed points on first use and cache them.

    ``ResultSet`` is an immutable :class:`~collections.abc.Sequence`: it
    supports ``len``, iteration, indexing, slicing (returning a list, like
    the eager API's copies did), ``in``, and order-sensitive equality with
    lists, tuples and other result sets.
    """

    __slots__ = ("_xs", "_ys", "_count", "_boxed", "_boxer")

    def __init__(
        self,
        *,
        xs: Optional[np.ndarray] = None,
        ys: Optional[np.ndarray] = None,
        boxed: Optional[List[Point]] = None,
        boxer: Optional[Callable[[], List[Point]]] = None,
        count: Optional[int] = None,
    ) -> None:
        if boxed is None and xs is None:
            raise ValueError("ResultSet needs coordinate columns or boxed points")
        self._xs = xs
        self._ys = ys
        self._boxed = boxed
        self._boxer = boxer
        if count is None:
            count = len(boxed) if boxed is not None else int(xs.shape[0])
        self._count = count

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: List[Point], *, own: bool = False) -> "ResultSet":
        """Wrap an eagerly boxed result list (scalar index paths).

        With ``own=True`` the list is adopted without a defensive copy —
        only for lists the caller guarantees nobody else mutates.
        """
        if not own:
            points = list(points)
        return cls(boxed=points)

    @classmethod
    def from_arrays(
        cls,
        xs: np.ndarray,
        ys: np.ndarray,
        *,
        boxer: Optional[Callable[[], List[Point]]] = None,
    ) -> "ResultSet":
        """Wrap two coordinate columns (columnar index paths).

        ``boxer``, when given, supplies the boxed points on first demand —
        the Z-index family uses it to hand back its cached ``Point``
        objects instead of re-boxing coordinates.
        """
        xs = _readonly(xs)
        ys = _readonly(ys)
        if xs.shape != ys.shape:
            raise ValueError(f"coordinate columns differ in shape: {xs.shape} vs {ys.shape}")
        return cls(xs=xs, ys=ys, boxer=boxer)

    @classmethod
    def empty(cls) -> "ResultSet":
        """The empty result."""
        return cls(boxed=[], count=0)

    # ------------------------------------------------------------------
    # columnar surface (never boxes)
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of result points.  Never materialises ``Point`` objects."""
        return self._count

    @property
    def xs(self) -> np.ndarray:
        """Result x coordinates as a read-only float64 column."""
        self._ensure_arrays()
        return self._xs

    @property
    def ys(self) -> np.ndarray:
        """Result y coordinates as a read-only float64 column."""
        self._ensure_arrays()
        return self._ys

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(xs, ys)`` — the result coordinates as read-only columns.

        On results produced by the columnar engine this never creates a
        ``Point``; on boxed results the columns are extracted once and
        cached.
        """
        self._ensure_arrays()
        return self._xs, self._ys

    def mask(self, mask: np.ndarray) -> "ResultSet":
        """A new result set keeping the rows where ``mask`` is true.

        ``mask`` is a boolean array of length :meth:`count` (row order is
        preserved).  Stays columnar: no boxing happens unless this result's
        points were already materialised, in which case the selection
        reuses the existing objects.
        """
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self._count,):
            raise ValueError(
                f"mask must be a boolean array of shape ({self._count},), "
                f"got {mask.dtype} {mask.shape}"
            )
        return self.take(np.flatnonzero(mask))

    def take(self, indices) -> "ResultSet":
        """A new result set holding the rows at ``indices``, in that order.

        Like :meth:`mask`, the selection stays columnar unless the points
        were already boxed (then the existing objects are reused).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError(f"indices must be one-dimensional, got shape {indices.shape}")
        if indices.size and (
            int(indices.min()) < -self._count or int(indices.max()) >= self._count
        ):
            raise IndexError(f"take index out of range for {self._count} results")
        indices = np.where(indices < 0, indices + self._count, indices)
        boxed = self._boxed
        if boxed is not None and self._xs is None:
            return ResultSet(boxed=[boxed[i] for i in indices.tolist()])
        self._ensure_arrays()
        picked: Optional[List[Point]] = None
        if boxed is not None:
            picked = [boxed[i] for i in indices.tolist()]
        return ResultSet(
            xs=_readonly(self._xs[indices]),
            ys=_readonly(self._ys[indices]),
            boxed=picked,
        )

    def head(self, limit: int) -> "ResultSet":
        """The first ``limit`` results (the plan executor's ``limit`` option)."""
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        if limit >= self._count:
            return self
        return self.take(np.arange(limit, dtype=np.int64))

    # ------------------------------------------------------------------
    # boxed surface (materialises Points, cached)
    # ------------------------------------------------------------------
    def points(self) -> List[Point]:
        """The results as a fresh list of :class:`Point` objects.

        The boxing happens once and is cached; the returned list is a
        shallow copy the caller may freely mutate (matching the eager
        API, which returned a new list per call).
        """
        return list(self._ensure_boxed())

    def _ensure_boxed(self) -> List[Point]:
        if self._boxed is None:
            if self._boxer is not None:
                boxed = self._boxer()
                if len(boxed) != self._count:
                    raise RuntimeError(
                        f"result boxer produced {len(boxed)} points, expected {self._count}"
                    )
                self._boxed = boxed
            else:
                self._boxed = points_from_arrays(self._xs, self._ys)
        # The boxer closure can pin large index state (the Z-index boxer
        # captures a whole flat-column generation); drop it once boxing is
        # cached so retained result sets stop holding that memory.
        self._boxer = None
        return self._boxed

    def _ensure_arrays(self) -> None:
        if self._xs is None:
            xs, ys = points_to_arrays(self._boxed)
            self._xs = _readonly(xs)
            self._ys = _readonly(ys)

    # ------------------------------------------------------------------
    # sequence protocol (back-compat with the eager List[Point] API)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[Point]:
        return iter(self._ensure_boxed())

    def __getitem__(self, index):
        # Slices return a plain list, matching the eager API's copies.
        return self._ensure_boxed()[index]

    def __contains__(self, item) -> bool:
        if type(item) is not Point:
            return False
        self._ensure_arrays()
        hits = (self._xs == item.x) & (self._ys == item.y)
        return bool(hits.any())

    def __eq__(self, other) -> bool:
        if other is self:
            return True
        if isinstance(other, ResultSet):
            if self._count != other._count:
                return False
            sx, sy = self.as_arrays()
            ox, oy = other.as_arrays()
            return bool(np.array_equal(sx, ox) and np.array_equal(sy, oy))
        if isinstance(other, (list, tuple)):
            if self._count != len(other):
                return False
            self._ensure_arrays()
            for x, y, item in zip(self._xs.tolist(), self._ys.tolist(), other):
                if type(item) is not Point or item.x != x or item.y != y:
                    return False
            return True
        return NotImplemented

    __hash__ = None  # mutable-equality semantics, like list

    def __repr__(self) -> str:
        preview = ", ".join(repr(p) for p in self._ensure_boxed()[:4])
        suffix = ", ..." if self._count > 4 else ""
        return f"ResultSet({self._count} points: [{preview}{suffix}])"
