"""Axis-aligned rectangles and quadrant classification.

Range queries throughout the paper are axis-aligned rectangles described by
their bottom-left (``BL``) and top-right (``TR``) corners.  The retrieval
cost model of Section 4.2 additionally needs to know, for a candidate split
point ``(sx, sy)``, which quadrant contains each of the query's two corners;
the pair of quadrants (for example "bottom-left corner in A, top-right
corner in C") selects which of the cost terms of Eq. 1/2 applies.
:func:`classify_quadrants` implements exactly that classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.geometry.point import Point

# Quadrant labels follow the paper's Figure 1: with a split point (sx, sy),
# A is the lower-left quadrant, B the lower-right, C the upper-left and D
# the upper-right.  The "abcd" ordering visits them A, B, C, D; the
# alternative "acbd" ordering visits them A, C, B, D.
QUADRANT_A = 0
QUADRANT_B = 1
QUADRANT_C = 2
QUADRANT_D = 3

QUADRANT_NAMES = ("A", "B", "C", "D")


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    The rectangle is closed on every side; a point lying exactly on the
    boundary counts as contained.  Degenerate rectangles (zero width or
    height) are allowed and behave as segments or points.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"Malformed rectangle: ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    # -- corners -------------------------------------------------------
    @property
    def bottom_left(self) -> Point:
        """The ``BL`` corner used by the Z-index range-query algorithm."""
        return Point(self.xmin, self.ymin)

    @property
    def top_right(self) -> Point:
        """The ``TR`` corner used by the Z-index range-query algorithm."""
        return Point(self.xmax, self.ymax)

    # -- measures ------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    # -- predicates ----------------------------------------------------
    def contains_point(self, point: Point) -> bool:
        """Whether ``point`` lies inside (or on the boundary of) the rectangle."""
        return (
            self.xmin <= point.x <= self.xmax
            and self.ymin <= point.y <= self.ymax
        )

    def contains_xy(self, x: float, y: float) -> bool:
        """Coordinate-level containment check, avoiding a Point allocation."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains_arrays(self, xs, ys):
        """Vectorized containment: a boolean mask over coordinate columns.

        ``xs``/``ys`` are equally shaped NumPy arrays; element ``i`` of the
        result equals ``contains_xy(xs[i], ys[i])``.  This is the predicate
        the columnar page scan evaluates.
        """
        return (
            (xs >= self.xmin) & (xs <= self.xmax)
            & (ys >= self.ymin) & (ys <= self.ymax)
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def overlaps(self, other: "Rect") -> bool:
        """Whether the two closed rectangles share at least one point."""
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping region, or ``None`` when the rectangles are disjoint."""
        if not self.overlaps(other):
            return None
        return Rect(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
        )

    def union(self, other: "Rect") -> "Rect":
        """The smallest rectangle enclosing both rectangles."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def expand_to_point(self, point: Point) -> "Rect":
        """The smallest rectangle enclosing this rectangle and ``point``."""
        return Rect(
            min(self.xmin, point.x),
            min(self.ymin, point.y),
            max(self.xmax, point.x),
            max(self.ymax, point.y),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to enclose ``other`` (R-tree ChooseSubtree metric)."""
        return self.union(other).area - self.area

    # -- directional relations (skipping criteria, Section 5.1) ---------
    def is_below(self, query: "Rect") -> bool:
        """Whether this rectangle lies entirely below ``query`` (TR.y < BL(R).y)."""
        return self.ymax < query.ymin

    def is_above(self, query: "Rect") -> bool:
        """Whether this rectangle lies entirely above ``query``."""
        return self.ymin > query.ymax

    def is_left_of(self, query: "Rect") -> bool:
        """Whether this rectangle lies entirely to the left of ``query``."""
        return self.xmax < query.xmin

    def is_right_of(self, query: "Rect") -> bool:
        """Whether this rectangle lies entirely to the right of ``query``."""
        return self.xmin > query.xmax

    # -- partitioning helpers -------------------------------------------
    def quadrant_of_point(self, x: float, y: float, sx: float, sy: float) -> int:
        """Quadrant (A/B/C/D) of the cell point ``(x, y)`` relative to split ``(sx, sy)``.

        A point exactly on a split line is assigned to the lower/left side,
        matching the strict ``>`` comparisons of Algorithm 1 in the paper.
        """
        bit_x = 1 if x > sx else 0
        bit_y = 1 if y > sy else 0
        return 2 * bit_y + bit_x

    def split(self, sx: float, sy: float) -> Tuple["Rect", "Rect", "Rect", "Rect"]:
        """Split into the four child quadrants (A, B, C, D) at ``(sx, sy)``.

        The split point must lie within the rectangle.  Quadrants follow the
        paper's layout: A lower-left, B lower-right, C upper-left, D
        upper-right.
        """
        if not self.contains_xy(sx, sy):
            raise ValueError(
                f"Split point ({sx}, {sy}) outside rectangle {self}"
            )
        quad_a = Rect(self.xmin, self.ymin, sx, sy)
        quad_b = Rect(sx, self.ymin, self.xmax, sy)
        quad_c = Rect(self.xmin, sy, sx, self.ymax)
        quad_d = Rect(sx, sy, self.xmax, self.ymax)
        return (quad_a, quad_b, quad_c, quad_d)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.xmin, self.ymin, self.xmax, self.ymax)


def rect_from_points(bl: Point, tr: Point) -> Rect:
    """Build a rectangle from its bottom-left and top-right corners."""
    return Rect(bl.x, bl.y, tr.x, tr.y)


def rect_from_center(center: Point, width: float, height: float) -> Rect:
    """Build a rectangle centered on ``center`` with the given side lengths."""
    half_w = width / 2.0
    half_h = height / 2.0
    return Rect(center.x - half_w, center.y - half_h, center.x + half_w, center.y + half_h)


def bounding_box(points: Sequence[Point]) -> Rect:
    """The smallest rectangle enclosing a non-empty sequence of points."""
    if not points:
        raise ValueError("bounding_box requires at least one point")
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def bounding_box_of_rects(rects: Iterable[Rect]) -> Rect:
    """The smallest rectangle enclosing every rectangle in ``rects``."""
    rects = list(rects)
    if not rects:
        raise ValueError("bounding_box_of_rects requires at least one rectangle")
    return Rect(
        min(r.xmin for r in rects),
        min(r.ymin for r in rects),
        max(r.xmax for r in rects),
        max(r.ymax for r in rects),
    )


def classify_quadrants(query: Rect, sx: float, sy: float) -> Tuple[int, int]:
    """Quadrants containing the query's BL and TR corners for a split point.

    Returns a pair ``(q_bl, q_tr)`` of quadrant ids.  This is the
    ``delta_{R in XY}`` indicator of Eq. 1/2 in the paper: a range query is
    "in AD" when its bottom-left corner falls in quadrant A and its top-right
    corner falls in quadrant D, and so on.  Because BL is dominated by TR the
    pair is always one of the ten combinations appearing in the cost model
    (AA, AB, AC, AD, BB, BD, CC, CD, DD and the degenerate BC never occurs).
    """
    q_bl = query.quadrant_of_point(query.xmin, query.ymin, sx, sy)
    q_tr = query.quadrant_of_point(query.xmax, query.ymax, sx, sy)
    return (q_bl, q_tr)
