"""Two-dimensional geometry primitives used by every index in the library.

The spatial indexes in this package (the base Z-index, WaZI, and all the
baselines) operate on two-dimensional points and axis-aligned rectangles.
This subpackage provides those primitives together with the predicates the
paper relies on:

* containment and overlap tests between rectangles and points,
* the *domination* partial order used to state the Z-index monotonicity
  property (Section 3 of the paper),
* bounding-box computation for collections of points,
* the quadrant classification of a rectangle with respect to a split point,
  which underlies the retrieval-cost model of Section 4.2.
"""

from repro.geometry.point import (
    Point,
    as_points,
    dominates,
    points_from_arrays,
    points_to_arrays,
)
from repro.geometry.rect import (
    Rect,
    bounding_box,
    bounding_box_of_rects,
    classify_quadrants,
    rect_from_center,
    rect_from_points,
)

__all__ = [
    "Point",
    "Rect",
    "as_points",
    "dominates",
    "bounding_box",
    "bounding_box_of_rects",
    "classify_quadrants",
    "points_from_arrays",
    "points_to_arrays",
    "rect_from_center",
    "rect_from_points",
]
