"""Points in the plane and the domination partial order.

The paper's Z-index monotonicity property (Section 3) is stated in terms of
*domination*: point ``a`` is dominated by point ``b`` when ``a.x <= b.x`` and
``a.y <= b.y`` with at least one strict inequality.  The property says that a
dominated point never appears later in the Z-order than the point dominating
it when the two points fall in different leaf cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

import numpy as np


@dataclass(frozen=True, order=False)
class Point:
    """An immutable point in the plane.

    Points are hashable so they can be collected in sets (useful when
    checking range-query results against a brute-force scan in tests).
    """

    x: float
    y: float

    def as_tuple(self) -> Tuple[float, float]:
        """Return the point as an ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __getitem__(self, index: int) -> float:
        if index == 0:
            return self.x
        if index == 1:
            return self.y
        raise IndexError(f"Point index out of range: {index}")

    def __len__(self) -> int:
        return 2

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_squared(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (used by kNN helpers)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy


def dominates(a: Point, b: Point) -> bool:
    """Return ``True`` when ``a`` dominates ``b``.

    ``a`` dominates ``b`` if ``b.x <= a.x`` and ``b.y <= a.y`` with at least
    one coordinate strictly smaller.  This mirrors the definition used in the
    paper to state Z-order monotonicity; equal points dominate neither way.
    """
    if b.x > a.x or b.y > a.y:
        return False
    return b.x < a.x or b.y < a.y


def as_points(coords: Iterable[Tuple[float, float]]) -> list:
    """Convert an iterable of ``(x, y)`` tuples into a list of :class:`Point`."""
    return [Point(float(x), float(y)) for x, y in coords]


def points_to_arrays(points):
    """Split a sequence of points into ``(xs, ys)`` float64 coordinate columns.

    The inverse of :func:`as_points` for the columnar code paths: the two
    arrays are freshly allocated and contiguous, suitable for vectorized
    predicates and for :meth:`repro.storage.Page.from_arrays`.
    """
    n = len(points)
    xs = np.fromiter((p.x for p in points), dtype=np.float64, count=n)
    ys = np.fromiter((p.y for p in points), dtype=np.float64, count=n)
    return xs, ys


def points_from_arrays(xs, ys) -> list:
    """Box two coordinate columns back into a list of :class:`Point`.

    The inverse of :func:`points_to_arrays`, used by the persistence layer
    when materialising datasets from stored columns.  Iterating the
    ``tolist()`` conversions keeps the boxing loop at C level for the float
    extraction, the same idiom as :attr:`repro.storage.Page.points`.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape:
        raise ValueError(f"coordinate columns differ in shape: {xs.shape} vs {ys.shape}")
    return [Point(x, y) for x, y in zip(xs.tolist(), ys.tolist())]
