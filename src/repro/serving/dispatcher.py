"""The scatter/gather dispatcher: one :class:`SpatialIndex` over many shards.

:class:`ShardedIndex` presents a shard directory as a single index with
the full :class:`~repro.interfaces.SpatialIndex` query surface, so every
consumer of that surface — the engine facade, query plans, the join
algorithms, benchmark harnesses — works against a sharded deployment
unchanged.  Each query is routed to the shards whose data bounding box
can contribute (:meth:`ShardPlan.route_rect` / ``route_point``), executed
there, and the partial results merged.

Merging is exact, not approximate — the merged results are byte-identical
to the unsharded engine's, including result *ordering*:

* **Range and radius queries** return rows in flat (curve) order.  Shards
  are contiguous curve ranges, so concatenating shard results in shard-id
  order *is* the global flat order; the merge is a concatenation.
* **kNN** returns rows in (distance², flat position) order.  Each shard
  returns its local top-k in that order; concatenating in shard-id order
  and stable-sorting on distance² reproduces the global order exactly —
  ties keep concatenation order, which is flat order.  The scalar path
  additionally visits shards nearest-first and skips any shard whose
  bounding-box mindist² strictly exceeds the current k-th distance (a
  pruned shard cannot contribute a result *or* displace a tie).
* **Cost counters** are exact: every backend reply carries the counter
  delta it caused, and the dispatcher accumulates the deltas into its own
  ``counters``, so Figure-13-style accounting spans process boundaries.

The dispatcher is backend-agnostic: shards can live in-process
(:class:`~repro.serving.workers.LocalBackend`) or in forked worker
processes sharing mmap'd snapshot columns through the page cache
(:class:`~repro.serving.workers.WorkerBackend`); scatters are pipelined so
worker-backed shards execute concurrently.  :func:`open_sharded` builds
the whole stack from a shard directory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.geometry import Point, Rect
from repro.interfaces import (
    SpatialIndex,
    require_finite_center,
    require_valid_radius,
)
from repro.results import ResultSet
from repro.serving.sharding import ShardPlan
from repro.serving.workers import LocalBackend, spawn_shard_backends

PathLike = Union[str, Path]

_Rows = Tuple[np.ndarray, np.ndarray]


def _concat_rows(chunks: Sequence[_Rows]) -> ResultSet:
    """Merge per-shard result rows by concatenation (shard order = flat order)."""
    chunks = [chunk for chunk in chunks if int(chunk[0].shape[0])]
    if not chunks:
        return ResultSet.empty()
    if len(chunks) == 1:
        xs, ys = chunks[0]
        return ResultSet.from_arrays(xs, ys)
    xs = np.concatenate([chunk[0] for chunk in chunks])
    ys = np.concatenate([chunk[1] for chunk in chunks])
    return ResultSet.from_arrays(xs, ys)


def _knn_merge(
    chunks: Sequence[_Rows], cx: float, cy: float, k: int
) -> ResultSet:
    """Global top-``k`` from per-shard top-``k`` rows (shard-id order).

    Distances are recomputed with the engine's exact arithmetic, and the
    stable sort over the concatenation resolves ties to concatenation
    order — which, with chunks in shard-id order, is global flat order:
    the unsharded kernel's tie-break.
    """
    merged = _concat_rows(chunks)
    count = merged.count()
    if count <= 0:
        return merged
    xs, ys = merged.as_arrays()
    dx = xs - cx
    dy = ys - cy
    d2 = dx * dx
    d2 += dy * dy
    order = np.argsort(d2, kind="stable")
    if count > k:
        order = order[:k]
    elif count == k and bool((order == np.arange(count)).all()):
        return merged
    return ResultSet.from_arrays(xs[order], ys[order])


class ShardedIndex(SpatialIndex):
    """A read-only :class:`SpatialIndex` served by Z-range shards.

    Construct via :func:`open_sharded` (or directly from a
    :class:`ShardPlan` plus one backend per shard, in shard-id order).
    Queries scatter to the routed shards, gather the partial rows, and
    merge them into lazy :class:`ResultSet` views; ``counters`` accumulate
    the exact per-shard deltas.  Mutations raise — sharded serving is the
    deploy-an-offline-build workflow, and the base-class ``insert`` /
    ``delete`` defaults already say so.

    ``shard_busy_seconds`` accumulates each shard's reported execution
    time (reset with :meth:`reset_busy`); the serving benchmark uses it to
    model worker-count scaling without needing one core per worker.
    """

    name = "ShardedZIndex"

    def __init__(self, plan: ShardPlan, backends: Sequence[Any]) -> None:
        super().__init__()
        if len(backends) != plan.num_shards:
            raise ValueError(
                f"plan has {plan.num_shards} shards but {len(backends)} backends"
            )
        self.plan = plan
        self._backends = list(backends)
        self._size_bytes: Optional[int] = None
        self.shard_busy_seconds = [0.0] * plan.num_shards
        #: Optional per-shard observability sink (see :mod:`repro.obs`);
        #: attach with :meth:`attach_metrics`, ``None`` costs nothing.
        self.metrics = None
        self._closed = False

    # -- plumbing ----------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def attach_metrics(self, registry):
        """Attach (or detach, with ``None``) a per-shard metrics sink.

        Accepts a :class:`~repro.obs.registry.MetricsRegistry` (a
        :class:`~repro.obs.instrument.ShardMetrics` adapter is created
        over it) or a ready-made adapter; returns the active adapter.
        Every scatter round then records each shard's busy time and exact
        counter delta, labelled by shard id and plan kind.
        """
        if registry is None:
            self.metrics = None
        else:
            from repro.obs.instrument import ShardMetrics

            self.metrics = (
                registry if isinstance(registry, ShardMetrics)
                else ShardMetrics(registry)
            )
        return self.metrics

    def _absorb(
        self, shard_id: int, delta: Dict[str, int], busy: float, method: str = ""
    ) -> None:
        counters = self.counters
        for name, value in delta.items():
            setattr(counters, name, getattr(counters, name) + value)
        self.shard_busy_seconds[shard_id] += busy
        if self.metrics is not None:
            self.metrics.observe_shard(shard_id, method, busy, delta)

    def _scatter(
        self, targets: Sequence[Tuple[int, Any]], method: str
    ) -> List[Any]:
        """Pipeline one request per target shard; replies in target order.

        ``targets`` is ``[(shard_id, payload), ...]``.  All requests are
        submitted before any reply is collected, so shards hosted by
        different worker processes execute concurrently.  Counter deltas
        and busy times are absorbed here.
        """
        for shard_id, payload in targets:
            self._backends[shard_id].submit(method, payload)
        replies = []
        for shard_id, _payload in targets:
            data, delta, busy = self._backends[shard_id].collect()
            self._absorb(shard_id, delta, busy, method)
            replies.append(data)
        return replies

    def reset_busy(self) -> None:
        self.shard_busy_seconds = [0.0] * self.plan.num_shards

    def reset_counters(self) -> None:
        super().reset_counters()
        for backend in self._backends:
            backend.request("reset")

    # -- range queries -----------------------------------------------------
    def _route_windows(
        self, queries: Sequence[Rect]
    ) -> List[Tuple[int, List[int]]]:
        """Per shard, the query indices whose window overlaps its bounds."""
        routed: List[Tuple[int, List[int]]] = []
        for spec in self.plan.shards:
            hits = [j for j, query in enumerate(queries) if spec.overlaps_rect(query)]
            if hits:
                routed.append((spec.shard_id, hits))
        return routed

    def batch_range_query(self, queries: Sequence[Rect]) -> List[ResultSet]:
        queries = list(queries)
        if not queries:
            return []
        windows = np.array(
            [[q.xmin, q.ymin, q.xmax, q.ymax] for q in queries], dtype=np.float64
        )
        routed = self._route_windows(queries)
        replies = self._scatter(
            [(shard_id, windows[hits]) for shard_id, hits in routed],
            "batch_range_rows",
        )
        chunks: List[List[_Rows]] = [[] for _ in queries]
        for (_shard_id, hits), rows in zip(routed, replies):
            for j, pair in zip(hits, rows):
                chunks[j].append(pair)
        return [_concat_rows(per_query) for per_query in chunks]

    def range_query(self, query: Rect) -> ResultSet:
        return self.batch_range_query((query,))[0]

    def _range_query_points(self, query: Rect) -> List[Point]:
        return self.range_query(query).points()

    def batch_range_count(self, queries: Sequence[Rect]) -> List[int]:
        queries = list(queries)
        if not queries:
            return []
        windows = np.array(
            [[q.xmin, q.ymin, q.xmax, q.ymax] for q in queries], dtype=np.float64
        )
        routed = self._route_windows(queries)
        replies = self._scatter(
            [(shard_id, windows[hits]) for shard_id, hits in routed],
            "batch_range_count",
        )
        totals = [0] * len(queries)
        for (_shard_id, hits), counts in zip(routed, replies):
            for j, count in zip(hits, np.asarray(counts).tolist()):
                totals[j] += int(count)
        return totals

    def range_count(self, query: Rect) -> int:
        return self.batch_range_count((query,))[0]

    # -- kNN ---------------------------------------------------------------
    def batch_knn(
        self, centers: Sequence[Point], k: int, initial_radius: Optional[float] = None
    ) -> List[ResultSet]:
        centers = list(centers)
        for center in centers:
            require_finite_center(center)
        total = len(self)
        if k <= 0 or total == 0 or not centers:
            return [ResultSet.empty() for _ in centers]
        capped = min(k, total)
        radius = (
            initial_radius
            if initial_radius and initial_radius > 0
            else self._default_radius()
        )
        probe = np.array([[c.x, c.y] for c in centers], dtype=np.float64)
        targets = [
            (spec.shard_id, (probe, capped, radius))
            for spec in self.plan.shards
            if spec.num_points
        ]
        replies = self._scatter(targets, "batch_knn_rows")
        results: List[ResultSet] = []
        for j, center in enumerate(centers):
            per_center = [rows[j] for rows in replies]
            results.append(
                _knn_merge(per_center, float(center.x), float(center.y), capped)
            )
        return results

    def knn(
        self, center: Point, k: int, initial_radius: Optional[float] = None
    ) -> ResultSet:
        """Single-probe kNN with nearest-first shard visiting and pruning.

        Identical results to :meth:`batch_knn` on one center (and to the
        unsharded engine), but shards are visited in order of bounding-box
        mindist² and, once ``k`` candidates are in hand, a shard whose
        mindist² strictly exceeds the current k-th distance² is never
        queried: its every point is strictly farther, so it can neither
        enter the top-k nor win a flat-order tie.
        """
        require_finite_center(center)
        total = len(self)
        if k <= 0 or total == 0:
            return ResultSet.empty()
        capped = min(k, total)
        radius = (
            initial_radius
            if initial_radius and initial_radius > 0
            else self._default_radius()
        )
        cx = float(center.x)
        cy = float(center.y)
        probe = np.array([[cx, cy]], dtype=np.float64)
        visit = sorted(
            (spec for spec in self.plan.shards if spec.num_points),
            key=lambda spec: (spec.mindist_squared(cx, cy), spec.shard_id),
        )
        collected: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        gathered = 0
        kth_d2 = float("inf")
        for spec in visit:
            if gathered >= capped and spec.mindist_squared(cx, cy) > kth_d2:
                continue
            (rows,) = self._scatter(
                [(spec.shard_id, (probe, capped, radius))], "batch_knn_rows"
            )
            xs, ys = rows[0]
            if not int(xs.shape[0]):
                continue
            dx = xs - cx
            dy = ys - cy
            d2 = dx * dx
            d2 += dy * dy
            collected.append((spec.shard_id, xs, ys, d2))
            gathered += int(xs.shape[0])
            if gathered >= capped:
                all_d2 = np.sort(np.concatenate([c[3] for c in collected]))
                kth_d2 = float(all_d2[capped - 1])
        collected.sort(key=lambda chunk: chunk[0])
        return _knn_merge(
            [(chunk[1], chunk[2]) for chunk in collected], cx, cy, capped
        )

    # -- radius queries ----------------------------------------------------
    def batch_radius_query(
        self, centers: Sequence[Point], radius: float
    ) -> List[ResultSet]:
        require_valid_radius(radius)
        centers = list(centers)
        for center in centers:
            require_finite_center(center)
        if not centers:
            return []
        windows = [
            Rect(c.x - radius, c.y - radius, c.x + radius, c.y + radius)
            for c in centers
        ]
        probe = np.array([[c.x, c.y] for c in centers], dtype=np.float64)
        routed = self._route_windows(windows)
        replies = self._scatter(
            [(shard_id, (probe[hits], radius)) for shard_id, hits in routed],
            "batch_radius_rows",
        )
        chunks: List[List[_Rows]] = [[] for _ in centers]
        for (_shard_id, hits), rows in zip(routed, replies):
            for j, pair in zip(hits, rows):
                chunks[j].append(pair)
        return [_concat_rows(per_center) for per_center in chunks]

    # -- point queries and introspection ----------------------------------
    def point_query(self, point: Point) -> bool:
        x = float(point.x)
        y = float(point.y)
        for spec in self.plan.route_point(x, y):
            (hit,) = self._scatter(
                [(spec.shard_id, (x, y))], "point_query"
            )
            if hit:
                return True
        return False

    def __len__(self) -> int:
        return self.plan.num_points

    def size_bytes(self) -> int:
        if self._size_bytes is None:
            self._size_bytes = sum(
                int(backend.request("size_bytes")) for backend in self._backends
            )
        return self._size_bytes

    def extent(self) -> Optional[Rect]:
        return self.plan.extent()

    def column_info(self) -> List[Dict[str, Any]]:
        """Per shard, how its engine holds the columns (mmap observability)."""
        return [backend.request("column_info") for backend in self._backends]

    def worker_rss(self) -> List[Dict[str, Optional[int]]]:
        """Per shard, the serving process's resident-set readings."""
        return [backend.request("rss") for backend in self._backends]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for backend in self._backends:
            backend.close()

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_sharded(
    directory: PathLike,
    *,
    workers: int = 0,
    mmap: bool = True,
    validate: bool = False,
) -> ShardedIndex:
    """Open a shard directory (built by :func:`~repro.serving.build_shards`).

    ``workers=0`` loads every shard in the calling process; ``workers=W``
    forks ``W`` worker processes and assigns shards round-robin, so any
    ``1 <= W <= num_shards`` serves the directory with real process
    parallelism.  ``mmap=True`` (the default) maps each shard snapshot's
    columns zero-copy — workers share the physical pages through the OS
    page cache.  ``validate=False`` skips the O(n) bbox cross-check on
    open (structural validation still runs), the right trade for serving
    snapshots produced by this library.
    """
    plan = ShardPlan.load(directory)
    paths = [plan.shard_path(spec) for spec in plan.shards]
    if workers <= 0:
        backends: List[Any] = [
            LocalBackend.open(path, mmap=mmap, validate=validate) for path in paths
        ]
    else:
        backends = spawn_shard_backends(
            paths, workers, mmap=mmap, validate=validate
        )
    return ShardedIndex(plan, backends)
