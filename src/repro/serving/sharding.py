"""Z-range sharding: splitting one index snapshot into S serveable shards.

A Z-index stores its points in curve order — the LeafList *is* a partition
of the Morton keyspace into consecutive Z-ranges, and the flat coordinate
columns are that order materialised.  A shard is therefore a **contiguous
run of leaves**: shard ``i`` owns leaves ``[leaf_lo, leaf_hi)`` and hence
flat rows ``[row_lo, row_hi)``, and the union of shards reconstructs the
global flat order by simple concatenation.  That is the property the
scatter/gather dispatcher relies on: merged shard results are byte-
identical to the unsharded engine because no row ever changes position
relative to another.

Each shard is saved as a full snapshot that reuses the **global tree** with
all out-of-span leaves emptied (their boxes fall back to the leaf cell, the
convention for empty leaves everywhere else).  Building an independent
tree per shard would be wrong: a different split hierarchy induces a
different curve order, silently permuting results.  Keeping the global
tree also keeps every leaf's cell — and therefore projection behaviour —
identical across shards.  Look-ahead skip pointers are *rebuilt* per shard
(an emptied leaf's effective box changed, and a stale pointer chain could
jump a scan past live leaves), so each shard remains a fully valid,
independently loadable snapshot.

The shard directory holds one snapshot per shard plus a ``shards.json``
routing manifest (:class:`ShardPlan`): per-shard leaf/row spans and data
bounding boxes, which is everything the dispatcher needs to route queries
without opening any shard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.geometry import Rect
from repro.persistence.errors import SnapshotFormatError
from repro.storage.leaflist import END_OF_LIST
from repro.zindex.base import ZIndex, ZIndexSnapshotState
from repro.zindex.skipping import build_lookahead_pointers

PathLike = Union[str, Path]

#: Name of the routing manifest inside a shard directory.
SHARDS_MANIFEST = "shards.json"

#: Format marker / version of the routing manifest.
SHARDS_FORMAT = "repro-shards"
SHARDS_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ShardSpec:
    """One shard's routing record: spans plus the data bounding box."""

    shard_id: int
    path: str
    leaf_lo: int
    leaf_hi: int
    row_lo: int
    row_hi: int
    bounds: Optional[Tuple[float, float, float, float]]

    @property
    def num_points(self) -> int:
        return self.row_hi - self.row_lo

    def overlaps_rect(self, rect: Rect) -> bool:
        """Whether any of the shard's points can fall inside ``rect``."""
        if self.bounds is None:
            return False
        xmin, ymin, xmax, ymax = self.bounds
        return (
            xmin <= rect.xmax and xmax >= rect.xmin
            and ymin <= rect.ymax and ymax >= rect.ymin
        )

    def contains_point(self, x: float, y: float) -> bool:
        if self.bounds is None:
            return False
        xmin, ymin, xmax, ymax = self.bounds
        return xmin <= x <= xmax and ymin <= y <= ymax

    def mindist_squared(self, x: float, y: float) -> float:
        """Squared distance from a point to the shard's data bounding box.

        Zero inside the box; ``inf`` for an empty shard (nothing to find).
        Used by the kNN merge to visit shards nearest-first and prune those
        that cannot improve the current k-th neighbour.
        """
        if self.bounds is None:
            return float("inf")
        xmin, ymin, xmax, ymax = self.bounds
        dx = xmin - x if x < xmin else (x - xmax if x > xmax else 0.0)
        dy = ymin - y if y < ymin else (y - ymax if y > ymax else 0.0)
        return dx * dx + dy * dy


@dataclass
class ShardPlan:
    """The routing manifest of a shard directory."""

    directory: Path
    num_points: int
    num_leaves: int
    index_name: str
    use_skipping: bool
    dataset_fingerprint: str
    shards: List[ShardSpec]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_path(self, spec: ShardSpec) -> Path:
        return self.directory / spec.path

    # -- routing ----------------------------------------------------------
    def route_rect(self, rect: Rect) -> List[ShardSpec]:
        """Shards whose data bounding box overlaps a query rectangle."""
        return [spec for spec in self.shards if spec.overlaps_rect(rect)]

    def route_point(self, x: float, y: float) -> List[ShardSpec]:
        """Shards whose data bounding box contains a point."""
        return [spec for spec in self.shards if spec.contains_point(x, y)]

    def extent(self) -> Optional[Rect]:
        boxes = [spec.bounds for spec in self.shards if spec.bounds is not None]
        if not boxes:
            return None
        return Rect(
            min(b[0] for b in boxes), min(b[1] for b in boxes),
            max(b[2] for b in boxes), max(b[3] for b in boxes),
        )

    # -- persistence ------------------------------------------------------
    def to_manifest(self) -> Dict:
        return {
            "format": SHARDS_FORMAT,
            "format_version": SHARDS_FORMAT_VERSION,
            "num_points": self.num_points,
            "num_leaves": self.num_leaves,
            "index_name": self.index_name,
            "use_skipping": self.use_skipping,
            "dataset_fingerprint": self.dataset_fingerprint,
            "shards": [
                {
                    "shard_id": spec.shard_id,
                    "path": spec.path,
                    "leaf_span": [spec.leaf_lo, spec.leaf_hi],
                    "row_span": [spec.row_lo, spec.row_hi],
                    "bounds": None if spec.bounds is None else list(spec.bounds),
                }
                for spec in self.shards
            ],
        }

    def save(self) -> Path:
        target = self.directory / SHARDS_MANIFEST
        payload = json.dumps(self.to_manifest(), indent=2, sort_keys=True)
        target.write_text(payload + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, directory: PathLike) -> "ShardPlan":
        root = Path(directory)
        target = root / SHARDS_MANIFEST
        try:
            manifest = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise SnapshotFormatError(
                f"{target} is not a readable shard manifest: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("format") != SHARDS_FORMAT:
            raise SnapshotFormatError(
                f"{target} lacks the {SHARDS_FORMAT!r} format marker"
            )
        version = manifest.get("format_version")
        if version != SHARDS_FORMAT_VERSION:
            raise SnapshotFormatError(
                f"{target} uses shard-manifest version {version!r}; this library "
                f"reads {SHARDS_FORMAT_VERSION}"
            )
        try:
            shards = [
                ShardSpec(
                    shard_id=int(entry["shard_id"]),
                    path=str(entry["path"]),
                    leaf_lo=int(entry["leaf_span"][0]),
                    leaf_hi=int(entry["leaf_span"][1]),
                    row_lo=int(entry["row_span"][0]),
                    row_hi=int(entry["row_span"][1]),
                    bounds=None if entry.get("bounds") is None else tuple(
                        float(v) for v in entry["bounds"]
                    ),
                )
                for entry in manifest.get("shards", [])
            ]
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise SnapshotFormatError(
                f"{target} has a malformed shard entry: {exc!r}"
            ) from exc
        return cls(
            directory=root,
            num_points=int(manifest.get("num_points", 0)),
            num_leaves=int(manifest.get("num_leaves", 0)),
            index_name=str(manifest.get("index_name", "ZIndex")),
            use_skipping=bool(manifest.get("use_skipping", False)),
            dataset_fingerprint=str(manifest.get("dataset_fingerprint", "")),
            shards=shards,
        )


def plan_shard_spans(
    leaf_starts: np.ndarray,
    num_shards: int,
    weights: Optional[np.ndarray] = None,
) -> List[Tuple[int, int]]:
    """Split the leaf sequence into ``num_shards`` balanced spans.

    Returns ``[(leaf_lo, leaf_hi), ...]`` half-open leaf intervals covering
    ``[0, n_leaves)``.  By default boundaries sit at leaf starts closest to
    the ideal ``total / num_shards`` row targets, so shards balance
    *points* (the scan cost driver), not leaf counts.  ``weights`` — one
    non-negative cost per leaf — switches the balance criterion: cuts then
    equalise cumulative weight, which is how :func:`build_shards` spreads a
    *workload's* scan cost across shards instead of raw rows (a hot
    Z-range otherwise turns into one hot shard no worker count can hide).
    The shard count is clamped to the number of leaves (a leaf is the
    atomic unit — it cannot be split without changing curve order).
    """
    starts = np.asarray(leaf_starts, dtype=np.int64)
    n_leaves = int(starts.shape[0]) - 1
    if n_leaves <= 0:
        return [(0, 0)]
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if weights is None:
        prefix = starts.astype(np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n_leaves,):
            raise ValueError(
                f"weights has shape {weights.shape}, expected ({n_leaves},)"
            )
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        prefix = np.concatenate([[0.0], np.cumsum(weights)])
    count = min(num_shards, n_leaves)
    total = float(prefix[-1])
    cuts = [0]
    for i in range(1, count):
        target = (total * i) / count
        cut = int(np.searchsorted(prefix, target, side="left"))
        cut = max(cut, cuts[-1] + 1)
        cut = min(cut, n_leaves - (count - i))
        cuts.append(cut)
    cuts.append(n_leaves)
    return list(zip(cuts[:-1], cuts[1:]))


def leaf_scan_weights(
    state: ZIndexSnapshotState, queries: Sequence[Rect]
) -> np.ndarray:
    """Per-leaf scan cost of a range workload: overlapping queries × rows.

    The cost model behind workload-aware shard planning: a leaf's serving
    cost is (number of workload windows overlapping its data bounding box)
    × (rows it scans for each).  One row is added per leaf so leaves the
    workload never touches still spread evenly across shards rather than
    collapsing into degenerate spans.
    """
    starts = np.asarray(state.arrays["leaf_starts"], dtype=np.int64)
    boxes = np.asarray(state.arrays["leaf_boxes"], dtype=np.float64).reshape(-1, 4)
    nonempty = np.asarray(state.arrays["leaf_nonempty"], dtype=bool)
    sizes = np.diff(starts).astype(np.float64)
    hits = np.zeros(len(sizes), dtype=np.float64)
    for query in queries:
        overlap = (
            nonempty
            & (boxes[:, 3] >= query.ymin) & (boxes[:, 1] <= query.ymax)
            & (boxes[:, 2] >= query.xmin) & (boxes[:, 0] <= query.xmax)
        )
        hits += overlap
    return hits * sizes + sizes + 1.0


def _leaf_cells(arrays: Dict[str, np.ndarray], n_leaves: int) -> np.ndarray:
    """Per-leaf cell rectangles, gathered from the packed tree tables.

    An emptied leaf's effective box falls back to its cell (the invariant
    :func:`repro.zindex.skipping.leaf_box` defines), so shard construction
    needs every leaf's cell even though only non-empty leaves persist a
    data bbox.
    """
    kinds = np.asarray(arrays["tree_kind"])
    cells = np.asarray(arrays["tree_cells"], dtype=np.float64).reshape(-1, 4)
    leaf_index = np.asarray(arrays["tree_leaf_index"], dtype=np.int64)
    rows = np.flatnonzero(kinds == 1)
    out = np.empty((n_leaves, 4), dtype=np.float64)
    out[leaf_index[rows]] = cells[rows]
    return out


def shard_snapshot_state(
    state: ZIndexSnapshotState, leaf_lo: int, leaf_hi: int
) -> ZIndexSnapshotState:
    """The snapshot state of one shard: the global tree, a span of points.

    Leaves in ``[leaf_lo, leaf_hi)`` keep their rows; every other leaf
    becomes empty (box reset to its cell).  Skip-pointer columns are reset
    to :data:`END_OF_LIST` — the caller rebuilds them from the emptied
    list when the source index uses skipping, because pointers computed
    against the full data's bounding boxes are invalid once leaves empty.
    """
    arrays = state.arrays
    starts = np.asarray(arrays["leaf_starts"], dtype=np.int64)
    n_leaves = int(starts.shape[0]) - 1
    if not 0 <= leaf_lo <= leaf_hi <= n_leaves:
        raise ValueError(
            f"leaf span [{leaf_lo}, {leaf_hi}) outside [0, {n_leaves})"
        )
    row_lo = int(starts[leaf_lo])
    row_hi = int(starts[leaf_hi])
    new_starts = np.clip(starts, row_lo, row_hi) - row_lo
    flat_x = np.asarray(arrays["flat_x"], dtype=np.float64)[row_lo:row_hi]
    flat_y = np.asarray(arrays["flat_y"], dtype=np.float64)[row_lo:row_hi]
    nonempty = new_starts[1:] > new_starts[:-1]
    boxes = np.asarray(arrays["leaf_boxes"], dtype=np.float64).reshape(-1, 4)
    cells = _leaf_cells(arrays, n_leaves)
    shard_boxes = np.where(nonempty[:, None], boxes, cells)
    pointers = np.full(n_leaves, END_OF_LIST, dtype=np.int64)
    shard_arrays: Dict[str, np.ndarray] = {
        name: arrays[name]
        for name in (
            "tree_kind", "tree_cells", "tree_splits",
            "tree_orderings", "tree_children", "tree_leaf_index",
        )
    }
    shard_arrays.update(
        flat_x=flat_x,
        flat_y=flat_y,
        leaf_starts=new_starts,
        leaf_boxes=shard_boxes,
        leaf_nonempty=nonempty,
        skip_below=pointers,
        skip_above=pointers.copy(),
        skip_left=pointers.copy(),
        skip_right=pointers.copy(),
    )
    return ZIndexSnapshotState(
        index_name=state.index_name,
        class_path=state.class_path,
        leaf_capacity=state.leaf_capacity,
        max_depth=state.max_depth,
        use_skipping=state.use_skipping,
        has_nonmonotone_ordering=state.has_nonmonotone_ordering,
        extent=state.extent,
        num_points=row_hi - row_lo,
        orderings=list(state.orderings),
        arrays=shard_arrays,
    )


def build_shard_index(
    state: ZIndexSnapshotState, leaf_lo: int, leaf_hi: int
) -> ZIndex:
    """Materialise one shard as a live index (skip pointers rebuilt)."""
    shard = ZIndex.from_snapshot_state(
        shard_snapshot_state(state, leaf_lo, leaf_hi), validate=False
    )
    if shard.use_skipping:
        build_lookahead_pointers(shard.leaflist)
    return shard


def build_shards(
    source: Union[ZIndex, PathLike],
    directory: PathLike,
    num_shards: int,
    workload: Optional[Sequence[Rect]] = None,
) -> ShardPlan:
    """Split an index (or a saved snapshot) into a serveable shard directory.

    ``source`` is a built Z-index-family index or the path of a structural
    snapshot.  Writes ``shard_0000.zip`` … plus ``shards.json`` into
    ``directory`` and returns the :class:`ShardPlan`.  Every shard is a
    normal snapshot — ``load_snapshot(path, mmap=True)`` serves it
    zero-copy — and concatenating shard results in shard order reproduces
    the unsharded engine's results byte-for-byte.

    ``workload`` — a representative sequence of range windows — switches
    the span planner from row balance to scan-cost balance
    (:func:`leaf_scan_weights`): under a skewed workload, the hot Z-range
    is split fine and the cold tail coarse, so per-shard serving work
    equalises.  Routing, merging and results are unaffected; only the cut
    positions move.
    """
    from repro.persistence.snapshot import (
        dataset_fingerprint,
        load_snapshot,
        save_snapshot,
    )

    if isinstance(source, ZIndex):
        index = source
    else:
        index = load_snapshot(source)
        if not isinstance(index, ZIndex):
            raise TypeError(
                f"{source} did not restore to a Z-index-family index; only "
                f"structural snapshots can be sharded"
            )
    state = index.snapshot_state()
    weights = None if workload is None else leaf_scan_weights(state, workload)
    spans = plan_shard_spans(state.arrays["leaf_starts"], num_shards, weights)
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    starts = np.asarray(state.arrays["leaf_starts"], dtype=np.int64)
    flat_x = np.asarray(state.arrays["flat_x"], dtype=np.float64)
    flat_y = np.asarray(state.arrays["flat_y"], dtype=np.float64)
    specs: List[ShardSpec] = []
    for shard_id, (leaf_lo, leaf_hi) in enumerate(spans):
        shard = build_shard_index(state, leaf_lo, leaf_hi)
        filename = f"shard_{shard_id:04d}.zip"
        save_snapshot(shard, root / filename)
        row_lo = int(starts[leaf_lo])
        row_hi = int(starts[leaf_hi])
        if row_hi > row_lo:
            # The shard's routing bounds are its *data* bbox (tight), not
            # the global extent the restored index reports.
            xs = flat_x[row_lo:row_hi]
            ys = flat_y[row_lo:row_hi]
            bounds = (
                float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max())
            )
        else:
            bounds = None
        specs.append(ShardSpec(
            shard_id=shard_id,
            path=filename,
            leaf_lo=leaf_lo,
            leaf_hi=leaf_hi,
            row_lo=row_lo,
            row_hi=row_hi,
            bounds=bounds,
        ))
    plan = ShardPlan(
        directory=root,
        num_points=int(starts[-1]),
        num_leaves=int(starts.shape[0]) - 1,
        index_name=state.index_name,
        use_skipping=state.use_skipping,
        dataset_fingerprint=dataset_fingerprint(
            state.arrays["flat_x"], state.arrays["flat_y"]
        ),
        shards=specs,
    )
    plan.save()
    return plan
