"""Serving workers: query engines behind a message protocol, in or out of process.

The dispatcher (:mod:`repro.serving.dispatcher`) talks to every shard
through one small backend surface — *submit* a request, *collect* the
reply.  This module provides both implementations of that surface:

* :class:`LocalBackend` — the shard index loaded in the calling process.
  ``submit`` executes immediately; useful for tests, small deployments and
  as the semantics reference.
* :class:`WorkerBackend` — the shard served by a forked worker process
  (:class:`ShardHost`).  ``submit`` writes a request down the host's pipe
  and ``collect`` reads the reply, so a scatter across many workers
  pipelines: all requests go out before any reply is awaited, and hosts
  execute concurrently.

A host serves one *or several* shards (slots): deployments with fewer
workers than shards round-robin shards onto hosts, which is how the
serving benchmark models 1..W worker scaling over a fixed shard count.
Workers opened with ``mmap=True`` share the snapshot's column pages
through the OS page cache — each extra worker adds page tables, not
another copy of the data (the zero-copy claim
``column_info``/:func:`process_rss` make observable).

Every query reply carries ``(data, counter_delta, busy_seconds)``: the
logical :class:`~repro.evaluation.metrics.CostCounters` delta the request
caused and the wall-clock the engine spent on it.  The dispatcher adds the
deltas to its own counters (cost accounting stays exact across process
boundaries) and aggregates the busy times for capacity modelling.

:class:`ReplicaPool` reuses the same machinery for *replicated* (unsharded)
serving: N workers all mapping the same full snapshot, each answering the
full query stream — the configuration the byte-identity property tests
exercise.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.geometry import Point, Rect

PathLike = Union[str, Path]

#: Query methods every backend understands (reply: data, delta, busy).
QUERY_METHODS = (
    "batch_range_rows",
    "batch_range_count",
    "batch_knn_rows",
    "batch_radius_rows",
    "point_query",
)


def process_rss(field: str = "Rss") -> Optional[int]:
    """This process's resident set (bytes), from the best available source.

    ``field`` selects the ``/proc/self/smaps_rollup`` line — ``Rss``,
    ``Pss``, ``Shared_Clean``, ``Private_Dirty``, ...  ``Pss``
    (proportional set size) is the honest per-worker cost of shared mmap
    pages.  ``smaps_rollup`` needs Linux >= 4.14; for plain ``Rss`` the
    function falls back to ``/proc/self/statm`` (any Linux) and then to
    ``resource.getrusage`` (POSIX — peak rather than current, kilobytes
    on Linux, bytes on macOS), so callers on older kernels or macOS still
    get a usable figure.  Only the rollup knows the other fields; those
    return ``None`` when it is absent.
    """
    try:
        text = Path("/proc/self/smaps_rollup").read_text()
    except OSError:
        text = None
    if text is not None:
        prefix = field + ":"
        for line in text.splitlines():
            if line.startswith(prefix):
                return int(line.split()[1]) * 1024
        return None
    if field != "Rss":
        return None
    try:
        statm = Path("/proc/self/statm").read_text()
        resident_pages = int(statm.split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError):
        return None
    # ru_maxrss is kilobytes on Linux/BSD but bytes on macOS.
    return ru_maxrss if sys.platform == "darwin" else ru_maxrss * 1024


class ShardEngine:
    """One loaded index behind the serving message protocol.

    Both backends funnel through :meth:`handle`, so in-process and
    worker-process serving execute literally the same code — the only
    difference is which process runs it.
    """

    def __init__(self, index) -> None:
        self.index = index

    def handle(self, method: str, payload: Any) -> Any:
        handler = getattr(self, "_op_" + method, None)
        if handler is None:
            raise ValueError(f"unknown serving method {method!r}")
        if method in QUERY_METHODS:
            before = dict(vars(self.index.counters))
            started = time.perf_counter()
            data = handler(payload)
            busy = time.perf_counter() - started
            after = vars(self.index.counters)
            delta = {name: after[name] - before[name] for name in before}
            return data, delta, busy
        return handler(payload)

    # -- queries (reply: data, counter delta, busy seconds) ---------------
    def _op_batch_range_rows(self, windows) -> List[Tuple[np.ndarray, np.ndarray]]:
        rects = [Rect(*row) for row in np.asarray(windows, dtype=np.float64).tolist()]
        return [result.as_arrays() for result in self.index.batch_range_query(rects)]

    def _op_batch_range_count(self, windows) -> np.ndarray:
        rects = [Rect(*row) for row in np.asarray(windows, dtype=np.float64).tolist()]
        return np.asarray(self.index.batch_range_count(rects), dtype=np.int64)

    def _op_batch_knn_rows(self, payload) -> List[Tuple[np.ndarray, np.ndarray]]:
        centers, k, radius = payload
        probes = [Point(x, y) for x, y in np.asarray(centers, dtype=np.float64).tolist()]
        results = self.index.batch_knn(probes, int(k), initial_radius=radius)
        return [result.as_arrays() for result in results]

    def _op_batch_radius_rows(self, payload) -> List[Tuple[np.ndarray, np.ndarray]]:
        centers, radius = payload
        probes = [Point(x, y) for x, y in np.asarray(centers, dtype=np.float64).tolist()]
        results = self.index.batch_radius_query(probes, float(radius))
        return [result.as_arrays() for result in results]

    def _op_point_query(self, payload) -> bool:
        x, y = payload
        return bool(self.index.point_query(Point(float(x), float(y))))

    # -- introspection -----------------------------------------------------
    def _op_num_points(self, _payload) -> int:
        return len(self.index)

    def _op_size_bytes(self, _payload) -> int:
        return int(self.index.size_bytes())

    def _op_reset(self, _payload) -> bool:
        self.index.reset_counters()
        return True

    def _op_counters(self, _payload) -> Dict[str, int]:
        return dict(vars(self.index.counters))

    def _op_rss(self, _payload) -> Dict[str, Optional[int]]:
        return {
            "rss_bytes": process_rss("Rss"),
            "pss_bytes": process_rss("Pss"),
            "shared_clean_bytes": process_rss("Shared_Clean"),
            "private_bytes": process_rss("Private_Dirty"),
        }

    def _op_column_info(self, _payload) -> Dict[str, Any]:
        """How the engine's columns are held — the zero-copy observability hook."""
        store = getattr(self.index, "_store", None)
        if store is None:
            return {"store": None, "mapped": {}, "column_bytes": 0}
        return {
            "store": type(store).__name__,
            "mapped": {name: store.is_mapped(name) for name in store.names()},
            "column_bytes": store.nbytes,
        }


def _load_engine(path: PathLike, mmap: bool, validate: bool) -> ShardEngine:
    from repro.persistence.snapshot import load_snapshot

    return ShardEngine(load_snapshot(path, mmap=mmap, validate=validate))


def _serve_shards(conn, paths: Sequence[str], mmap: bool, validate: bool) -> None:
    """Worker-process main loop: load the slot engines, answer until closed."""
    try:
        engines = [_load_engine(path, mmap, validate) for path in paths]
    except BaseException as exc:  # noqa: BLE001 - report and die
        conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    conn.send(("ready", [len(engine.index) for engine in engines]))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        slot, method, payload = message
        if method == "close":
            conn.send(("ok", True))
            break
        try:
            reply = engines[slot].handle(method, payload)
        except Exception as exc:  # noqa: BLE001 - serve next request
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("ok", reply))
    conn.close()


class ServingError(RuntimeError):
    """A worker reported a failure while serving a request."""


class ShardHost:
    """A forked worker process hosting one or more shard engines.

    Requests are pipelined FIFO over one duplex pipe: callers may ``send``
    several requests (for different slots) before ``receive``-ing the
    replies in order, which is what lets a scatter over W hosts run W
    engines concurrently.
    """

    def __init__(
        self,
        paths: Sequence[PathLike],
        *,
        mmap: bool = True,
        validate: bool = False,
        context: Optional[str] = None,
    ) -> None:
        ctx = multiprocessing.get_context(context) if context else multiprocessing
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_serve_shards,
            args=(child_conn, [str(p) for p in paths], bool(mmap), bool(validate)),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._outstanding = 0
        status, detail = self._conn.recv()
        if status != "ready":
            self._process.join(timeout=5.0)
            raise ServingError(f"shard worker failed to start: {detail}")
        self.slot_sizes: List[int] = list(detail)

    def send(self, slot: int, method: str, payload: Any = None) -> None:
        self._conn.send((slot, method, payload))
        self._outstanding += 1

    def receive(self) -> Any:
        if self._outstanding <= 0:
            raise RuntimeError("no outstanding request on this shard host")
        self._outstanding -= 1
        status, detail = self._conn.recv()
        if status == "ok":
            return detail
        raise ServingError(detail)

    def request(self, slot: int, method: str, payload: Any = None) -> Any:
        self.send(slot, method, payload)
        return self.receive()

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid

    def close(self) -> None:
        if self._process is None:
            return
        try:
            if self._process.is_alive():
                self._conn.send((0, "close", None))
                self._conn.recv()
        except (OSError, EOFError, BrokenPipeError):
            pass
        try:
            self._conn.close()
        except OSError:
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._process = None

    def __enter__(self) -> "ShardHost":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass


class LocalBackend:
    """The shard engine loaded in the calling process (no IPC)."""

    def __init__(self, engine: ShardEngine) -> None:
        self.engine = engine
        self._pending: List[Any] = []

    @classmethod
    def open(
        cls, path: PathLike, *, mmap: bool = True, validate: bool = False
    ) -> "LocalBackend":
        return cls(_load_engine(path, mmap, validate))

    def submit(self, method: str, payload: Any = None) -> None:
        self._pending.append(self.engine.handle(method, payload))

    def collect(self) -> Any:
        if not self._pending:
            raise RuntimeError("no outstanding request on this backend")
        return self._pending.pop(0)

    def request(self, method: str, payload: Any = None) -> Any:
        return self.engine.handle(method, payload)

    def close(self) -> None:
        self._pending.clear()


class WorkerBackend:
    """One shard slot of a (possibly shared) :class:`ShardHost`."""

    def __init__(self, host: ShardHost, slot: int, *, owns_host: bool = False) -> None:
        self.host = host
        self.slot = slot
        self._owns_host = owns_host

    def submit(self, method: str, payload: Any = None) -> None:
        self.host.send(self.slot, method, payload)

    def collect(self) -> Any:
        return self.host.receive()

    def request(self, method: str, payload: Any = None) -> Any:
        return self.host.request(self.slot, method, payload)

    def close(self) -> None:
        if self._owns_host:
            self.host.close()


def spawn_shard_backends(
    paths: Sequence[PathLike],
    workers: int,
    *,
    mmap: bool = True,
    validate: bool = False,
) -> List[WorkerBackend]:
    """Start worker processes serving ``paths`` and return one backend per shard.

    ``workers`` hosts are forked and the shards are assigned round-robin
    (shard ``i`` → host ``i % workers``), so any worker count from 1 to
    ``len(paths)`` serves every shard.  The first backend of each host owns
    it: closing all backends shuts every process down.
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    workers = min(workers, len(paths)) or 1
    assignments: List[List[int]] = [[] for _ in range(workers)]
    for shard_id in range(len(paths)):
        assignments[shard_id % workers].append(shard_id)
    backends: List[Optional[WorkerBackend]] = [None] * len(paths)
    hosts: List[ShardHost] = []
    try:
        for worker_id, shard_ids in enumerate(assignments):
            host = ShardHost(
                [paths[i] for i in shard_ids], mmap=mmap, validate=validate
            )
            hosts.append(host)
            for slot, shard_id in enumerate(shard_ids):
                backends[shard_id] = WorkerBackend(host, slot, owns_host=slot == 0)
    except BaseException:
        for host in hosts:
            host.close()
        raise
    return [backend for backend in backends if backend is not None]


class ReplicaPool:
    """N worker processes each serving the *same* full snapshot.

    The replicated (unsharded) deployment: every worker maps the identical
    snapshot — one physical copy of the columns in the page cache — and
    answers whatever slice of the query stream it is handed.  Used by the
    byte-identity property tests (every replica must answer a shared batch
    exactly like the in-memory engine, counters included) and by the
    serving benchmark's memory-scaling measurements.
    """

    def __init__(
        self,
        path: PathLike,
        replicas: int,
        *,
        mmap: bool = True,
        validate: bool = False,
    ) -> None:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.path = Path(path)
        self.hosts: List[ShardHost] = []
        try:
            for _ in range(replicas):
                self.hosts.append(
                    ShardHost([self.path], mmap=mmap, validate=validate)
                )
        except BaseException:
            self.close()
            raise

    def __len__(self) -> int:
        return len(self.hosts)

    def broadcast(self, method: str, payload: Any = None) -> List[Any]:
        """Send one request to every replica; replies in replica order."""
        for host in self.hosts:
            host.send(0, method, payload)
        return [host.receive() for host in self.hosts]

    def request(self, replica: int, method: str, payload: Any = None) -> Any:
        return self.hosts[replica].request(0, method, payload)

    def close(self) -> None:
        for host in self.hosts:
            host.close()
        self.hosts = []

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
