"""Sharded, multi-process serving of offline-built indexes.

The paper positions WaZI for workflows where "index construction can be
performed offline ... and deployed for an extended amount of time".  This
package is the deployment half of that story, built on the storage layers
underneath it:

1. :func:`build_shards` splits a built index (or saved snapshot) into S
   **Z-range shards** — contiguous curve-order leaf spans, each saved as
   a normal snapshot — plus a ``shards.json`` routing manifest
   (:mod:`~repro.serving.sharding`).
2. :func:`open_sharded` serves the directory through a scatter/gather
   :class:`ShardedIndex` (:mod:`~repro.serving.dispatcher`): a full
   :class:`~repro.interfaces.SpatialIndex` whose merged results — and
   cost counters — are byte-identical to the unsharded engine.
3. Shards run in-process or in forked worker processes
   (:mod:`~repro.serving.workers`); with ``mmap=True`` every worker maps
   its snapshot's columns zero-copy, so W workers share one physical copy
   of the data through the OS page cache.

See ``docs/SERVING.md`` for the deployment model, routing rules and the
exact-merge argument.
"""

from repro.serving.dispatcher import ShardedIndex, open_sharded
from repro.serving.sharding import (
    SHARDS_MANIFEST,
    ShardPlan,
    ShardSpec,
    build_shard_index,
    build_shards,
    leaf_scan_weights,
    plan_shard_spans,
    shard_snapshot_state,
)
from repro.serving.workers import (
    LocalBackend,
    ReplicaPool,
    ServingError,
    ShardEngine,
    ShardHost,
    WorkerBackend,
    process_rss,
    spawn_shard_backends,
)

__all__ = [
    "LocalBackend",
    "ReplicaPool",
    "SHARDS_MANIFEST",
    "ServingError",
    "ShardEngine",
    "ShardHost",
    "ShardPlan",
    "ShardSpec",
    "ShardedIndex",
    "WorkerBackend",
    "build_shard_index",
    "build_shards",
    "leaf_scan_weights",
    "open_sharded",
    "plan_shard_spans",
    "process_rss",
    "shard_snapshot_state",
    "spawn_shard_backends",
]
