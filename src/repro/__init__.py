"""WaZI: a learned and workload-aware Z-index — full Python reproduction.

This package reproduces the system described in "WaZI: A Learned and
Workload-aware Z-Index" (EDBT 2024) together with every substrate and
baseline its evaluation depends on:

* :mod:`repro.core` — the WaZI index (adaptive partitioning + ordering,
  retrieval-cost model, look-ahead skipping) and its ablation variants,
* :mod:`repro.zindex` — the base Z-index structure (Section 3),
* :mod:`repro.zorder`, :mod:`repro.geometry`, :mod:`repro.storage`,
  :mod:`repro.density` — the substrates (Morton codes and BIGMIN, planar
  geometry, paged storage, RFDE density estimation),
* :mod:`repro.baselines` — STR, CUR, Flood, QUASII, Zpgm and reference
  indexes,
* :mod:`repro.workloads` — synthetic datasets and skewed query workloads
  standing in for the paper's OSM/Gowalla data,
* :mod:`repro.evaluation` — the measurement harness behind every table and
  figure of the evaluation.

Quickstart (the columnar-first engine API — see ``docs/API.md``)::

    from repro import SpatialEngine, RangeQuery, generate_dataset, generate_range_workload

    data = generate_dataset("newyork", 20_000, seed=1)
    workload = generate_range_workload("newyork", 200, selectivity_percent=0.0256, seed=1)
    engine = SpatialEngine.build("wazi", data, workload.queries, seed=1)
    hits = engine.execute(RangeQuery(workload.queries[0]))   # lazy ResultSet
    count = engine.execute(RangeQuery(workload.queries[0]), count_only=True)
"""

from repro.analysis import (
    RebuildAdvisor,
    TuningReport,
    WorkloadDriftDetector,
    advise_layout,
)
from repro.api import (
    build_index,
    build_or_load_index,
    compare_indexes,
    run_join_workload,
    run_knn_workload,
    run_point_workload,
    run_range_workload,
    run_snapshot_roundtrip,
    workload_summary,
)
from repro.engine import INDEX_NAMES, SpatialEngine, as_engine
from repro.query import (
    JoinQuery,
    KnnQuery,
    PointQuery,
    Query,
    RadiusQuery,
    RangeQuery,
)
from repro.results import ResultSet
from repro.persistence import (
    IndexLoadError,
    PersistenceError,
    SnapshotError,
    load_snapshot,
    load_snapshot_with_history,
    load_workload,
    save_rebuild_snapshot,
    save_snapshot,
    save_workload,
)
from repro.joins import box_join, knn_join, knn_join_pairs, radius_join
from repro.serving import ShardedIndex, build_shards, open_sharded
from repro.baselines import (
    CURTree,
    FloodIndex,
    KDTreeIndex,
    QuadTreeIndex,
    QUASIIIndex,
    RTree,
    STRRTree,
    ZPGMIndex,
)
from repro.core import BaseWithSkipping, WaZI, WaZIWithoutSkipping
from repro.geometry import Point, Rect
from repro.interfaces import SpatialIndex
from repro.workload_log import WorkloadLog
from repro.workloads import (
    DriftPhase,
    Workload,
    drift_scenario,
    generate_dataset,
    generate_knn_workload,
    generate_point_queries,
    generate_probe_points,
    generate_range_workload,
    hotspot_workload,
    uniform_range_workload,
)
from repro.zindex import BaseZIndex, ZIndex

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Point",
    "Rect",
    "SpatialIndex",
    "SpatialEngine",
    "ResultSet",
    "Query",
    "RangeQuery",
    "PointQuery",
    "KnnQuery",
    "RadiusQuery",
    "JoinQuery",
    "INDEX_NAMES",
    "as_engine",
    "workload_summary",
    "WaZI",
    "WaZIWithoutSkipping",
    "BaseWithSkipping",
    "BaseZIndex",
    "ZIndex",
    "STRRTree",
    "CURTree",
    "FloodIndex",
    "QUASIIIndex",
    "ZPGMIndex",
    "RTree",
    "QuadTreeIndex",
    "KDTreeIndex",
    "build_index",
    "build_or_load_index",
    "compare_indexes",
    "run_range_workload",
    "run_point_workload",
    "run_knn_workload",
    "run_join_workload",
    "run_snapshot_roundtrip",
    "save_snapshot",
    "load_snapshot",
    "save_rebuild_snapshot",
    "PersistenceError",
    "SnapshotError",
    "IndexLoadError",
    "generate_dataset",
    "generate_range_workload",
    "uniform_range_workload",
    "generate_point_queries",
    "generate_probe_points",
    "generate_knn_workload",
    "Workload",
    "WorkloadLog",
    "DriftPhase",
    "drift_scenario",
    "hotspot_workload",
    "save_workload",
    "load_workload",
    "load_snapshot_with_history",
    "WorkloadDriftDetector",
    "RebuildAdvisor",
    "TuningReport",
    "advise_layout",
    "box_join",
    "radius_join",
    "knn_join",
    "knn_join_pairs",
    "ShardedIndex",
    "build_shards",
    "open_sharded",
]
