"""The common interface implemented by every spatial index in the library.

The evaluation harness (and the example applications) treat WaZI, the base
Z-index and every baseline uniformly through this small protocol: build
from a point set, answer range and point queries, optionally support
inserts/deletes, and report an approximate in-memory size.  Each index owns
a :class:`~repro.evaluation.metrics.CostCounters` instance so logical work
(bounding boxes checked, pages scanned, points filtered) is recorded in a
uniform way.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.evaluation.metrics import CostCounters
from repro.geometry import Point, Rect


class SpatialIndex(abc.ABC):
    """Abstract base class for the spatial indexes in this library."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "index"

    def __init__(self) -> None:
        self.counters = CostCounters()

    # -- queries --------------------------------------------------------
    @abc.abstractmethod
    def range_query(self, query: Rect) -> List[Point]:
        """Return every indexed point inside the query rectangle."""

    def batch_range_query(self, queries: Sequence[Rect]) -> List[List[Point]]:
        """Answer a whole workload of range queries at once.

        Returns one result list per query, in workload order, with exactly
        the same contents as issuing the queries one by one.  The default
        implementation does just that; indexes with a columnar engine (the
        Z-index family) override it to amortise cache priming and dispatch
        across the batch.
        """
        return [self.range_query(query) for query in queries]

    @abc.abstractmethod
    def point_query(self, point: Point) -> bool:
        """Whether an indexed point with exactly these coordinates exists."""

    # -- updates ---------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert a point.  Indexes without update support raise."""
        raise NotImplementedError(f"{self.name} does not support inserts")

    def delete(self, point: Point) -> bool:
        """Delete one occurrence of a point; returns whether it was found."""
        raise NotImplementedError(f"{self.name} does not support deletes")

    # -- introspection -----------------------------------------------------
    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of indexed points."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the index structure."""

    def reset_counters(self) -> None:
        """Zero the logical cost counters before a measured workload."""
        self.counters.reset()

    # -- derived conveniences -----------------------------------------------
    def range_count(self, query: Rect) -> int:
        """Number of indexed points inside the query rectangle."""
        return len(self.range_query(query))

    def knn(self, center: Point, k: int, initial_radius: Optional[float] = None) -> List[Point]:
        """k nearest neighbours via expanding range queries.

        The paper notes (Section 6.3, "Remark on kNN and Spatial-Join
        Queries") that indexes without a specialised kNN path process kNN as
        a sequence of range queries; this default implementation does
        exactly that, doubling the search window until ``k`` points are
        found and then pruning by exact distance.
        """
        if k <= 0:
            return []
        total = len(self)
        if total == 0:
            return []
        k = min(k, total)
        radius = initial_radius if initial_radius and initial_radius > 0 else self._default_radius()
        while True:
            window = Rect(
                center.x - radius, center.y - radius, center.x + radius, center.y + radius
            )
            candidates = self.range_query(window)
            if len(candidates) >= k or self._window_covers_everything(window):
                candidates.sort(key=lambda p: p.distance_squared(center))
                within = [p for p in candidates if p.distance_squared(center) <= radius * radius]
                if len(within) >= k or self._window_covers_everything(window):
                    return (within if len(within) >= k else candidates)[:k]
            radius *= 2.0

    def _default_radius(self) -> float:
        extent = self.extent()
        if extent is None:
            return 1.0
        span = max(extent.width, extent.height)
        return max(span / 64.0, 1e-9)

    def _window_covers_everything(self, window: Rect) -> bool:
        extent = self.extent()
        return extent is None or window.contains_rect(extent)

    def extent(self) -> Optional[Rect]:
        """Bounding box of the indexed data, when known (used by kNN)."""
        return None


def brute_force_range(points: Sequence[Point], query: Rect) -> List[Point]:
    """Reference range query by linear scan (ground truth in tests)."""
    return [p for p in points if query.contains_xy(p.x, p.y)]


def brute_force_knn(points: Sequence[Point], center: Point, k: int) -> List[Point]:
    """Reference kNN by full sort (ground truth in tests)."""
    ordered = sorted(points, key=lambda p: p.distance_squared(center))
    return ordered[:k]
