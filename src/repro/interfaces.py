"""The common interface implemented by every spatial index in the library.

The evaluation harness (and the example applications) treat WaZI, the base
Z-index and every baseline uniformly through this small protocol: build
from a point set, answer range and point queries, optionally support
inserts/deletes, and report an approximate in-memory size.  Each index owns
a :class:`~repro.evaluation.metrics.CostCounters` instance so logical work
(bounding boxes checked, pages scanned, points filtered) is recorded in a
uniform way.
"""

# repro-lint: public-api
from __future__ import annotations

import abc
import math
from typing import List, Optional, Sequence

from repro.evaluation.metrics import CostCounters
from repro.geometry import Point, Rect
from repro.results import ResultSet


def require_finite_center(center: Point) -> None:
    """Reject NaN/inf query centers before they reach a search loop.

    A NaN coordinate builds an all-NaN window rectangle that every overlap
    and containment test rejects, so the expanding-window kNN loop would
    never find candidates *and* never observe that the window covers the
    extent — an infinite loop instead of an error.
    """
    if not (math.isfinite(center.x) and math.isfinite(center.y)):
        raise ValueError(f"query center coordinates must be finite, got {center!r}")


def require_valid_radius(radius: float) -> None:
    """Reject NaN/inf/negative query radii.

    Like a NaN center, a NaN radius builds a window that silently matches
    nothing; a negative radius would raise a confusing malformed-rectangle
    error from deep inside the window construction.
    """
    if not math.isfinite(radius) or radius < 0:
        raise ValueError(f"radius must be finite and non-negative, got {radius}")


class SpatialIndex(abc.ABC):
    """Abstract base class for the spatial indexes in this library."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "index"

    def __init__(self) -> None:
        self.counters = CostCounters()

    # -- queries --------------------------------------------------------
    def range_query(self, query: Rect) -> ResultSet:
        """Every indexed point inside the query rectangle, as a lazy view.

        The returned :class:`~repro.results.ResultSet` behaves like the
        eager ``List[Point]`` the pre-engine API returned (sequence
        protocol, list equality) but exposes the result coordinates as
        NumPy columns without boxing; the columnar Z-index family builds it
        directly from its flat columns so ``Point`` objects are only
        created on explicit :meth:`~repro.results.ResultSet.points` /
        iteration.
        """
        return ResultSet.from_points(self._range_query_points(query), own=True)

    @abc.abstractmethod
    def _range_query_points(self, query: Rect) -> List[Point]:
        """Index-specific range query returning an eagerly boxed list.

        Implementations own this freshly created list; :meth:`range_query`
        adopts it into the :class:`ResultSet` without copying.
        """

    def batch_range_query(self, queries: Sequence[Rect]) -> List[ResultSet]:
        """Answer a whole workload of range queries at once.

        Returns one :class:`ResultSet` per query, in workload order, with
        exactly the same contents as issuing the queries one by one.  The
        default implementation does just that; indexes with a columnar
        engine (the Z-index family) override it to amortise cache priming
        and dispatch across the batch.
        """
        return [self.range_query(query) for query in queries]

    @abc.abstractmethod
    def point_query(self, point: Point) -> bool:
        """Whether an indexed point with exactly these coordinates exists."""

    # -- updates ---------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert a point.  Indexes without update support raise."""
        raise NotImplementedError(f"{self.name} does not support inserts")

    def delete(self, point: Point) -> bool:
        """Delete one occurrence of a point; returns whether it was found."""
        raise NotImplementedError(f"{self.name} does not support deletes")

    # -- introspection -----------------------------------------------------
    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of indexed points."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the index structure."""

    def reset_counters(self) -> None:
        """Zero the logical cost counters before a measured workload."""
        self.counters.reset()

    # -- derived conveniences -----------------------------------------------
    def range_count(self, query: Rect) -> int:
        """Number of indexed points inside the query rectangle.

        The count-only execution path: on the columnar Z-index family this
        is answered entirely on the coordinate columns without
        materialising (or boxing) a single result point.
        """
        return self.range_query(query).count()

    def batch_range_count(self, queries: Sequence[Rect]) -> List[int]:
        """Result counts of a whole range workload (count-only batch path)."""
        return [result.count() for result in self.batch_range_query(queries)]

    def knn(self, center: Point, k: int, initial_radius: Optional[float] = None) -> ResultSet:
        """k nearest neighbours via expanding range queries.

        The paper notes (Section 6.3, "Remark on kNN and Spatial-Join
        Queries") that indexes without a specialised kNN path process kNN as
        a sequence of range queries; this default implementation does
        exactly that, doubling the search window until ``k`` points are
        found and then pruning by exact distance.
        """
        require_finite_center(center)
        if k <= 0:
            return ResultSet.empty()
        total = len(self)
        if total == 0:
            return ResultSet.empty()
        k = min(k, total)
        radius = initial_radius if initial_radius and initial_radius > 0 else self._default_radius()
        while True:
            window = Rect(
                center.x - radius, center.y - radius, center.x + radius, center.y + radius
            )
            candidates = self.range_query(window).points()
            if len(candidates) >= k or self._window_covers_everything(window):
                candidates.sort(key=lambda p: p.distance_squared(center))
                within = [p for p in candidates if p.distance_squared(center) <= radius * radius]
                if len(within) >= k or self._window_covers_everything(window):
                    chosen = (within if len(within) >= k else candidates)[:k]
                    return ResultSet.from_points(chosen, own=True)
            radius *= 2.0

    def radius_query(self, center: Point, radius: float) -> ResultSet:
        """The indexed points within Euclidean ``radius`` of ``center``."""
        return self.batch_radius_query((center,), radius)[0]

    def batch_radius_query(
        self, centers: Sequence[Point], radius: float
    ) -> List[ResultSet]:
        """For every center, the indexed points within Euclidean ``radius``.

        The classic filter-and-refine decomposition: a square window query
        per center followed by an exact distance filter.  The default
        refines with one vectorized mask over the candidate coordinate
        columns; the Z-index family overrides it to evaluate both the
        window and the distance predicate on its flat columns before any
        candidate point is materialised.  Result lists preserve the
        index's range-query order.
        """
        require_valid_radius(radius)
        for center in centers:
            require_finite_center(center)
        radius_squared = radius * radius
        results: List[ResultSet] = []
        for center in centers:
            window = Rect(
                center.x - radius, center.y - radius, center.x + radius, center.y + radius
            )
            candidates = self.range_query(window)
            if not candidates:
                results.append(candidates)
                continue
            xs, ys = candidates.as_arrays()
            dx = xs - center.x
            dy = ys - center.y
            d2 = dx * dx
            d2 += dy * dy
            keep = d2 <= radius_squared
            if keep.all():
                results.append(candidates)
            else:
                results.append(candidates.mask(keep))
        return results

    def batch_knn(
        self, centers: Sequence[Point], k: int, initial_radius: Optional[float] = None
    ) -> List[ResultSet]:
        """Answer a whole workload of kNN queries at once.

        Returns one neighbour list per center, in workload order, with
        exactly the same contents (and ordering) as calling :meth:`knn`
        once per center.  The default implementation does just that;
        indexes with a columnar engine (the Z-index family) override it to
        answer every probe through the vectorized kNN kernel with the
        packed-leaf and flat-scan caches primed once up front.
        """
        return [self.knn(center, k, initial_radius) for center in centers]

    def _default_radius(self) -> float:
        extent = self.extent()
        if extent is None:
            return 1.0
        span = max(extent.width, extent.height)
        return max(span / 64.0, 1e-9)

    def _window_covers_everything(self, window: Rect) -> bool:
        extent = self.extent()
        return extent is None or window.contains_rect(extent)

    def extent(self) -> Optional[Rect]:
        """Bounding box of the indexed data, when known (used by kNN)."""
        return None


def brute_force_range(points: Sequence[Point], query: Rect) -> List[Point]:
    """Reference range query by linear scan (ground truth in tests)."""
    return [p for p in points if query.contains_xy(p.x, p.y)]


def brute_force_knn(points: Sequence[Point], center: Point, k: int) -> List[Point]:
    """Reference kNN by full sort (ground truth in tests)."""
    ordered = sorted(points, key=lambda p: p.distance_squared(center))
    return ordered[:k]
