# repro-lint: hot-path
"""A zero-dependency metrics registry: counters, gauges, histograms.

The serving layer needs to answer "what has this engine been doing?"
without dragging in a metrics client library: the container bakes in
NumPy and the standard library, nothing else.  This module provides the
three classic instrument kinds with the smallest useful surface:

* :class:`Counter` — a monotonically increasing integer/float total.
* :class:`Gauge` — a last-written value (drift score, RSS, ...).
* :class:`LatencyHistogram` — fixed log-spaced microsecond buckets plus
  a NumPy ring buffer of recent raw samples for percentile estimates.

Instruments are owned by a :class:`MetricsRegistry` and keyed by
``(name, labels)`` exactly like Prometheus time series, so the exporters
in :mod:`repro.obs.exporters` can render the registry in Prometheus text
exposition format without any per-metric glue.

Everything here sits on the query hot path when instrumentation is
enabled (the engine's ``execute`` observes into a histogram per call),
so the recording primitives are a handful of scalar operations:
``observe_block`` — the batched path — is one ``searchsorted`` into the
bucket bounds and two scalar adds, mirroring how the PR-5 WorkloadLog
keeps its <10% overhead bound.

Thread-safety: instrument updates are single bytecode-level NumPy/int
operations guarded by the GIL; the service layer additionally serializes
query execution (see :mod:`repro.service.server`), which is what makes
the exported totals reconcile *exactly* with the engine's CostCounters.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "log_spaced_buckets",
]

#: ``(name, sorted (key, value) label pairs)`` — the identity of a series.
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def log_spaced_buckets(
    *, start: float = 1.0, stop: float = 1e7, per_decade: int = 4
) -> np.ndarray:
    """Log-spaced histogram bucket upper bounds (inclusive), in microseconds.

    The defaults span 1µs .. 10s at four buckets per decade — wide enough
    to hold both a 3µs cached count and a multi-second adapt, precise
    enough (78% bucket ratio) that a 1.3x latency regression moves mass
    into a different bucket.
    """
    if start <= 0 or stop <= start:
        raise ValueError(f"need 0 < start < stop, got ({start}, {stop})")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    decades = np.log10(stop / start)
    num = int(round(decades * per_decade)) + 1
    return np.geomspace(start, stop, num)


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value: Union[int, float] = 0

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self._value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"value": self._value}


class Gauge:
    """A last-written value."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value: float = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"value": self._value}


class LatencyHistogram:
    """Fixed-bucket latency histogram with a ring buffer of raw samples.

    Buckets are *upper bounds in microseconds*, closed on the right
    (Prometheus ``le`` semantics); one extra overflow bucket catches
    anything above the last bound.  The ring buffer keeps the most
    recent ``ring_size`` raw samples so :meth:`percentile` can answer
    "what is p99 right now" without unbounded memory.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "labels",
        "_bounds",
        "_counts",
        "_sum_micros",
        "_count",
        "_ring",
        "_ring_pos",
        "_ring_filled",
    )

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        *,
        buckets: Optional[Sequence[float]] = None,
        ring_size: int = 512,
    ) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        bounds = np.asarray(
            log_spaced_buckets() if buckets is None else list(buckets), dtype=np.float64
        )
        if bounds.ndim != 1 or bounds.size == 0:
            raise ValueError("buckets must be a non-empty 1-d sequence")
        if not np.all(np.diff(bounds) > 0):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self._bounds = bounds
        # One count per bound plus the overflow bucket (> bounds[-1]).
        self._counts = np.zeros(bounds.size + 1, dtype=np.int64)
        self._sum_micros = 0.0
        self._count = 0
        self._ring = np.zeros(ring_size, dtype=np.float64)
        self._ring_pos = 0
        self._ring_filled = 0

    # -- recording (hot path) -----------------------------------------
    def observe(self, seconds: float) -> None:
        """Record one latency sample, given in seconds."""
        self.observe_block(seconds, 1)

    def observe_block(self, total_seconds: float, count: int) -> None:
        """Record ``count`` queries that together took ``total_seconds``.

        The batched execute path times the whole block; attributing the
        *mean* to every query keeps the totals exact (``_sum``/``_count``
        are) while costing one bucket lookup per block instead of one
        per query.  The ring buffer receives the mean as one sample.
        """
        if count <= 0:
            return
        micros = total_seconds * 1e6
        mean = micros / count
        self._counts[int(np.searchsorted(self._bounds, mean, side="left"))] += count
        self._sum_micros += micros
        self._count += count
        self._ring[self._ring_pos] = mean
        self._ring_pos = (self._ring_pos + 1) % self._ring.size
        if self._ring_filled < self._ring.size:
            self._ring_filled += 1

    # -- reading ------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum_micros(self) -> float:
        return self._sum_micros

    @property
    def mean_micros(self) -> float:
        return self._sum_micros / self._count if self._count else 0.0

    @property
    def bucket_bounds(self) -> np.ndarray:
        bounds = self._bounds.view()
        bounds.flags.writeable = False
        return bounds

    @property
    def bucket_counts(self) -> np.ndarray:
        counts = self._counts.view()
        counts.flags.writeable = False
        return counts

    def samples(self) -> np.ndarray:
        """The raw samples currently held by the ring buffer (unordered)."""
        return self._ring[: self._ring_filled].copy()

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the ring-buffer samples."""
        if self._ring_filled == 0:
            return 0.0
        return float(np.percentile(self._ring[: self._ring_filled], q))

    def snapshot(self) -> Dict[str, object]:
        return {
            "buckets": [float(b) for b in self._bounds],
            "counts": [int(c) for c in self._counts],
            "count": self._count,
            "sum_micros": self._sum_micros,
        }


Instrument = Union[Counter, Gauge, LatencyHistogram]


class MetricsRegistry:
    """A get-or-create store of instruments keyed by ``(name, labels)``.

    The same name must always refer to the same instrument kind (a
    Prometheus family is homogeneous); violating that raises
    ``ValueError`` at creation time rather than at export time.
    """

    def __init__(self) -> None:
        self._instruments: Dict[SeriesKey, Instrument] = {}
        self._kinds: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self.collect())

    def _get_or_create(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key: SeriesKey = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is not None:
            return instrument
        known = self._kinds.get(name)
        if known is not None and known != cls.kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {known}, "
                f"cannot re-register as a {cls.kind}"
            )
        instrument = cls(name, key[1], **kwargs)
        self._instruments[key] = instrument
        self._kinds[name] = cls.kind
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: Optional[Sequence[float]] = None,
        ring_size: int = 512,
        **labels: object,
    ) -> LatencyHistogram:
        return self._get_or_create(
            LatencyHistogram, name, labels, buckets=buckets, ring_size=ring_size
        )

    def get(self, name: str, **labels: object) -> Optional[Instrument]:
        """The existing instrument for ``(name, labels)``, or ``None``."""
        return self._instruments.get((name, _label_key(labels)))

    def collect(self) -> List[Instrument]:
        """All instruments, deterministically ordered by (name, labels)."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def snapshot(self) -> List[Dict[str, object]]:
        """A plain-data dump of every series (used by the JSON exporter)."""
        out: List[Dict[str, object]] = []
        for instrument in self.collect():
            entry: Dict[str, object] = {
                "name": instrument.name,
                "kind": instrument.kind,
                "labels": dict(instrument.labels),
            }
            entry.update(instrument.snapshot())
            out.append(entry)
        return out
