"""Render a :class:`~repro.obs.registry.MetricsRegistry` for the outside world.

Three text renderings (Prometheus exposition format, JSON, CSV) plus a
columnar dump of observed workload traffic to ``.npy``/``.csv`` files.
Everything is deterministic: series are emitted in sorted ``(name,
labels)`` order and JSON keys are sorted, so two renders of the same
registry are byte-identical — the service benchmark relies on that.

This module deliberately imports nothing from the rest of ``repro``:
the workload dump duck-types anything exposing the
:class:`~repro.workload_log.WorkloadLog` table accessors, which keeps
``repro.obs`` a leaf package (zero non-NumPy dependencies).
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Dict, List, Union

import numpy as np

from repro.obs.registry import LatencyHistogram, MetricsRegistry

__all__ = [
    "render_prometheus",
    "render_json",
    "render_csv",
    "dump_workload",
]


def _format_value(value: Union[int, float]) -> str:
    # Prometheus prints integers without an exponent and floats via repr;
    # repr round-trips float64 exactly, which the reconciliation checks use.
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _label_text(labels, extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Histograms expand to cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``, counters and gauges to single samples; each
    family gets one ``# TYPE`` line.
    """
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for instrument in registry.collect():
        name = instrument.name
        if name not in seen_types:
            seen_types[name] = instrument.kind
            lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, LatencyHistogram):
            cumulative = 0
            for bound, count in zip(
                instrument.bucket_bounds, instrument.bucket_counts
            ):
                cumulative += int(count)
                le = _format_value(float(bound))
                labels = _label_text(instrument.labels, f'le="{le}"')
                lines.append(f"{name}_bucket{labels} {cumulative}")
            cumulative += int(instrument.bucket_counts[-1])
            labels = _label_text(instrument.labels, 'le="+Inf"')
            lines.append(f"{name}_bucket{labels} {cumulative}")
            labels = _label_text(instrument.labels)
            lines.append(f"{name}_sum{labels} {_format_value(instrument.sum_micros)}")
            lines.append(f"{name}_count{labels} {instrument.count}")
        else:
            labels = _label_text(instrument.labels)
            lines.append(f"{name}{labels} {_format_value(instrument.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def render_json(registry: MetricsRegistry) -> str:
    """The registry as a sorted-key JSON document (one object per series)."""
    return json.dumps({"metrics": registry.snapshot()}, sort_keys=True, indent=2) + "\n"


def render_csv(registry: MetricsRegistry) -> str:
    """The registry as flat CSV rows: ``name,kind,labels,field,value``.

    Histograms contribute one row per bucket (field ``le=<bound>``) plus
    ``sum_micros`` and ``count`` rows, so the whole registry stays
    greppable/spreadsheet-importable without nesting.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["name", "kind", "labels", "field", "value"])
    for instrument in registry.collect():
        labels = ";".join(f"{key}={value}" for key, value in instrument.labels)
        if isinstance(instrument, LatencyHistogram):
            for bound, count in zip(
                instrument.bucket_bounds, instrument.bucket_counts
            ):
                writer.writerow(
                    [instrument.name, "histogram", labels,
                     f"le={_format_value(float(bound))}", int(count)]
                )
            writer.writerow(
                [instrument.name, "histogram", labels, "le=+Inf",
                 int(instrument.bucket_counts[-1])]
            )
            writer.writerow(
                [instrument.name, "histogram", labels, "sum_micros",
                 _format_value(instrument.sum_micros)]
            )
            writer.writerow(
                [instrument.name, "histogram", labels, "count", instrument.count]
            )
        else:
            writer.writerow(
                [instrument.name, instrument.kind, labels, "value",
                 _format_value(instrument.value)]
            )
    return buffer.getvalue()


def _workload_tables(log) -> Dict[str, np.ndarray]:
    """The observed-traffic tables of a WorkloadLog-like object.

    ``ranges`` is ``(n, 5)`` float64 ``[xmin, ymin, xmax, ymax, count]``,
    ``knn`` is ``(n, 3)`` ``[x, y, k]``, ``radius`` is ``(n, 3)``
    ``[x, y, radius]``.  Only non-empty tables are returned.
    """
    tables: Dict[str, np.ndarray] = {}
    if log.num_ranges:
        rects = np.asarray(log.range_rects, dtype=np.float64)
        counts = np.asarray(log.range_counts, dtype=np.float64).reshape(-1, 1)
        tables["ranges"] = np.hstack([rects, counts])
    if log.num_knn:
        tables["knn"] = np.asarray(log.knn_probes, dtype=np.float64)
    if log.num_radius:
        tables["radius"] = np.asarray(log.radius_probes, dtype=np.float64)
    return tables


_WORKLOAD_HEADERS = {
    "ranges": ["xmin", "ymin", "xmax", "ymax", "count"],
    "knn": ["x", "y", "k"],
    "radius": ["x", "y", "radius"],
}


def dump_workload(log, directory, *, prefix: str = "workload", fmt: str = "both"):
    """Dump a WorkloadLog's observed traffic to NPY and/or CSV files.

    Writes ``<prefix>_ranges.npy`` / ``.csv`` (and ``_knn``/``_radius``
    when present) into ``directory`` and returns the list of paths
    written.  ``fmt`` is ``"npy"``, ``"csv"`` or ``"both"``.
    """
    if fmt not in ("npy", "csv", "both"):
        raise ValueError(f"fmt must be 'npy', 'csv' or 'both', got {fmt!r}")
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for table_name, table in sorted(_workload_tables(log).items()):
        base = os.path.join(str(directory), f"{prefix}_{table_name}")
        if fmt in ("npy", "both"):
            path = base + ".npy"
            np.save(path, table)
            written.append(path)
        if fmt in ("csv", "both"):
            path = base + ".csv"
            with open(path, "w", newline="") as handle:
                writer = csv.writer(handle, lineterminator="\n")
                writer.writerow(_WORKLOAD_HEADERS[table_name])
                writer.writerows(table.tolist())
            written.append(path)
    return written
