"""Zero-dependency observability: metrics registry, adapters, exporters.

The package is a leaf — it imports NumPy and the standard library only —
so the service layer, the CLI and offline analysis scripts can all share
one metrics vocabulary without coupling to the engine.  See
``docs/OBSERVABILITY.md`` for the metric names and label conventions.
"""

from repro.obs.exporters import (
    dump_workload,
    render_csv,
    render_json,
    render_prometheus,
)
from repro.obs.instrument import (
    COST_FIELDS,
    EngineMetrics,
    ShardMetrics,
    plan_kind,
    shard_method_kind,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    log_spaced_buckets,
)

__all__ = [
    "COST_FIELDS",
    "Counter",
    "EngineMetrics",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "ShardMetrics",
    "dump_workload",
    "log_spaced_buckets",
    "plan_kind",
    "render_csv",
    "render_json",
    "render_prometheus",
    "shard_method_kind",
]
