# repro-lint: hot-path
"""Adapters that record engine / sharded-backend activity into a registry.

:class:`EngineMetrics` is what :class:`~repro.engine.SpatialEngine`
holds when instrumentation is attached: per-plan-kind latency histograms
and query totals, scan-cost counter deltas (one Prometheus counter per
CostCounters field), plan-cache hit/miss totals, and the advise/adapt
lifecycle (drift-score gauge, verdict counters, adapt totals).

:class:`ShardMetrics` is the sharded-serving twin held by
:class:`~repro.serving.dispatcher.ShardedIndex`: per-shard busy-time
histograms and scan-cost totals, labelled ``shard=<id>, kind=<plan>``,
fed from the exact per-shard counter deltas the dispatcher already
absorbs on every scatter.

Both adapters only *create* series lazily on first use, so an idle
instrument costs nothing and ``/metrics`` only shows traffic that
actually happened.  Recording is a dict lookup plus the histogram /
counter primitives — the engine's <10% instrumentation overhead bound
(benchmarks/bench_service.py) is measured over this path.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.obs.registry import Counter, LatencyHistogram, MetricsRegistry

__all__ = [
    "COST_FIELDS",
    "EngineMetrics",
    "ShardMetrics",
    "plan_kind",
    "shard_method_kind",
]

#: The CostCounters fields exported as ``repro_scan_cost_total`` series.
COST_FIELDS = (
    "nodes_visited",
    "bbs_checked",
    "pages_scanned",
    "points_filtered",
    "points_returned",
    "leaves_skipped",
)

_PLAN_KINDS = {
    "RangeQuery": "range",
    "PointQuery": "point",
    "KnnQuery": "knn",
    "RadiusQuery": "radius",
    "JoinQuery": "join",
}

#: ShardedIndex scatter methods -> plan kind labels.
_SHARD_METHOD_KINDS = {
    "batch_range_rows": "range",
    "batch_range_count": "range",
    "batch_knn_rows": "knn",
    "batch_radius_rows": "radius",
    "point_query": "point",
}


def plan_kind(query: object) -> str:
    """The metrics label for a typed query plan (``"range"``, ``"knn"``...).

    Keyed by class name rather than class identity so the obs package
    stays import-free of the engine layer.
    """
    return _PLAN_KINDS.get(type(query).__name__, "other")


def shard_method_kind(method: str) -> str:
    """The plan-kind label for a ShardedIndex scatter method name."""
    return _SHARD_METHOD_KINDS.get(method, "other")


class EngineMetrics:
    """Records one engine's query traffic and adaptation lifecycle."""

    __slots__ = (
        "registry",
        "_labels",
        "_latency",
        "_queries",
        "_scan",
        "_cache",
        "_verdicts",
    )

    def __init__(self, registry: MetricsRegistry, **labels: object) -> None:
        self.registry = registry
        self._labels = {str(k): str(v) for k, v in labels.items()}
        self._latency: Dict[str, LatencyHistogram] = {}
        self._queries: Dict[str, Counter] = {}
        self._scan: Dict[str, Counter] = {}
        self._cache: Dict[str, Counter] = {}
        self._verdicts: Dict[bool, Counter] = {}

    # -- lazy series creation ------------------------------------------
    def _latency_for(self, kind: str) -> LatencyHistogram:
        hist = self._latency.get(kind)
        if hist is None:
            hist = self.registry.histogram(
                "repro_query_latency_micros", kind=kind, **self._labels
            )
            self._latency[kind] = hist
        return hist

    def _queries_for(self, kind: str) -> Counter:
        counter = self._queries.get(kind)
        if counter is None:
            counter = self.registry.counter(
                "repro_queries_total", kind=kind, **self._labels
            )
            self._queries[kind] = counter
        return counter

    def _scan_for(self, field: str) -> Counter:
        counter = self._scan.get(field)
        if counter is None:
            counter = self.registry.counter(
                "repro_scan_cost_total", counter=field, **self._labels
            )
            self._scan[field] = counter
        return counter

    def _cache_for(self, outcome: str) -> Counter:
        counter = self._cache.get(outcome)
        if counter is None:
            counter = self.registry.counter(
                "repro_plan_cache_total", outcome=outcome, **self._labels
            )
            self._cache[outcome] = counter
        return counter

    # -- recording -----------------------------------------------------
    def observe_query(
        self,
        kind: str,
        seconds: float,
        count: int,
        counters_before: Mapping[str, int],
        counters_after: Mapping[str, int],
        cache_delta: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Record an execute/execute_many call of ``count`` plans."""
        self._latency_for(kind).observe_block(seconds, count)
        self._queries_for(kind).inc(count)
        for field in COST_FIELDS:
            delta = counters_after.get(field, 0) - counters_before.get(field, 0)
            if delta:
                self._scan_for(field).inc(int(delta))
        if cache_delta is not None:
            hits, misses = cache_delta
            if hits:
                self._cache_for("hit").inc(hits)
            if misses:
                self._cache_for("miss").inc(misses)

    def observe_advise(self, report) -> None:
        """Record an advise() verdict and its drift score."""
        if report.drift_score is not None:
            self.registry.gauge("repro_drift_score", **self._labels).set(
                report.drift_score
            )
        self.registry.gauge(
            "repro_advise_estimated_improvement", **self._labels
        ).set(report.estimated_improvement)
        verdict = bool(report.should_adapt)
        counter = self._verdicts.get(verdict)
        if counter is None:
            counter = self.registry.counter(
                "repro_advise_verdicts_total",
                verdict="adapt" if verdict else "keep",
                **self._labels,
            )
            self._verdicts[verdict] = counter
        counter.inc()

    def observe_adapt(self, seconds: float) -> None:
        """Record one completed adapt() hot swap."""
        self.registry.counter("repro_adapts_total", **self._labels).inc()
        self.registry.gauge("repro_last_adapt_seconds", **self._labels).set(seconds)


class OnlineMetrics:
    """Records the online write path: delta occupancy, compactions, adapt scope."""

    __slots__ = ("registry", "_labels", "_ingest")

    def __init__(self, registry: MetricsRegistry, **labels: object) -> None:
        self.registry = registry
        self._labels = {str(k): str(v) for k, v in labels.items()}
        self._ingest: Dict[str, Counter] = {}

    def observe_ingest(self, kind: str, count: int = 1) -> None:
        """Record accepted writes (``kind`` is ``insert`` or ``delete``)."""
        counter = self._ingest.get(kind)
        if counter is None:
            counter = self.registry.counter(
                "repro_ingest_total", kind=kind, **self._labels
            )
            self._ingest[kind] = counter
        counter.inc(count)

    def observe_delta(self, stats: Mapping[str, object]) -> None:
        """Record the delta buffer's current occupancy."""
        self.registry.gauge("repro_delta_live_rows", **self._labels).set(
            int(stats.get("live", 0))
        )
        self.registry.gauge("repro_delta_tombstones", **self._labels).set(
            int(stats.get("tombstones", 0))
        )

    def observe_compaction(self, result: Mapping[str, object]) -> None:
        """Record one completed compaction."""
        self.registry.counter("repro_compactions_total", **self._labels).inc()
        self.registry.gauge("repro_last_compaction_seconds", **self._labels).set(
            float(result.get("seconds", 0.0))
        )

    def observe_tick(self) -> None:
        """Record one maintenance-loop tick (manual or background)."""
        self.registry.counter("repro_maintenance_ticks_total", **self._labels).inc()

    def observe_incremental_adapt(self, report) -> None:
        """Record one incremental-adapt pass and the fraction of leaves touched."""
        if report.selected:
            self.registry.counter(
                "repro_incremental_adapts_total", **self._labels
            ).inc()
        self.registry.gauge("repro_incremental_adapt_scope", **self._labels).set(
            report.scope
        )
        self.registry.gauge(
            "repro_incremental_adapt_selected", **self._labels
        ).set(report.selected)


class ShardMetrics:
    """Records per-shard busy time and scan-cost deltas for a ShardedIndex."""

    __slots__ = ("registry", "_busy", "_scan")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._busy: Dict[Tuple[int, str], LatencyHistogram] = {}
        self._scan: Dict[Tuple[int, str], Counter] = {}

    def observe_shard(
        self,
        shard_id: int,
        method: str,
        busy_seconds: float,
        counter_delta: Mapping[str, int],
    ) -> None:
        """Record one shard's share of a scatter/gather round."""
        kind = shard_method_kind(method)
        key = (shard_id, kind)
        hist = self._busy.get(key)
        if hist is None:
            hist = self.registry.histogram(
                "repro_shard_busy_micros", shard=shard_id, kind=kind
            )
            self._busy[key] = hist
        hist.observe_block(busy_seconds, 1)
        for field, value in counter_delta.items():
            if not value:
                continue
            scan_key = (shard_id, field)
            counter = self._scan.get(scan_key)
            if counter is None:
                counter = self.registry.counter(
                    "repro_shard_scan_cost_total", shard=shard_id, counter=field
                )
                self._scan[scan_key] = counter
            counter.inc(int(value))
