"""High-level convenience API.

Most users only need three things: generate (or load) a dataset, describe
the anticipated query workload, and build an index.  This module offers a
single :func:`build_index` factory covering every index in the library and
small helpers for running a workload and summarising the outcome, so the
examples and quick experiments stay short.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines import (
    CURTree,
    FloodIndex,
    KDTreeIndex,
    QuadTreeIndex,
    QUASIIIndex,
    RTree,
    STRRTree,
    ZPGMIndex,
)
from repro.core import BaseWithSkipping, WaZI, WaZIWithoutSkipping
from repro.evaluation import (
    ComparisonRunner,
    measure_join_workload,
    measure_knn_queries,
    measure_point_queries,
    measure_range_queries,
)
from repro.geometry import Point, Rect
from repro.interfaces import SpatialIndex
from repro.zindex import BaseZIndex

#: Index names accepted by :func:`build_index`.  Workload-aware indexes use
#: the ``workload`` argument; the rest ignore it.
INDEX_NAMES = (
    "wazi",
    "wazi-sk",
    "base",
    "base+sk",
    "str",
    "cur",
    "flood",
    "quasii",
    "zpgm",
    "rtree",
    "quadtree",
    "kdtree",
)


def build_index(
    name: str,
    points: Sequence[Point],
    workload: Sequence[Rect] = (),
    leaf_capacity: int = 64,
    seed: Optional[int] = 0,
    **kwargs,
) -> SpatialIndex:
    """Build any index in the library by name.

    Parameters
    ----------
    name:
        One of :data:`INDEX_NAMES` (case-insensitive).
    points:
        The dataset.
    workload:
        Anticipated range queries; required for the workload-aware indexes
        (``wazi``, ``wazi-sk``, ``cur``, ``flood``, ``quasii``) to have any
        effect, ignored by the others.
    leaf_capacity:
        Page size ``L`` (or the grid cell target for Flood).
    seed:
        Seed for the learned / randomised components.
    kwargs:
        Forwarded to the index constructor for index-specific options.
    """
    key = name.lower()
    if key == "wazi":
        return WaZI(points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs)
    if key in ("wazi-sk", "wazi_nosk", "wazi-noskip"):
        return WaZIWithoutSkipping(points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs)
    if key == "base":
        return BaseZIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key in ("base+sk", "base_sk", "basesk"):
        return BaseWithSkipping(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "str":
        return STRRTree(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "cur":
        return CURTree(points, workload, leaf_capacity=leaf_capacity, **kwargs)
    if key == "flood":
        return FloodIndex(points, workload, cell_target=leaf_capacity, seed=seed or 0, **kwargs)
    if key == "quasii":
        return QUASIIIndex(points, workload, **kwargs)
    if key == "zpgm":
        return ZPGMIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "rtree":
        return RTree(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "quadtree":
        return QuadTreeIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "kdtree":
        return KDTreeIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    raise ValueError(f"Unknown index name {name!r}; expected one of {INDEX_NAMES}")


def compare_indexes(
    names: Sequence[str],
    points: Sequence[Point],
    workload: Sequence[Rect],
    point_queries: Sequence[Point] = (),
    leaf_capacity: int = 64,
    seed: int = 0,
    *,
    knn_queries: Sequence[Point] = (),
    knn_k: int = 10,
    repeats: int = 1,
    batch_ranges: bool = False,
    batch_knn: bool = False,
) -> Dict[str, "object"]:
    """Build and measure several indexes on the same data and workload.

    ``repeats`` and ``batch_ranges`` are forwarded to
    :meth:`~repro.evaluation.runner.ComparisonRunner.run` (earlier
    revisions dropped them, which made the batch engine unreachable from
    this entry point).  ``knn_queries`` adds the kNN scenario measured per
    index; ``batch_knn`` routes it through the amortised
    :meth:`~repro.interfaces.SpatialIndex.batch_knn` path.

    Returns a mapping from index name to
    :class:`~repro.evaluation.runner.ComparisonResult`.
    """
    factories = {
        name: (lambda n=name: build_index(n, points, workload, leaf_capacity=leaf_capacity, seed=seed))
        for name in names
    }
    runner = ComparisonRunner(factories)
    return runner.run_dict(
        range_queries=list(workload),
        point_queries=list(point_queries),
        knn_queries=list(knn_queries),
        knn_k=knn_k,
        repeats=repeats,
        batch_ranges=batch_ranges,
        batch_knn=batch_knn,
    )


def run_range_workload(index: SpatialIndex, workload: Sequence[Rect], batch: bool = False):
    """Measure a range workload on an already-built index (wall clock + counters).

    ``batch=True`` submits the workload through
    :meth:`~repro.interfaces.SpatialIndex.batch_range_query`, the amortised
    path benchmark workloads should prefer.
    """
    return measure_range_queries(index, list(workload), batch=batch)


def run_point_workload(index: SpatialIndex, queries: Sequence[Point]):
    """Measure a point-query workload on an already-built index."""
    return measure_point_queries(index, list(queries))


def run_knn_workload(
    index: SpatialIndex, centers: Sequence[Point], k: int = 10, batch: bool = False
):
    """Measure a kNN workload on an already-built index (wall clock + counters).

    ``batch=True`` submits the probes through
    :meth:`~repro.interfaces.SpatialIndex.batch_knn`, the amortised path
    the Z-index family answers with its vectorized columnar kernel.
    """
    return measure_knn_queries(index, list(centers), k, batch=batch)


def run_join_workload(
    index: SpatialIndex,
    probes: Sequence[Point],
    kind: str = "box",
    *,
    half_width: Optional[float] = None,
    radius: Optional[float] = None,
    k: Optional[int] = None,
):
    """Measure a spatial-join workload (box / radius / knn) on an index.

    Thin wrapper over
    :func:`~repro.evaluation.runner.measure_join_workload`; see there for
    the per-kind parameters.
    """
    return measure_join_workload(
        index, list(probes), kind, half_width=half_width, radius=radius, k=k
    )


def workload_summary(stats) -> Dict[str, float]:
    """A compact dictionary summary of a :class:`QueryStats` measurement."""
    return {
        "index": stats.index_name,
        "queries": stats.num_queries,
        "mean_micros": stats.mean_micros,
        "bbs_checked_per_query": stats.per_query("bbs_checked"),
        "pages_scanned_per_query": stats.per_query("pages_scanned"),
        "points_filtered_per_query": stats.per_query("points_filtered"),
        "excess_points_per_query": stats.per_query("excess_points"),
    }
