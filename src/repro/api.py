"""High-level convenience API (deprecation shims over the engine).

.. deprecated::
    The free functions in this module predate the columnar-first query API.
    New code should use :class:`repro.engine.SpatialEngine` with the typed
    plans of :mod:`repro.query` (see ``docs/API.md`` for the migration
    table); everything here keeps working and now delegates to the engine
    layer, so both surfaces stay behaviourally identical.  The legacy
    entry points ``build_index`` and ``build_or_load_index`` emit a
    :class:`DeprecationWarning` (once per call site, per Python's default
    warning de-duplication) naming their replacement.

The canonical implementations of :func:`build_index` and
:func:`build_or_load_index` live in :mod:`repro.engine`; the shims here
warn and delegate.  :func:`compare_indexes` builds its per-index engines
through :meth:`SpatialEngine.build`, which is also how per-index
constructor keyword arguments are forwarded (earlier revisions silently
dropped them).
"""

# repro-lint: public-api
from __future__ import annotations

import warnings
from typing import Dict, Mapping, Optional, Sequence, Union
from pathlib import Path

from repro.engine import (  # noqa: F401  (re-exported shims)
    INDEX_NAMES,
    SpatialEngine,
    _encode_build_request,
    _snapshot_matches_request,
    as_engine,
)
from repro.engine import build_index as _build_index
from repro.engine import build_or_load_index as _build_or_load_index


def build_index(
    name,
    points,
    workload=(),
    *,
    leaf_capacity: int = 64,
    seed: Optional[int] = 0,
    **kwargs,
):
    """Deprecated shim over :func:`repro.engine.build_index`.

    .. deprecated::
        Use ``SpatialEngine.build(name, points, workload, ...)`` (or
        :func:`repro.engine.build_index` for a bare index); see
        ``docs/API.md``.
    """
    warnings.warn(
        "repro.api.build_index is deprecated; use "
        "repro.engine.SpatialEngine.build(...) (or repro.engine.build_index "
        "for a bare index) — see docs/API.md for the migration table",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_index(
        name, points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs
    )


#: Identity of the unpatched shim, so internal delegation (the
#: ``build_or_load_index`` fresh-build path, rebuild-snapshot replay) can
#: route through this module's namespace — honouring monkeypatches — while
#: skipping the shim's warning when it has *not* been patched.  Mutating
#: warning filters instead would reset the per-call-site warning registry
#: and break the warn-once behaviour.
_BUILD_INDEX_SHIM = build_index


def build_or_load_index(
    name,
    points,
    workload=(),
    *,
    snapshot_path,
    leaf_capacity: int = 64,
    seed: Optional[int] = 0,
    rebuild: bool = False,
    **kwargs,
):
    """Deprecated shim over :func:`repro.engine.build_or_load_index`.

    .. deprecated::
        Use ``SpatialEngine.open(name, points, workload,
        snapshot_path=...)``; see ``docs/API.md``.

    Kept so existing callers (and monkeypatches of this module's
    ``build_index``) keep working; the fresh-build path resolves
    ``build_index`` through this module's namespace at call time (without
    re-warning — this shim already has).
    """
    warnings.warn(
        "repro.api.build_or_load_index is deprecated; use "
        "repro.engine.SpatialEngine.open(..., snapshot_path=...) — see "
        "docs/API.md for the migration table",
        DeprecationWarning,
        stacklevel=2,
    )

    def _factory(*args, **kw):
        builder = build_index  # module-global lookup: monkeypatches win
        if builder is _BUILD_INDEX_SHIM:
            builder = _build_index  # canonical impl — no second warning
        return builder(*args, **kw)

    return _build_or_load_index(
        name, points, workload,
        snapshot_path=snapshot_path, leaf_capacity=leaf_capacity,
        seed=seed, rebuild=rebuild,
        _factory=_factory,
        **kwargs,
    )
from repro.evaluation import (
    ComparisonRunner,
    QueryStats,
    measure_join_workload,
    measure_knn_queries,
    measure_point_queries,
    measure_range_queries,
    measure_snapshot_roundtrip,
)
from repro.geometry import Point, Rect
from repro.interfaces import SpatialIndex


def compare_indexes(
    names: Sequence[str],
    points: Sequence[Point],
    workload: Sequence[Rect],
    *,
    point_queries: Sequence[Point] = (),
    leaf_capacity: int = 64,
    seed: int = 0,
    knn_queries: Sequence[Point] = (),
    knn_k: int = 10,
    repeats: int = 1,
    batch_ranges: bool = False,
    batch_knn: bool = False,
    snapshot_dir: Optional[Union[str, Path]] = None,
    index_kwargs: Optional[Mapping[str, Mapping[str, object]]] = None,
    **build_kwargs,
) -> Dict[str, "object"]:
    """Build and measure several indexes on the same data and workload.

    Every index is built through :meth:`SpatialEngine.build`, and extra
    constructor options now reach the factories (earlier revisions dropped
    them silently): keyword arguments in ``build_kwargs`` are forwarded to
    *every* index constructor, while ``index_kwargs`` maps an index name to
    options for that index only (per-index options win over shared ones).
    For example::

        compare_indexes(
            ["wazi", "base"], points, workload,
            max_depth=16,                            # applies to both
            index_kwargs={"wazi": {"num_candidates": 8}},
        )

    ``repeats`` and ``batch_ranges`` are forwarded to
    :meth:`~repro.evaluation.runner.ComparisonRunner.run` (earlier
    revisions dropped them, which made the batch engine unreachable from
    this entry point).  ``knn_queries`` adds the kNN scenario measured per
    index; ``batch_knn`` routes it through the amortised
    :meth:`~repro.interfaces.SpatialIndex.batch_knn` path.
    ``snapshot_dir`` adds the snapshot save/load scenario for indexes with
    structural snapshot support (measurements land in
    ``ComparisonResult.extra``).

    Returns a mapping from index name to
    :class:`~repro.evaluation.runner.ComparisonResult`.
    """
    per_index = {name: dict(options) for name, options in (index_kwargs or {}).items()}
    unknown = set(per_index) - set(names)
    if unknown:
        raise ValueError(
            f"index_kwargs given for indexes not being compared: {sorted(unknown)}"
        )

    def factory_for(name: str):
        options = {**build_kwargs, **per_index.get(name, {})}

        def factory():
            return SpatialEngine.build(
                name, points, workload,
                leaf_capacity=leaf_capacity, seed=seed, **options,
            )

        return factory

    runner = ComparisonRunner({name: factory_for(name) for name in names})
    return runner.run_dict(
        range_queries=list(workload),
        point_queries=list(point_queries),
        knn_queries=list(knn_queries),
        knn_k=knn_k,
        repeats=repeats,
        batch_ranges=batch_ranges,
        batch_knn=batch_knn,
        snapshot_dir=snapshot_dir,
    )


def run_range_workload(index: SpatialIndex, workload: Sequence[Rect], batch: bool = False,
                       *, count_only: bool = False):
    """Measure a range workload on an already-built index (wall clock + counters).

    ``batch=True`` submits the workload through
    :meth:`~repro.interfaces.SpatialIndex.batch_range_query`, the amortised
    path benchmark workloads should prefer.  ``count_only=True`` measures
    the count-only plan execution, which never materialises results on the
    columnar core.
    """
    return measure_range_queries(index, list(workload), batch=batch, count_only=count_only)


def run_point_workload(index: SpatialIndex, queries: Sequence[Point]):
    """Measure a point-query workload on an already-built index."""
    return measure_point_queries(index, list(queries))


def run_knn_workload(
    index: SpatialIndex, centers: Sequence[Point], *, k: int = 10, batch: bool = False
):
    """Measure a kNN workload on an already-built index (wall clock + counters).

    ``batch=True`` submits the probes through
    :meth:`~repro.interfaces.SpatialIndex.batch_knn`, the amortised path
    the Z-index family answers with its vectorized columnar kernel.
    """
    return measure_knn_queries(index, list(centers), k, batch=batch)


def run_join_workload(
    index: SpatialIndex,
    probes: Sequence[Point],
    kind: str = "box",
    *,
    half_width: Optional[float] = None,
    radius: Optional[float] = None,
    k: Optional[int] = None,
):
    """Measure a spatial-join workload (box / radius / knn) on an index.

    Thin wrapper over
    :func:`~repro.evaluation.runner.measure_join_workload`; see there for
    the per-kind parameters.
    """
    return measure_join_workload(
        index, list(probes), kind, half_width=half_width, radius=radius, k=k
    )


def run_snapshot_roundtrip(
    index: SpatialIndex,
    path: Union[str, Path],
    *,
    build_seconds: Optional[float] = None,
    repeats: int = 3,
):
    """Measure save/load of a structural snapshot on an already-built index.

    Thin wrapper over
    :func:`~repro.evaluation.runner.measure_snapshot_roundtrip` (``repeats``
    controls the best-of-N load timing); raises :class:`TypeError` for
    indexes outside the Z-index family.
    """
    return measure_snapshot_roundtrip(
        index, path, build_seconds=build_seconds, repeats=repeats
    )


def workload_summary(stats) -> Dict[str, float]:
    """A compact dictionary summary of one measured workload.

    Accepts any :class:`~repro.evaluation.metrics.QueryStats` — range and
    point workloads, kNN workloads (``measure_knn_queries`` records ``k``
    in :attr:`QueryStats.extra`), join workloads (``measure_join_workload``
    records pair counts and selectivity) — as well as the plain
    measurement dict of
    :func:`~repro.evaluation.runner.measure_snapshot_roundtrip`.  Extra
    workload-specific scalars are merged into the summary verbatim, so the
    one helper covers every scenario the evaluation harness measures.
    """
    if isinstance(stats, Mapping):
        # measure_snapshot_roundtrip returns a flat measurement dict.
        summary = {"kind": "snapshot"}
        summary.update(stats)
        return summary
    if not isinstance(stats, QueryStats):
        raise TypeError(
            f"workload_summary expects QueryStats or a snapshot measurement "
            f"dict, got {type(stats).__name__}"
        )
    extra = dict(stats.extra)
    if "k" in extra:
        kind = "knn"
    elif "num_pairs" in extra:
        kind = "join"
    else:
        kind = "queries"
    summary = {
        "kind": kind,
        "index": stats.index_name,
        "queries": stats.num_queries,
        "mean_micros": stats.mean_micros,
        "bbs_checked_per_query": stats.per_query("bbs_checked"),
        "pages_scanned_per_query": stats.per_query("pages_scanned"),
        "points_filtered_per_query": stats.per_query("points_filtered"),
        "excess_points_per_query": stats.per_query("excess_points"),
    }
    summary.update(extra)
    return summary
