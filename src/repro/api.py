"""High-level convenience API.

Most users only need three things: generate (or load) a dataset, describe
the anticipated query workload, and build an index.  This module offers a
single :func:`build_index` factory covering every index in the library and
small helpers for running a workload and summarising the outcome, so the
examples and quick experiments stay short.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.baselines import (
    CURTree,
    FloodIndex,
    KDTreeIndex,
    QuadTreeIndex,
    QUASIIIndex,
    RTree,
    STRRTree,
    ZPGMIndex,
)
from repro.core import BaseWithSkipping, WaZI, WaZIWithoutSkipping
from repro.evaluation import (
    ComparisonRunner,
    measure_join_workload,
    measure_knn_queries,
    measure_point_queries,
    measure_range_queries,
    measure_snapshot_roundtrip,
)
from repro.geometry import Point, Rect, points_to_arrays
from repro.interfaces import SpatialIndex
from repro.persistence.snapshot import json_clone
from repro.persistence import (
    KIND_REBUILD,
    KIND_ZINDEX,
    SnapshotError,
    dataset_fingerprint,
    load_snapshot,
    read_manifest,
    rects_to_array,
    save_rebuild_snapshot,
    save_snapshot,
    workload_fingerprint,
)
from repro.zindex import BaseZIndex, ZIndex

#: Accepted aliases for the Z-index ablation variants (shared between
#: :func:`build_index` dispatch and the snapshot-matching table, so the two
#: can never drift apart).
_WAZI_SK_ALIASES = ("wazi-sk", "wazi_nosk", "wazi-noskip")
_BASE_SK_ALIASES = ("base+sk", "base_sk", "basesk")

#: Index names accepted by :func:`build_index`.  Workload-aware indexes use
#: the ``workload`` argument; the rest ignore it.
INDEX_NAMES = (
    "wazi",
    "wazi-sk",
    "base",
    "base+sk",
    "str",
    "cur",
    "flood",
    "quasii",
    "zpgm",
    "rtree",
    "quadtree",
    "kdtree",
)


def build_index(
    name: str,
    points: Sequence[Point],
    workload: Sequence[Rect] = (),
    leaf_capacity: int = 64,
    seed: Optional[int] = 0,
    **kwargs,
) -> SpatialIndex:
    """Build any index in the library by name.

    Parameters
    ----------
    name:
        One of :data:`INDEX_NAMES` (case-insensitive).
    points:
        The dataset.
    workload:
        Anticipated range queries; required for the workload-aware indexes
        (``wazi``, ``wazi-sk``, ``cur``, ``flood``, ``quasii``) to have any
        effect, ignored by the others.
    leaf_capacity:
        Page size ``L`` (or the grid cell target for Flood).
    seed:
        Seed for the learned / randomised components.
    kwargs:
        Forwarded to the index constructor for index-specific options.
    """
    key = name.lower()
    if key == "wazi":
        return WaZI(points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs)
    if key in _WAZI_SK_ALIASES:
        return WaZIWithoutSkipping(points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs)
    if key == "base":
        return BaseZIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key in _BASE_SK_ALIASES:
        return BaseWithSkipping(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "str":
        return STRRTree(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "cur":
        return CURTree(points, workload, leaf_capacity=leaf_capacity, **kwargs)
    if key == "flood":
        return FloodIndex(points, workload, cell_target=leaf_capacity, seed=seed or 0, **kwargs)
    if key == "quasii":
        return QUASIIIndex(points, workload, **kwargs)
    if key == "zpgm":
        return ZPGMIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "rtree":
        return RTree(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "quadtree":
        return QuadTreeIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    if key == "kdtree":
        return KDTreeIndex(points, leaf_capacity=leaf_capacity, **kwargs)
    raise ValueError(f"Unknown index name {name!r}; expected one of {INDEX_NAMES}")


#: What a structural snapshot of each Z-index-family build name reports as
#: its index name, used to check that an existing snapshot actually stores
#: the index a caller is asking for.  Derived from the shared alias tuples
#: and the classes' own ``name`` attributes (the value ``save_snapshot``
#: records), so new aliases or renamed classes cannot desync the probe.
_ZINDEX_SNAPSHOT_NAMES = {
    "wazi": WaZI.name,
    "base": BaseZIndex.name,
    **{alias: WaZIWithoutSkipping.name for alias in _WAZI_SK_ALIASES},
    **{alias: BaseWithSkipping.name for alias in _BASE_SK_ALIASES},
}


def _encode_build_request(name, workload, seed, kwargs) -> Optional[Dict]:
    """The JSON record of a build request stored in structural manifests.

    Returns ``None`` when the request cannot be represented (non-JSON
    kwargs); a ``None`` request never matches a stored one, forcing a
    rebuild.
    """
    encoded_kwargs = json_clone(kwargs or {})
    if encoded_kwargs is None:
        return None
    return {
        "name": str(name).lower(),
        "seed": None if seed is None else int(seed),
        "num_queries": len(workload or ()),
        "workload_fingerprint": workload_fingerprint(rects_to_array(workload or ())),
        "kwargs": encoded_kwargs,
    }


def _snapshot_matches_request(
    path, name, points, leaf_capacity, seed, workload=None, kwargs=None
) -> bool:
    """Whether the snapshot at ``path`` plausibly stores the requested index.

    A manifest-only probe (no array reads): the index/build name, the
    dataset (via an order-insensitive content fingerprint, so a regenerated
    same-size dataset is detected) and leaf capacity must match the
    request — plus, for rebuild recipes, everything else the manifest
    records (seed, workload content, extra build kwargs).  Structural
    Z-index snapshots carry the same information in the ``build_request``
    section the helper records at save time; snapshots saved through bare
    ``save_snapshot`` lack it and are conservatively rebuilt.
    """
    try:
        manifest = read_manifest(path)
    except SnapshotError:
        return False
    key = name.lower()
    kind = manifest.get("kind")
    if kind == KIND_ZINDEX:
        info = manifest.get("index") or {}
        expected = _ZINDEX_SNAPSHOT_NAMES.get(key)
        if expected is None or info.get("name") != expected:
            return False
        # The structure does not retain its build arguments, so the helper
        # records them as a build_request section at save time; a snapshot
        # without one (saved through bare save_snapshot) cannot be verified
        # against this request and is rebuilt.
        recorded = manifest.get("build_request")
        if not isinstance(recorded, dict):
            return False
        if recorded != _encode_build_request(name, workload, seed, kwargs):
            return False
        return (
            info.get("num_points") == len(points)
            and info.get("leaf_capacity") == leaf_capacity
            and info.get("dataset_fingerprint") == dataset_fingerprint(
                *points_to_arrays(points)
            )
        )
    if kind == KIND_REBUILD:
        build = manifest.get("build") or {}
        if str(build.get("name", "")).lower() != key:
            return False
        encoded_kwargs = json_clone(kwargs or {})
        if encoded_kwargs is None:
            return False  # unstorable kwargs can never match a stored recipe
        return (
            build.get("num_points") == len(points)
            and build.get("leaf_capacity") == leaf_capacity
            and build.get("seed") == (None if seed is None else int(seed))
            and (
                workload is None
                or (
                    build.get("num_queries") == len(workload)
                    and build.get("workload_fingerprint")
                    == workload_fingerprint(rects_to_array(workload))
                )
            )
            and (build.get("kwargs") or {}) == encoded_kwargs
            and build.get("dataset_fingerprint") == dataset_fingerprint(
                *points_to_arrays(points)
            )
        )
    return False


def build_or_load_index(
    name: str,
    points: Sequence[Point],
    workload: Sequence[Rect] = (),
    *,
    snapshot_path: Union[str, Path],
    leaf_capacity: int = 64,
    seed: Optional[int] = 0,
    rebuild: bool = False,
    **kwargs,
) -> SpatialIndex:
    """Build-once / serve-many: load a snapshot if present, else build and save.

    The deployment helper for the paper's offline-build workflow.  When
    ``snapshot_path`` exists (and ``rebuild`` is false) the index is
    restored from it — an O(n) load for the Z-index family, a deterministic
    replay of the build recipe for the rest of the zoo.  A snapshot whose
    manifest does not match the request (different index name, point
    count, leaf capacity — or seed, workload content and extra kwargs, for
    rebuild recipes), or that is unreadable or version-incompatible,
    silently falls back to a fresh build that overwrites it.  Snapshots
    written by this helper record the full build request (seed, workload
    fingerprint, extra kwargs) so any change to it is detected; snapshots
    saved through bare :func:`save_snapshot` lack that record and are
    conservatively rebuilt.  Otherwise the index is built with
    :func:`build_index` and the snapshot is written for the next process.

    For non-Z-index names the ``kwargs`` must be JSON-serialisable (they
    travel in the rebuild recipe's manifest).
    """
    path = Path(snapshot_path)
    if path.exists() and not rebuild:
        if _snapshot_matches_request(
            path, name, points, leaf_capacity, seed,
            workload=workload, kwargs=kwargs,
        ):
            try:
                return load_snapshot(path)
            except SnapshotError:
                pass  # stale/corrupt snapshot: rebuild and overwrite below
    index = build_index(
        name, points, workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    if isinstance(index, ZIndex):
        save_snapshot(
            index, path,
            build_request=_encode_build_request(name, workload, seed, kwargs),
        )
    else:
        save_rebuild_snapshot(
            name, points, path,
            workload=workload, leaf_capacity=leaf_capacity, seed=seed, **kwargs,
        )
    return index


def compare_indexes(
    names: Sequence[str],
    points: Sequence[Point],
    workload: Sequence[Rect],
    point_queries: Sequence[Point] = (),
    leaf_capacity: int = 64,
    seed: int = 0,
    *,
    knn_queries: Sequence[Point] = (),
    knn_k: int = 10,
    repeats: int = 1,
    batch_ranges: bool = False,
    batch_knn: bool = False,
    snapshot_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, "object"]:
    """Build and measure several indexes on the same data and workload.

    ``repeats`` and ``batch_ranges`` are forwarded to
    :meth:`~repro.evaluation.runner.ComparisonRunner.run` (earlier
    revisions dropped them, which made the batch engine unreachable from
    this entry point).  ``knn_queries`` adds the kNN scenario measured per
    index; ``batch_knn`` routes it through the amortised
    :meth:`~repro.interfaces.SpatialIndex.batch_knn` path.
    ``snapshot_dir`` adds the snapshot save/load scenario for indexes with
    structural snapshot support (measurements land in
    ``ComparisonResult.extra``).

    Returns a mapping from index name to
    :class:`~repro.evaluation.runner.ComparisonResult`.
    """
    factories = {
        name: (lambda n=name: build_index(n, points, workload, leaf_capacity=leaf_capacity, seed=seed))
        for name in names
    }
    runner = ComparisonRunner(factories)
    return runner.run_dict(
        range_queries=list(workload),
        point_queries=list(point_queries),
        knn_queries=list(knn_queries),
        knn_k=knn_k,
        repeats=repeats,
        batch_ranges=batch_ranges,
        batch_knn=batch_knn,
        snapshot_dir=snapshot_dir,
    )


def run_range_workload(index: SpatialIndex, workload: Sequence[Rect], batch: bool = False):
    """Measure a range workload on an already-built index (wall clock + counters).

    ``batch=True`` submits the workload through
    :meth:`~repro.interfaces.SpatialIndex.batch_range_query`, the amortised
    path benchmark workloads should prefer.
    """
    return measure_range_queries(index, list(workload), batch=batch)


def run_point_workload(index: SpatialIndex, queries: Sequence[Point]):
    """Measure a point-query workload on an already-built index."""
    return measure_point_queries(index, list(queries))


def run_knn_workload(
    index: SpatialIndex, centers: Sequence[Point], k: int = 10, batch: bool = False
):
    """Measure a kNN workload on an already-built index (wall clock + counters).

    ``batch=True`` submits the probes through
    :meth:`~repro.interfaces.SpatialIndex.batch_knn`, the amortised path
    the Z-index family answers with its vectorized columnar kernel.
    """
    return measure_knn_queries(index, list(centers), k, batch=batch)


def run_join_workload(
    index: SpatialIndex,
    probes: Sequence[Point],
    kind: str = "box",
    *,
    half_width: Optional[float] = None,
    radius: Optional[float] = None,
    k: Optional[int] = None,
):
    """Measure a spatial-join workload (box / radius / knn) on an index.

    Thin wrapper over
    :func:`~repro.evaluation.runner.measure_join_workload`; see there for
    the per-kind parameters.
    """
    return measure_join_workload(
        index, list(probes), kind, half_width=half_width, radius=radius, k=k
    )


def run_snapshot_roundtrip(
    index: SpatialIndex,
    path: Union[str, Path],
    build_seconds: Optional[float] = None,
    repeats: int = 3,
):
    """Measure save/load of a structural snapshot on an already-built index.

    Thin wrapper over
    :func:`~repro.evaluation.runner.measure_snapshot_roundtrip` (``repeats``
    controls the best-of-N load timing); raises :class:`TypeError` for
    indexes outside the Z-index family.
    """
    return measure_snapshot_roundtrip(
        index, path, build_seconds=build_seconds, repeats=repeats
    )


def workload_summary(stats) -> Dict[str, float]:
    """A compact dictionary summary of a :class:`QueryStats` measurement."""
    return {
        "index": stats.index_name,
        "queries": stats.num_queries,
        "mean_micros": stats.mean_micros,
        "bbs_checked_per_query": stats.per_query("bbs_checked"),
        "pages_scanned_per_query": stats.per_query("pages_scanned"),
        "points_filtered_per_query": stats.per_query("points_filtered"),
        "excess_points_per_query": stats.per_query("excess_points"),
    }
