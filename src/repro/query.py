"""Typed query plans executed by :class:`~repro.engine.SpatialEngine`.

A query plan is a small immutable description of *what* to retrieve; the
engine decides *how* — single-shot or batched, boxed or columnar,
materialised or count-only.  Separating the description from the execution
lets one entry point (``engine.execute`` / ``engine.execute_many``) serve
every workload the library supports:

* :class:`RangeQuery` — points inside an axis-aligned rectangle,
* :class:`PointQuery` — exact-coordinate membership,
* :class:`KnnQuery` — the ``k`` nearest neighbours of a center,
* :class:`RadiusQuery` — points within Euclidean distance of a center,
* :class:`JoinQuery` — a box / radius / kNN join against a probe set.

Execution options (``count_only``, ``limit``) are per-call arguments of
``execute``/``execute_many`` rather than plan fields, so one plan object
can be reused across modes.  On the columnar Z-index family, ``count_only``
skips result materialisation entirely — the answer is computed on the
coordinate columns and not a single :class:`~repro.geometry.Point` is
boxed.

Every plan validates its parameters at construction time, so malformed
workloads fail when the plan is written, not deep inside an index kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geometry import Point, Rect

__all__ = [
    "Query",
    "RangeQuery",
    "PointQuery",
    "KnnQuery",
    "RadiusQuery",
    "JoinQuery",
    "JOIN_KINDS",
]

#: Join operators understood by :class:`JoinQuery` (see :mod:`repro.joins`).
JOIN_KINDS = ("box", "radius", "knn")


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")


@dataclass(frozen=True)
class Query:
    """Base class of all query plans (a marker with shared helpers)."""


@dataclass(frozen=True)
class RangeQuery(Query):
    """Every indexed point inside ``rect`` (Algorithm 2 of the paper)."""

    rect: Rect

    def __post_init__(self) -> None:
        if not isinstance(self.rect, Rect):
            raise TypeError(f"RangeQuery needs a Rect, got {type(self.rect).__name__}")


@dataclass(frozen=True)
class PointQuery(Query):
    """Whether a point with exactly these coordinates is indexed (Algorithm 1)."""

    point: Point

    def __post_init__(self) -> None:
        if not isinstance(self.point, Point):
            raise TypeError(f"PointQuery needs a Point, got {type(self.point).__name__}")
        _require_finite("point.x", self.point.x)
        _require_finite("point.y", self.point.y)


@dataclass(frozen=True)
class KnnQuery(Query):
    """The ``k`` nearest neighbours of ``center`` (Section 6.3 decomposition)."""

    center: Point
    k: int
    initial_radius: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.center, Point):
            raise TypeError(f"KnnQuery needs a Point center, got {type(self.center).__name__}")
        _require_finite("center.x", self.center.x)
        _require_finite("center.y", self.center.y)
        if self.k < 0:
            raise ValueError(f"k must be non-negative, got {self.k}")
        if self.initial_radius is not None:
            _require_finite("initial_radius", self.initial_radius)
            if self.initial_radius < 0:
                raise ValueError(
                    f"initial_radius must be non-negative, got {self.initial_radius}"
                )


@dataclass(frozen=True)
class RadiusQuery(Query):
    """Every indexed point within Euclidean ``radius`` of ``center``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if not isinstance(self.center, Point):
            raise TypeError(
                f"RadiusQuery needs a Point center, got {type(self.center).__name__}"
            )
        _require_finite("center.x", self.center.x)
        _require_finite("center.y", self.center.y)
        if not math.isfinite(self.radius) or self.radius < 0:
            raise ValueError(f"radius must be finite and non-negative, got {self.radius}")


@dataclass(frozen=True)
class JoinQuery(Query):
    """A spatial join of a probe set against the indexed data.

    ``kind`` selects the operator of :mod:`repro.joins`:

    * ``"box"`` — Chebyshev within-window join; needs ``half_width``
      (``half_height`` defaults to it),
    * ``"radius"`` — Euclidean within-distance join; needs ``radius``,
    * ``"knn"`` — ``k`` nearest indexed neighbours per probe; needs ``k``.

    Execution returns the operator's native shape (``(probe, match)``
    pairs, or per-probe ``(probe, neighbours)`` entries for kNN joins);
    under ``count_only`` the engine counts result pairs on the coordinate
    columns without materialising a single pair.
    """

    probes: Tuple[Point, ...]
    kind: str = "box"
    half_width: Optional[float] = None
    half_height: Optional[float] = None
    radius: Optional[float] = None
    k: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "probes", tuple(self.probes))
        if self.kind not in JOIN_KINDS:
            raise ValueError(f"Unknown join kind {self.kind!r}; expected one of {JOIN_KINDS}")
        if self.kind == "box":
            if self.half_width is None:
                raise ValueError("box join needs half_width")
            _require_finite("half_width", self.half_width)
            if self.half_width < 0:
                raise ValueError(f"half_width must be non-negative, got {self.half_width}")
            if self.half_height is not None:
                _require_finite("half_height", self.half_height)
                if self.half_height < 0:
                    raise ValueError(
                        f"half_height must be non-negative, got {self.half_height}"
                    )
        elif self.kind == "radius":
            if self.radius is None:
                raise ValueError("radius join needs radius")
            if not math.isfinite(self.radius) or self.radius < 0:
                raise ValueError(
                    f"radius must be finite and non-negative, got {self.radius}"
                )
        else:  # knn
            if self.k is None:
                raise ValueError("knn join needs k")
            if self.k <= 0:
                raise ValueError(f"k must be positive, got {self.k}")
