"""Equi-width grid histogram density estimator.

The Flood baseline's layout search evaluates candidate grids against an
estimate of how many points and queries each column/cell would receive.
A simple equi-width two-dimensional histogram is sufficient for that cost
model and is also a useful sanity baseline for the RFDE estimator in tests:
on smooth densities both should agree to within histogram resolution.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry import Point, Rect
from repro.density.estimator import DensityEstimator, points_to_array


class GridHistogramDensity(DensityEstimator):
    """A fixed-resolution 2-D histogram supporting range-count estimation.

    Cells fully covered by a query contribute their full count; cells partly
    covered contribute proportionally to the covered area, which assumes
    uniformity inside a cell (the usual histogram assumption).
    """

    def __init__(
        self,
        points: Sequence[Point],
        bins_x: int = 64,
        bins_y: int = 64,
        extent: Optional[Rect] = None,
    ) -> None:
        if bins_x <= 0 or bins_y <= 0:
            raise ValueError(f"bins must be positive, got ({bins_x}, {bins_y})")
        array = points_to_array(points)
        self._bins_x = bins_x
        self._bins_y = bins_y
        if extent is None:
            if array.shape[0] == 0:
                extent = Rect(0.0, 0.0, 1.0, 1.0)
            else:
                extent = Rect(
                    float(array[:, 0].min()),
                    float(array[:, 1].min()),
                    float(array[:, 0].max()),
                    float(array[:, 1].max()),
                )
        self.extent = extent
        span_x = extent.width if extent.width > 0 else 1.0
        span_y = extent.height if extent.height > 0 else 1.0
        self._cell_w = span_x / bins_x
        self._cell_h = span_y / bins_y
        if array.shape[0] == 0:
            self._counts = np.zeros((bins_x, bins_y), dtype=np.float64)
        else:
            self._counts, _, _ = np.histogram2d(
                array[:, 0],
                array[:, 1],
                bins=[bins_x, bins_y],
                range=[
                    [extent.xmin, extent.xmin + span_x],
                    [extent.ymin, extent.ymin + span_y],
                ],
            )
        self._total = float(self._counts.sum())

    @property
    def total(self) -> float:
        return self._total

    @property
    def shape(self):
        """Histogram resolution as ``(bins_x, bins_y)``."""
        return (self._bins_x, self._bins_y)

    def estimate(self, query: Rect) -> float:
        if self._total == 0:
            return 0.0
        clipped = query.intersection(self.extent)
        if clipped is None:
            return 0.0
        # Indices of the cells touched by the clipped query.
        ix_lo = self._cell_index(clipped.xmin, self.extent.xmin, self._cell_w, self._bins_x)
        ix_hi = self._cell_index(clipped.xmax, self.extent.xmin, self._cell_w, self._bins_x)
        iy_lo = self._cell_index(clipped.ymin, self.extent.ymin, self._cell_h, self._bins_y)
        iy_hi = self._cell_index(clipped.ymax, self.extent.ymin, self._cell_h, self._bins_y)
        total = 0.0
        for ix in range(ix_lo, ix_hi + 1):
            cell_xmin = self.extent.xmin + ix * self._cell_w
            cell_xmax = cell_xmin + self._cell_w
            frac_x = self._overlap_fraction(clipped.xmin, clipped.xmax, cell_xmin, cell_xmax)
            if frac_x == 0.0:
                continue
            for iy in range(iy_lo, iy_hi + 1):
                count = self._counts[ix, iy]
                if count == 0.0:
                    continue
                cell_ymin = self.extent.ymin + iy * self._cell_h
                cell_ymax = cell_ymin + self._cell_h
                frac_y = self._overlap_fraction(clipped.ymin, clipped.ymax, cell_ymin, cell_ymax)
                total += count * frac_x * frac_y
        return total

    @staticmethod
    def _cell_index(value: float, origin: float, cell_size: float, bins: int) -> int:
        index = int((value - origin) / cell_size)
        return max(0, min(bins - 1, index))

    @staticmethod
    def _overlap_fraction(lo: float, hi: float, cell_lo: float, cell_hi: float) -> float:
        overlap = min(hi, cell_hi) - max(lo, cell_lo)
        width = cell_hi - cell_lo
        if overlap <= 0 or width <= 0:
            return 0.0
        return min(1.0, overlap / width)

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the histogram."""
        return int(self._counts.nbytes) + 64
