"""A cardinality-annotated k-d tree with randomised split dimensions.

This is one tree of the Random Forest Density Estimation (RFDE) model the
paper uses during WaZI construction.  Each internal node remembers how many
points its region contains; a range-count query walks the tree and

* adds the full cardinality of nodes whose region is entirely inside the
  query,
* skips nodes whose region is disjoint from the query,
* recurses into partially overlapping nodes, and at the leaves either counts
  exactly (small leaves) or interpolates by the overlapped area fraction.

Randomising the split dimension (rather than cycling x, y, x, y, ...) is
what makes an *ensemble* of such trees reduce variance, following Wen and
Hang's RFDE construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry import Point, Rect
from repro.density.estimator import DensityEstimator, points_to_array


class _KDNode:
    """Internal node of the density k-d tree."""

    __slots__ = ("region", "count", "split_dim", "split_value", "left", "right", "points")

    def __init__(self, region: Rect, count: int) -> None:
        self.region = region
        self.count = count
        self.split_dim: int = -1
        self.split_value: float = 0.0
        self.left: Optional["_KDNode"] = None
        self.right: Optional["_KDNode"] = None
        self.points: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class KDTreeDensity(DensityEstimator):
    """Range-count estimation with one randomised cardinality k-d tree.

    Parameters
    ----------
    points:
        The points whose density is being modelled.
    leaf_size:
        Maximum number of points kept in a leaf; below this the tree stops
        splitting and the leaf stores the raw points for exact counting.
    rng:
        Numpy random generator controlling the randomised split dimensions;
        pass a seeded generator for reproducible forests.
    exact_leaves:
        When ``True`` (default) partially overlapped leaves count their
        points exactly; when ``False`` they interpolate by area fraction,
        which is cheaper but less accurate (used for very large leaves).
    """

    def __init__(
        self,
        points: Sequence[Point],
        leaf_size: int = 64,
        rng: Optional[np.random.Generator] = None,
        exact_leaves: bool = True,
    ) -> None:
        if leaf_size <= 0:
            raise ValueError(f"leaf_size must be positive, got {leaf_size}")
        self._array = points_to_array(points)
        self._leaf_size = leaf_size
        self._rng = rng if rng is not None else np.random.default_rng()
        self._exact_leaves = exact_leaves
        self._root = self._build_root()

    # -- construction ------------------------------------------------------
    def _build_root(self) -> Optional[_KDNode]:
        if self._array.shape[0] == 0:
            return None
        region = Rect(
            float(self._array[:, 0].min()),
            float(self._array[:, 1].min()),
            float(self._array[:, 0].max()),
            float(self._array[:, 1].max()),
        )
        return self._build(self._array, region)

    def _build(self, array: np.ndarray, region: Rect) -> _KDNode:
        node = _KDNode(region, int(array.shape[0]))
        if array.shape[0] <= self._leaf_size:
            node.points = array
            return node
        split_dim = int(self._rng.integers(0, 2))
        values = array[:, split_dim]
        split_value = float(np.median(values))
        # A degenerate median (all values equal) cannot split the node; try
        # the other dimension before giving up and keeping a large leaf.
        left_mask = values <= split_value
        if left_mask.all() or not left_mask.any():
            split_dim = 1 - split_dim
            values = array[:, split_dim]
            split_value = float(np.median(values))
            left_mask = values <= split_value
            if left_mask.all() or not left_mask.any():
                node.points = array
                return node
        node.split_dim = split_dim
        node.split_value = split_value
        left_region, right_region = self._child_regions(region, split_dim, split_value)
        node.left = self._build(array[left_mask], left_region)
        node.right = self._build(array[~left_mask], right_region)
        return node

    @staticmethod
    def _child_regions(region: Rect, split_dim: int, split_value: float):
        if split_dim == 0:
            left = Rect(region.xmin, region.ymin, split_value, region.ymax)
            right = Rect(split_value, region.ymin, region.xmax, region.ymax)
        else:
            left = Rect(region.xmin, region.ymin, region.xmax, split_value)
            right = Rect(region.xmin, split_value, region.xmax, region.ymax)
        return left, right

    # -- estimation ----------------------------------------------------------
    @property
    def total(self) -> float:
        return float(self._root.count) if self._root is not None else 0.0

    def estimate(self, query: Rect) -> float:
        if self._root is None:
            return 0.0
        return self._estimate_node(self._root, query)

    def _estimate_node(self, node: _KDNode, query: Rect) -> float:
        region = node.region
        if not region.overlaps(query):
            return 0.0
        if query.contains_rect(region):
            return float(node.count)
        if node.is_leaf:
            return self._estimate_leaf(node, query)
        total = 0.0
        if node.left is not None:
            total += self._estimate_node(node.left, query)
        if node.right is not None:
            total += self._estimate_node(node.right, query)
        return total

    def _estimate_leaf(self, node: _KDNode, query: Rect) -> float:
        if self._exact_leaves and node.points is not None:
            xs = node.points[:, 0]
            ys = node.points[:, 1]
            mask = (
                (xs >= query.xmin)
                & (xs <= query.xmax)
                & (ys >= query.ymin)
                & (ys <= query.ymax)
            )
            return float(np.count_nonzero(mask))
        overlap = node.region.intersection(query)
        if overlap is None or node.region.area == 0:
            return 0.0
        return node.count * overlap.area / node.region.area

    # -- introspection (tests, size accounting) ------------------------------
    def node_count(self) -> int:
        """Total number of tree nodes, counted recursively."""
        def count(node: Optional[_KDNode]) -> int:
            if node is None:
                return 0
            return 1 + count(node.left) + count(node.right)

        return count(self._root)

    def depth(self) -> int:
        """Height of the tree (0 for an empty tree, 1 for a single leaf)."""
        def height(node: Optional[_KDNode]) -> int:
            if node is None:
                return 0
            return 1 + max(height(node.left), height(node.right))

        return height(self._root)

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the estimator."""
        per_node = 7 * 8
        return self.node_count() * per_node + self._array.nbytes
