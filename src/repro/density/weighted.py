"""Per-point query weights for the CUR baseline.

The paper adapts the Cost-based Unbalanced R-tree (CUR) to point data by
weighting every data point with the number of distinct workload queries
that fetch it, then packing the tree with a *weighted* density estimator so
that frequently-fetched regions end up in smaller, better-isolated nodes.
:class:`WeightedPointSet` computes those weights and hands back the weighted
RFDE estimator the CUR construction consumes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.geometry import Point, Rect
from repro.density.estimator import points_to_array
from repro.density.rfde import RandomForestDensity


class WeightedPointSet:
    """Data points annotated with how many workload queries fetch each of them."""

    def __init__(self, points: Sequence[Point], queries: Sequence[Rect]) -> None:
        self.points = list(points)
        self._array = points_to_array(self.points)
        self.weights = self._compute_weights(queries)

    def _compute_weights(self, queries: Sequence[Rect]) -> np.ndarray:
        n = self._array.shape[0]
        weights = np.zeros(n, dtype=np.float64)
        if n == 0:
            return weights
        xs = self._array[:, 0]
        ys = self._array[:, 1]
        for query in queries:
            mask = (
                (xs >= query.xmin)
                & (xs <= query.xmax)
                & (ys >= query.ymin)
                & (ys <= query.ymax)
            )
            weights += mask
        return weights

    @property
    def total_weight(self) -> float:
        return float(self.weights.sum())

    def smoothed_weights(self, epsilon: float = 1.0) -> np.ndarray:
        """Weights with ``epsilon`` added so never-fetched points keep some mass.

        Without smoothing, regions untouched by the training workload would
        be invisible to the weighted estimator and could be packed into
        arbitrarily bad nodes; a small uniform floor keeps the packing sane
        for out-of-workload queries.
        """
        return self.weights + epsilon

    def estimator(
        self,
        num_trees: int = 4,
        leaf_size: int = 64,
        seed: Optional[int] = None,
        epsilon: float = 1.0,
    ) -> RandomForestDensity:
        """Build the weighted RFDE estimator used by the CUR construction."""
        return RandomForestDensity(
            self.points,
            num_trees=num_trees,
            leaf_size=leaf_size,
            seed=seed,
            weights=self.smoothed_weights(epsilon),
        )

    def top_weighted(self, k: int) -> List[Point]:
        """The ``k`` most frequently fetched points (useful for diagnostics)."""
        if k <= 0 or not self.points:
            return []
        order = np.argsort(-self.weights)[:k]
        return [self.points[i] for i in order]
