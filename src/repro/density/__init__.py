"""Density estimators — the "learned" component of WaZI's construction.

The greedy construction of Section 4.3 repeatedly asks "how many data
points (and how many query corners) would fall in each of the four child
cells of this candidate split?".  Answering those questions exactly over
the full dataset for every candidate split would dominate construction
time, so the paper fits density models once and evaluates the cost function
against the models.  The paper uses Random Forest Density Estimation
(RFDE): a forest of k-d trees with randomised split dimensions whose nodes
store the cardinality of the region they cover.

This subpackage provides:

* :class:`~repro.density.estimator.ExactDensity` — exact counting against a
  numpy array, the "no learning" reference used in ablations and tests,
* :class:`~repro.density.kdtree.KDTreeDensity` — one randomised
  cardinality-annotated k-d tree,
* :class:`~repro.density.rfde.RandomForestDensity` — the RFDE forest used
  by WaZI and (in weighted form) by the CUR baseline,
* :class:`~repro.density.grid.GridHistogramDensity` — an equi-width
  histogram estimator used by the Flood baseline's cost model,
* :class:`~repro.density.weighted.WeightedPointSet` — per-point query
  weights used by the CUR baseline.
"""

from repro.density.estimator import DensityEstimator, ExactDensity
from repro.density.kdtree import KDTreeDensity
from repro.density.rfde import RandomForestDensity
from repro.density.grid import GridHistogramDensity
from repro.density.weighted import WeightedPointSet

__all__ = [
    "DensityEstimator",
    "ExactDensity",
    "KDTreeDensity",
    "RandomForestDensity",
    "GridHistogramDensity",
    "WeightedPointSet",
]
