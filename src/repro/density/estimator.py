"""Density estimator protocol and the exact-counting reference implementation.

Every estimator answers range-count queries: *approximately how many of the
indexed points fall inside a rectangle?*  WaZI's construction only ever
consumes estimators through this small interface, which keeps the learned
component swappable (exact counting, single k-d tree, RFDE forest, grid
histogram) — exactly the knob the ablation benchmarks turn.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.geometry import Point, Rect


class DensityEstimator(abc.ABC):
    """Interface for range-count estimation over a fixed set of points."""

    @property
    @abc.abstractmethod
    def total(self) -> float:
        """Total (possibly weighted) mass of the indexed points."""

    @abc.abstractmethod
    def estimate(self, query: Rect) -> float:
        """Estimated number of points (or total weight) inside ``query``."""

    def selectivity(self, query: Rect) -> float:
        """Estimated fraction of the total mass inside ``query``."""
        if self.total == 0:
            return 0.0
        return self.estimate(query) / self.total


def points_to_array(points: Sequence[Point]) -> np.ndarray:
    """Convert a sequence of points to an ``(n, 2)`` float64 numpy array."""
    if len(points) == 0:
        return np.empty((0, 2), dtype=np.float64)
    if isinstance(points, np.ndarray):
        array = np.asarray(points, dtype=np.float64)
        if array.ndim != 2 or array.shape[1] != 2:
            raise ValueError(f"Expected an (n, 2) array, got shape {array.shape}")
        return array
    return np.array([(p.x, p.y) for p in points], dtype=np.float64)


class ExactDensity(DensityEstimator):
    """Exact range counting over a numpy array of points.

    This is the "no learning" reference: construction is a single array
    copy, estimation is a vectorised containment test.  It is used in tests
    as the ground truth against which approximate estimators are judged and
    as the exact-counting arm of the density-estimator ablation.
    """

    def __init__(self, points: Sequence[Point]) -> None:
        self._array = points_to_array(points)

    @property
    def total(self) -> float:
        return float(self._array.shape[0])

    def estimate(self, query: Rect) -> float:
        if self._array.shape[0] == 0:
            return 0.0
        xs = self._array[:, 0]
        ys = self._array[:, 1]
        mask = (
            (xs >= query.xmin)
            & (xs <= query.xmax)
            & (ys >= query.ymin)
            & (ys <= query.ymax)
        )
        return float(np.count_nonzero(mask))
