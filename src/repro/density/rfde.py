"""Random Forest Density Estimation (RFDE).

The paper's construction (Section 4.3) evaluates its retrieval-cost
objective against *approximate* data and query-corner distributions so that
trying a few hundred candidate split points per node stays cheap.  The
approximation is an RFDE model: an ensemble of cardinality-annotated k-d
trees with randomised split dimensions, whose range-count estimates are
averaged.  Averaging over differently-randomised trees smooths out the
quantisation error any single tree makes near its leaf boundaries.

The same class doubles as the *weighted* estimator required by the CUR
baseline by passing per-point weights.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry import Point, Rect
from repro.density.estimator import DensityEstimator, points_to_array
from repro.density.kdtree import KDTreeDensity


class RandomForestDensity(DensityEstimator):
    """An ensemble of randomised k-d trees whose estimates are averaged.

    Parameters
    ----------
    points:
        Points whose density is modelled.
    num_trees:
        Ensemble size.  The paper does not report an exact value; 4 trees
        keeps construction cheap while noticeably smoothing single-tree
        error, and the value is exposed for the ablation benchmarks.
    leaf_size:
        Leaf capacity of each tree.
    sample_fraction:
        Fraction of the points given to each tree (sampling without
        replacement).  ``1.0`` trains every tree on the full dataset.
    seed:
        Seed of the generator that randomises per-tree subsamples and split
        dimensions.  Construction is fully deterministic given a seed.
    weights:
        Optional per-point non-negative weights.  When provided, estimates
        return total weight instead of point counts (used by CUR, where a
        point's weight is the number of workload queries fetching it).
    """

    def __init__(
        self,
        points: Sequence[Point],
        num_trees: int = 4,
        leaf_size: int = 64,
        sample_fraction: float = 1.0,
        seed: Optional[int] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if num_trees <= 0:
            raise ValueError(f"num_trees must be positive, got {num_trees}")
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
        array = points_to_array(points)
        self._rng = np.random.default_rng(seed)
        self._num_trees = num_trees
        self._weights = None
        if weights is not None:
            self._weights = np.asarray(weights, dtype=np.float64)
            if self._weights.shape[0] != array.shape[0]:
                raise ValueError(
                    f"weights length {self._weights.shape[0]} does not match "
                    f"number of points {array.shape[0]}"
                )
            if (self._weights < 0).any():
                raise ValueError("weights must be non-negative")
        self._total = (
            float(self._weights.sum()) if self._weights is not None else float(array.shape[0])
        )
        self._trees = []
        self._tree_scales = []
        n = array.shape[0]
        sample_size = max(1, int(round(sample_fraction * n))) if n > 0 else 0
        for _ in range(num_trees):
            if n == 0:
                break
            if self._weights is not None:
                # Weighted RFDE: replicate the weighting by sampling points
                # proportionally to weight, so region counts approximate the
                # weighted mass.  Sampling with replacement keeps the scheme
                # well-defined for highly skewed weights.
                probabilities = self._normalised_weights()
                indices = self._rng.choice(n, size=sample_size, replace=True, p=probabilities)
                scale = self._total / sample_size
            elif sample_size < n:
                indices = self._rng.choice(n, size=sample_size, replace=False)
                scale = n / sample_size
            else:
                indices = np.arange(n)
                scale = 1.0
            subsample = array[indices]
            tree = KDTreeDensity(subsample, leaf_size=leaf_size, rng=self._rng)
            self._trees.append(tree)
            self._tree_scales.append(scale)

    def _normalised_weights(self) -> np.ndarray:
        total = self._weights.sum()
        if total <= 0:
            return np.full(self._weights.shape[0], 1.0 / self._weights.shape[0])
        return self._weights / total

    # -- DensityEstimator interface -------------------------------------------
    @property
    def total(self) -> float:
        return self._total

    @property
    def num_trees(self) -> int:
        return len(self._trees)

    def estimate(self, query: Rect) -> float:
        if not self._trees:
            return 0.0
        estimates = [
            tree.estimate(query) * scale
            for tree, scale in zip(self._trees, self._tree_scales)
        ]
        return float(np.mean(estimates))

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the whole forest."""
        return sum(tree.size_bytes() for tree in self._trees)
