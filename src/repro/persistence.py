"""Saving and loading indexed datasets and workloads.

A production deployment of WaZI builds the index offline (the paper notes
it is "suited for workflows where index construction can be performed
offline ... and deployed for an extended amount of time") and ships it to
query servers.  This module provides a small, dependency-free persistence
format for that workflow:

* datasets and workloads are stored as compact JSON (portable, diffable,
  easy to inspect),
* built indexes are stored with :mod:`pickle` (they are plain Python object
  graphs; rebuilding from the stored dataset + workload is always possible
  as a fallback and is the recommended path across library versions).
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import List, Sequence, Union

from repro.geometry import Point, Rect

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_points(points: Sequence[Point], path: PathLike) -> None:
    """Write a dataset to a JSON file."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "points",
        "points": [[p.x, p.y] for p in points],
    }
    Path(path).write_text(json.dumps(payload))


def load_points(path: PathLike) -> List[Point]:
    """Read a dataset written by :func:`save_points`."""
    payload = _read_payload(path, expected_kind="points")
    return [Point(float(x), float(y)) for x, y in payload["points"]]


def save_queries(queries: Sequence[Rect], path: PathLike) -> None:
    """Write a range-query workload to a JSON file."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "kind": "queries",
        "queries": [[q.xmin, q.ymin, q.xmax, q.ymax] for q in queries],
    }
    Path(path).write_text(json.dumps(payload))


def load_queries(path: PathLike) -> List[Rect]:
    """Read a workload written by :func:`save_queries`."""
    payload = _read_payload(path, expected_kind="queries")
    return [Rect(*map(float, values)) for values in payload["queries"]]


def save_index(index, path: PathLike) -> None:
    """Pickle a built index to disk.

    Note: the pickle is tied to the library version that produced it; for
    long-lived deployments prefer persisting the dataset and workload and
    rebuilding, which is deterministic given the construction seed.
    """
    with open(path, "wb") as handle:
        pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_index(path: PathLike):
    """Load an index pickled by :func:`save_index`."""
    with open(path, "rb") as handle:
        return pickle.load(handle)


def _read_payload(path: PathLike, expected_kind: str) -> dict:
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ValueError(f"{path} is not a repro persistence file")
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path} has format version {payload.get('format_version')}, "
            f"expected {_FORMAT_VERSION}"
        )
    if payload["kind"] != expected_kind:
        raise ValueError(f"{path} stores {payload['kind']!r}, expected {expected_kind!r}")
    return payload
