# repro-lint: hot-path
# repro-lint: kernel-parity
"""Pure-NumPy reference kernels for the compiled hot-path tier.

These are the *semantics* of the kernel tier: every other backend (today
the Numba one, tomorrow anything else) must return byte-identical values
— same matches, same ordering, same dtypes — and the differential
harness in ``tests/test_kernel_parity.py`` plus the ``kernel-parity``
runtime sanitizer hold them to it.  The implementations mirror the
vectorized expressions that previously lived inline in
``zindex/base.py`` operation for operation (same ufuncs, same ``out=``
buffers, same in-place shifts), so routing the index through this module
is a refactor, not a behaviour change.

Every function takes the *full* flat coordinate columns plus a
``[lo, hi)`` row span — the contiguous slice the projection phase
selected — and returns **absolute** row indices so callers never adjust
offsets.  ``mask`` / ``scratch`` are optional reusable boolean buffers
(at least ``hi - lo`` long) that the window chain writes into instead of
allocating four fresh temporaries per query; backends that do not need
them ignore them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "BACKEND",
    "range_count",
    "range_select",
    "batch_range_count",
    "batch_range_select",
    "knn_candidates",
    "radius_select",
]

#: Name reported by :func:`repro.kernels.backend_name` when active.
BACKEND = "numpy"


def _window_mask(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    lo: int,
    hi: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
    mask: Optional[np.ndarray],
    scratch: Optional[np.ndarray],
) -> np.ndarray:
    """Containment mask of flat rows ``[lo, hi)`` against the window.

    Writes into ``mask`` / ``scratch`` when they are large enough; the
    returned view is only valid until the next call that reuses them.
    """
    xs = flat_x[lo:hi]
    ys = flat_y[lo:hi]
    length = hi - lo
    if mask is None or scratch is None or mask.shape[0] < length:
        mask = np.empty(length, dtype=bool)
        scratch = np.empty(length, dtype=bool)
    else:
        mask = mask[:length]
        scratch = scratch[:length]
    np.greater_equal(xs, xmin, out=mask)
    np.logical_and(mask, np.less_equal(xs, xmax, out=scratch), out=mask)
    np.logical_and(mask, np.greater_equal(ys, ymin, out=scratch), out=mask)
    np.logical_and(mask, np.less_equal(ys, ymax, out=scratch), out=mask)
    return mask


def range_count(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    lo: int,
    hi: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> int:
    """Number of rows of ``[lo, hi)`` inside the window (fused mask+count)."""
    window = _window_mask(flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax, mask, scratch)
    return int(np.count_nonzero(window))


def range_select(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    lo: int,
    hi: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Ascending absolute row indices of the window matches (``int64``)."""
    window = _window_mask(flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax, mask, scratch)
    sel = np.flatnonzero(window)
    sel += lo  # flatnonzero allocates a fresh array: safe to shift in place
    return sel.astype(np.int64, copy=False)


def batch_range_count(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    los: np.ndarray,
    his: np.ndarray,
    bounds: np.ndarray,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused counts for a batch of windows: ``bounds[i]`` is
    ``(xmin, ymin, xmax, ymax)`` evaluated over rows ``[los[i], his[i])``.
    Returns one ``int64`` count per window.
    """
    num = len(los)
    counts = np.empty(num, dtype=np.int64)
    for i in range(num):
        xmin, ymin, xmax, ymax = bounds[i]
        counts[i] = range_count(
            flat_x, flat_y, int(los[i]), int(his[i]),
            xmin, ymin, xmax, ymax, mask, scratch,
        )
    return counts


def batch_range_select(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    los: np.ndarray,
    his: np.ndarray,
    bounds: np.ndarray,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused selections for a batch of windows.

    Returns ``(sel, offsets)`` where window ``i``'s ascending absolute
    row indices are ``sel[offsets[i]:offsets[i + 1]]``.
    """
    num = len(los)
    selections = []
    offsets = np.empty(num + 1, dtype=np.int64)
    offsets[0] = 0
    for i in range(num):
        xmin, ymin, xmax, ymax = bounds[i]
        part = range_select(
            flat_x, flat_y, int(los[i]), int(his[i]),
            xmin, ymin, xmax, ymax, mask, scratch,
        )
        selections.append(part)
        offsets[i + 1] = offsets[i] + part.size
    if selections:
        sel = np.concatenate(selections)
    else:
        sel = np.empty(0, dtype=np.int64)
    return sel, offsets


def knn_candidates(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    lo: int,
    hi: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
    cx: float,
    cy: float,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One expanding-window kNN probe: window matches plus their distances.

    Returns ``(sel, d2)``: ascending absolute row indices of the window
    matches and their squared distances to ``(cx, cy)`` in the columns'
    dtype.  The neighbour ordering itself (a stable argsort of ``d2``)
    stays with the caller so every backend shares one tie-break.
    """
    sel = range_select(flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax, mask, scratch)
    candidate_x = flat_x[sel]
    candidate_y = flat_y[sel]
    dx = candidate_x - cx
    dy = candidate_y - cy
    d2 = dx * dx
    d2 += dy * dy
    return sel, d2


def radius_select(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    lo: int,
    hi: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
    cx: float,
    cy: float,
    radius_squared: float,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> Tuple[int, np.ndarray]:
    """One within-radius query: window filter and distance refine, fused.

    Returns ``(window_matches, sel)`` — how many rows passed the window
    filter (the ``points_returned`` accounting of the filter-and-refine
    decomposition) and the ascending absolute row indices that also
    passed the exact squared-distance test.
    """
    sel = range_select(flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax, mask, scratch)
    window_matches = int(sel.size)
    if not window_matches:
        return 0, sel
    candidate_x = flat_x[sel]
    candidate_y = flat_y[sel]
    dx = candidate_x - cx
    dy = candidate_y - cy
    d2 = dx * dx
    d2 += dy * dy
    keep = d2 <= radius_squared
    return window_matches, sel[keep]
