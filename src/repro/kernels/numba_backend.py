# repro-lint: hot-path
# repro-lint: kernel-parity
"""Numba ``@njit`` kernels: the compiled tier of the hot path.

Each kernel is a single fused loop over the projected row span — the
window test, the count/gather and (for kNN / radius) the squared
distance all happen in one pass over the columns, with no boolean
temporaries and no Python dispatch between the passes.  Compilation is
cached on disk (``cache=True``) so the first process pays the JIT cost
once.

Equivalence contract: every function returns byte-identical values to
:mod:`repro.kernels.fallback` — the comparisons are the same IEEE
double-precision predicates, ``dx*dx + dy*dy`` is the same pair of
double multiplies and one add in both tiers (``fastmath`` stays OFF —
the ``kernel-parity`` lint rule forbids it), and selections are emitted
in ascending row order exactly like ``np.flatnonzero``.  Inputs whose
coordinate columns are not ``float64`` (the opt-in float32 storage
mode) are delegated to the fallback wholesale, so the compiled tier
never has to reason about mixed-precision promotion rules.

This module imports ``numba`` at module level and must only be imported
by :mod:`repro.kernels` after probing that the dependency exists.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numba import njit

from repro.kernels import fallback

__all__ = [
    "BACKEND",
    "range_count",
    "range_select",
    "batch_range_count",
    "batch_range_select",
    "knn_candidates",
    "radius_select",
]

#: Name reported by :func:`repro.kernels.backend_name` when active.
BACKEND = "numba"


def _compiled_dtype(flat_x: np.ndarray, flat_y: np.ndarray) -> bool:
    """Whether the compiled tier serves these columns (float64 only)."""
    return flat_x.dtype == np.float64 and flat_y.dtype == np.float64


@njit(cache=True)
def _range_count(flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax):
    count = 0
    for i in range(lo, hi):
        x = flat_x[i]
        y = flat_y[i]
        if x >= xmin and x <= xmax and y >= ymin and y <= ymax:
            count += 1
    return count


@njit(cache=True)
def _range_select(flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax):
    count = 0
    for i in range(lo, hi):
        x = flat_x[i]
        y = flat_y[i]
        if x >= xmin and x <= xmax and y >= ymin and y <= ymax:
            count += 1
    sel = np.empty(count, dtype=np.int64)
    out = 0
    for i in range(lo, hi):
        x = flat_x[i]
        y = flat_y[i]
        if x >= xmin and x <= xmax and y >= ymin and y <= ymax:
            sel[out] = i
            out += 1
    return sel


@njit(cache=True)
def _batch_range_count(flat_x, flat_y, los, his, bounds):
    num = los.shape[0]
    counts = np.empty(num, dtype=np.int64)
    for q in range(num):
        xmin = bounds[q, 0]
        ymin = bounds[q, 1]
        xmax = bounds[q, 2]
        ymax = bounds[q, 3]
        count = 0
        for i in range(los[q], his[q]):
            x = flat_x[i]
            y = flat_y[i]
            if x >= xmin and x <= xmax and y >= ymin and y <= ymax:
                count += 1
        counts[q] = count
    return counts


@njit(cache=True)
def _batch_range_select(flat_x, flat_y, los, his, bounds):
    num = los.shape[0]
    offsets = np.empty(num + 1, dtype=np.int64)
    offsets[0] = 0
    for q in range(num):
        xmin = bounds[q, 0]
        ymin = bounds[q, 1]
        xmax = bounds[q, 2]
        ymax = bounds[q, 3]
        count = 0
        for i in range(los[q], his[q]):
            x = flat_x[i]
            y = flat_y[i]
            if x >= xmin and x <= xmax and y >= ymin and y <= ymax:
                count += 1
        offsets[q + 1] = offsets[q] + count
    sel = np.empty(offsets[num], dtype=np.int64)
    for q in range(num):
        xmin = bounds[q, 0]
        ymin = bounds[q, 1]
        xmax = bounds[q, 2]
        ymax = bounds[q, 3]
        out = offsets[q]
        for i in range(los[q], his[q]):
            x = flat_x[i]
            y = flat_y[i]
            if x >= xmin and x <= xmax and y >= ymin and y <= ymax:
                sel[out] = i
                out += 1
    return sel, offsets


@njit(cache=True)
def _knn_candidates(flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax, cx, cy):
    count = 0
    for i in range(lo, hi):
        x = flat_x[i]
        y = flat_y[i]
        if x >= xmin and x <= xmax and y >= ymin and y <= ymax:
            count += 1
    sel = np.empty(count, dtype=np.int64)
    d2 = np.empty(count, dtype=np.float64)
    out = 0
    for i in range(lo, hi):
        x = flat_x[i]
        y = flat_y[i]
        if x >= xmin and x <= xmax and y >= ymin and y <= ymax:
            dx = x - cx
            dy = y - cy
            sel[out] = i
            d2[out] = dx * dx + dy * dy
            out += 1
    return sel, d2


@njit(cache=True)
def _radius_select(flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax, cx, cy, r2):
    window_matches = 0
    kept = 0
    for i in range(lo, hi):
        x = flat_x[i]
        y = flat_y[i]
        if x >= xmin and x <= xmax and y >= ymin and y <= ymax:
            window_matches += 1
            dx = x - cx
            dy = y - cy
            if dx * dx + dy * dy <= r2:
                kept += 1
    sel = np.empty(kept, dtype=np.int64)
    out = 0
    for i in range(lo, hi):
        x = flat_x[i]
        y = flat_y[i]
        if x >= xmin and x <= xmax and y >= ymin and y <= ymax:
            dx = x - cx
            dy = y - cy
            if dx * dx + dy * dy <= r2:
                sel[out] = i
                out += 1
    return window_matches, sel


def range_count(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    lo: int,
    hi: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> int:
    if not _compiled_dtype(flat_x, flat_y):
        return fallback.range_count(
            flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax, mask, scratch
        )
    return int(
        _range_count(
            flat_x, flat_y, int(lo), int(hi),
            float(xmin), float(ymin), float(xmax), float(ymax),
        )
    )


def range_select(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    lo: int,
    hi: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    if not _compiled_dtype(flat_x, flat_y):
        return fallback.range_select(
            flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax, mask, scratch
        )
    return _range_select(
        flat_x, flat_y, int(lo), int(hi),
        float(xmin), float(ymin), float(xmax), float(ymax),
    )


def batch_range_count(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    los: np.ndarray,
    his: np.ndarray,
    bounds: np.ndarray,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    if not _compiled_dtype(flat_x, flat_y):
        return fallback.batch_range_count(
            flat_x, flat_y, los, his, bounds, mask, scratch
        )
    return _batch_range_count(
        flat_x,
        flat_y,
        np.ascontiguousarray(los, dtype=np.int64),
        np.ascontiguousarray(his, dtype=np.int64),
        np.ascontiguousarray(bounds, dtype=np.float64),
    )


def batch_range_select(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    los: np.ndarray,
    his: np.ndarray,
    bounds: np.ndarray,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    if not _compiled_dtype(flat_x, flat_y):
        return fallback.batch_range_select(
            flat_x, flat_y, los, his, bounds, mask, scratch
        )
    return _batch_range_select(
        flat_x,
        flat_y,
        np.ascontiguousarray(los, dtype=np.int64),
        np.ascontiguousarray(his, dtype=np.int64),
        np.ascontiguousarray(bounds, dtype=np.float64),
    )


def knn_candidates(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    lo: int,
    hi: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
    cx: float,
    cy: float,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    if not _compiled_dtype(flat_x, flat_y):
        return fallback.knn_candidates(
            flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax, cx, cy, mask, scratch
        )
    return _knn_candidates(
        flat_x, flat_y, int(lo), int(hi),
        float(xmin), float(ymin), float(xmax), float(ymax),
        float(cx), float(cy),
    )


def radius_select(
    flat_x: np.ndarray,
    flat_y: np.ndarray,
    lo: int,
    hi: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
    cx: float,
    cy: float,
    radius_squared: float,
    mask: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> Tuple[int, np.ndarray]:
    if not _compiled_dtype(flat_x, flat_y):
        return fallback.radius_select(
            flat_x, flat_y, lo, hi, xmin, ymin, xmax, ymax,
            cx, cy, radius_squared, mask, scratch,
        )
    window_matches, sel = _radius_select(
        flat_x, flat_y, int(lo), int(hi),
        float(xmin), float(ymin), float(xmax), float(ymax),
        float(cx), float(cy), float(radius_squared),
    )
    return int(window_matches), sel
