"""Kernel-tier selection: compiled hot-path kernels with a NumPy reference.

The spatial indexes answer every flat-column query through a *kernel
backend* — a namespace providing the six fused kernels (``range_count``,
``range_select``, ``batch_range_count``, ``batch_range_select``,
``knn_candidates``, ``radius_select``).  Two backends exist:

``numpy``
    :mod:`repro.kernels.fallback` — the pure-NumPy reference.  Always
    available; defines the byte-identical semantics every other backend
    must reproduce.

``numba``
    :mod:`repro.kernels.numba_backend` — ``@njit``-compiled single-pass
    loops.  Only importable when the optional ``numba`` dependency is
    installed; never required.

Selection happens once at import from the ``REPRO_KERNELS`` environment
variable: ``numpy`` forces the reference, ``numba`` requests the
compiled tier (gracefully resolving to the reference when Numba is
absent — the override selects a *tier*, not a hard dependency), and
unset/``auto`` picks the compiled tier exactly when Numba is
importable.  Any other value raises at import: a typo'd override
silently running the wrong tier is worse than a crash.

Tests and the runtime sanitizer can swap backends after import with
:func:`set_kernels` / :func:`use`; the indexes resolve the active
backend per query via :func:`get_kernels`, so a swap takes effect
immediately without rebuilding anything.
"""

from __future__ import annotations

import importlib.util
import os
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.kernels import fallback

__all__ = [
    "KERNEL_NAMES",
    "backend_name",
    "get_kernels",
    "numba_available",
    "reference_kernels",
    "requested_backend",
    "resolve_backend",
    "set_kernels",
    "use",
]

#: The kernel functions every backend must provide (the parity surface).
KERNEL_NAMES = (
    "range_count",
    "range_select",
    "batch_range_count",
    "batch_range_select",
    "knn_candidates",
    "radius_select",
)

#: Environment variable selecting the tier at import.
ENV_VAR = "REPRO_KERNELS"


def numba_available() -> bool:
    """Whether the optional ``numba`` dependency is importable (cheap probe)."""
    return importlib.util.find_spec("numba") is not None


def resolve_backend(name: Optional[str]) -> Tuple[object, str]:
    """Resolve a requested tier name to ``(backend, resolved_name)``.

    ``None``/``""``/``"auto"`` pick ``numba`` when available, else
    ``numpy``; ``"numba"`` gracefully degrades to ``numpy`` when the
    dependency is absent; anything else raises :class:`ValueError`.
    """
    if name is not None:
        name = name.strip().lower()
    if name in (None, "", "auto"):
        name = "numba" if numba_available() else "numpy"
    if name == "numpy":
        return fallback, "numpy"
    if name == "numba":
        if numba_available():
            from repro.kernels import numba_backend

            return numba_backend, "numba"
        return fallback, "numpy"
    raise ValueError(
        f"{ENV_VAR} must be 'numba', 'numpy' or 'auto', got {name!r}"
    )


#: The tier the environment asked for (before availability resolution).
_REQUESTED = os.environ.get(ENV_VAR)

_active, _active_name = resolve_backend(_REQUESTED)


def requested_backend() -> Optional[str]:
    """The raw ``REPRO_KERNELS`` value seen at import (``None`` if unset)."""
    return _REQUESTED


def get_kernels() -> object:
    """The active kernel backend (resolved per call — swaps apply instantly)."""
    return _active


def backend_name() -> str:
    """Resolved name of the active backend: ``"numpy"`` or ``"numba"``.

    A wrapped backend (e.g. the sanitizer's parity checker) reports the
    name of the backend it wraps via its own ``BACKEND`` attribute.
    """
    return getattr(_active, "BACKEND", _active_name)


def reference_kernels() -> object:
    """The pure-NumPy reference backend (the parity baseline)."""
    return fallback


def set_kernels(backend: object) -> object:
    """Install ``backend`` as the active kernel namespace; returns the old one.

    The sanitizer uses this to interpose its parity checker; tests use it
    to inject corrupt backends.  ``backend`` must provide every function
    in :data:`KERNEL_NAMES`.
    """
    global _active
    for kernel in KERNEL_NAMES:
        if not callable(getattr(backend, kernel, None)):
            raise TypeError(f"kernel backend {backend!r} lacks {kernel}()")
    previous = _active
    _active = backend
    return previous


@contextmanager
def use(name: str) -> Iterator[object]:
    """Temporarily select a tier by name (``"numpy"``/``"numba"``/``"auto"``).

    Yields the resolved backend; restores the previously active backend
    on exit.  Used by the differential harness to drive both tiers in
    one process.
    """
    backend, _ = resolve_backend(name)
    previous = set_kernels(backend)
    try:
        yield backend
    finally:
        set_kernels(previous)
