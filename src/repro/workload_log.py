"""The observe stage: a columnar, append-only log of executed query plans.

An adaptive engine needs to know what it actually serves.  The
:class:`WorkloadLog` is the cheapest possible answer: every executed plan
appends one row into preallocated, geometrically grown NumPy columns —

* range queries → an ``(n, 4)`` rectangle table plus an int64 result-count
  column (``-1`` when the execution path did not compute a count),
* kNN queries → probe ``x``/``y`` columns plus the ``k`` column,
* radius queries → probe ``x``/``y`` columns plus the radius column.

A scalar append is two or three array writes and an integer bump; a batch
append is one vectorised block copy.  That keeps recording cheap enough to
leave on in production (the adapt benchmark asserts < 10% overhead on the
batched range path at 100k points), which is what turns the paper's
build-time "anticipated workload" into a runtime *observed* one.

:meth:`WorkloadLog.snapshot` freezes the current contents into a
first-class :class:`~repro.workloads.Workload`, the object the advise and
adapt stages (and the persistence layer) consume.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.geometry import Point, Rect
from repro.workloads.workload import Workload

__all__ = ["WorkloadLog"]

#: Initial number of preallocated rows per kind.
_INITIAL_CAPACITY = 256


def _grown(array: np.ndarray, used: int, needed: int) -> np.ndarray:
    """Return ``array`` with capacity for ``used + needed`` rows (amortised)."""
    capacity = array.shape[0]
    required = used + needed
    if required <= capacity:
        return array
    new_capacity = max(required, capacity * 2, _INITIAL_CAPACITY)
    shape = (new_capacity,) + array.shape[1:]
    grown = np.empty(shape, dtype=array.dtype)
    grown[:used] = array[:used]
    return grown


class WorkloadLog:
    """Columnar append-only log of observed range / kNN / radius queries."""

    __slots__ = (
        "_ranges", "_range_counts", "_num_ranges",
        "_knn", "_num_knn",
        "_radius", "_num_radius",
    )

    def __init__(self) -> None:
        self._ranges = np.empty((_INITIAL_CAPACITY, 4), dtype=np.float64)
        self._range_counts = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._num_ranges = 0
        # kNN rows are [x, y, k]; radius rows are [x, y, radius].
        self._knn = np.empty((_INITIAL_CAPACITY, 3), dtype=np.float64)
        self._num_knn = 0
        self._radius = np.empty((_INITIAL_CAPACITY, 3), dtype=np.float64)
        self._num_radius = 0

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def record_range(self, rect: Rect, count: int = -1) -> None:
        """Append one observed range query (``count`` = result size, -1 unknown)."""
        n = self._num_ranges
        self._ranges = _grown(self._ranges, n, 1)
        self._range_counts = _grown(self._range_counts, n, 1)
        row = self._ranges[n]
        row[0] = rect.xmin
        row[1] = rect.ymin
        row[2] = rect.xmax
        row[3] = rect.ymax
        self._range_counts[n] = count
        self._num_ranges = n + 1

    def record_ranges(
        self,
        rects: Union[Sequence[Rect], np.ndarray],
        counts: Optional[Sequence[int]] = None,
    ) -> None:
        """Append a batch of observed range queries in one block copy."""
        if isinstance(rects, np.ndarray):
            block = np.asarray(rects, dtype=np.float64).reshape(-1, 4)
        else:
            block = np.empty((len(rects), 4), dtype=np.float64)
            for i, rect in enumerate(rects):
                row = block[i]
                row[0] = rect.xmin
                row[1] = rect.ymin
                row[2] = rect.xmax
                row[3] = rect.ymax
        num = block.shape[0]
        if num == 0:
            return
        n = self._num_ranges
        self._ranges = _grown(self._ranges, n, num)
        self._range_counts = _grown(self._range_counts, n, num)
        self._ranges[n:n + num] = block
        if counts is None:
            self._range_counts[n:n + num] = -1
        else:
            self._range_counts[n:n + num] = np.asarray(counts, dtype=np.int64)
        self._num_ranges = n + num

    def record_knn(self, center: Point, k: int) -> None:
        """Append one observed kNN probe."""
        n = self._num_knn
        self._knn = _grown(self._knn, n, 1)
        row = self._knn[n]
        row[0] = center.x
        row[1] = center.y
        row[2] = k
        self._num_knn = n + 1

    def record_knns(self, centers: Sequence[Point], k: int) -> None:
        """Append a batch of observed kNN probes sharing one ``k``."""
        num = len(centers)
        if num == 0:
            return
        n = self._num_knn
        self._knn = _grown(self._knn, n, num)
        block = self._knn[n:n + num]
        for i, center in enumerate(centers):
            row = block[i]
            row[0] = center.x
            row[1] = center.y
        block[:, 2] = k
        self._num_knn = n + num

    def record_radius(self, center: Point, radius: float) -> None:
        """Append one observed radius probe."""
        n = self._num_radius
        self._radius = _grown(self._radius, n, 1)
        row = self._radius[n]
        row[0] = center.x
        row[1] = center.y
        row[2] = radius
        self._num_radius = n + 1

    def record_radii(self, centers: Sequence[Point], radius: float) -> None:
        """Append a batch of observed radius probes sharing one radius."""
        num = len(centers)
        if num == 0:
            return
        n = self._num_radius
        self._radius = _grown(self._radius, n, num)
        block = self._radius[n:n + num]
        for i, center in enumerate(centers):
            row = block[i]
            row[0] = center.x
            row[1] = center.y
        block[:, 2] = radius
        self._num_radius = n + num

    def extend(self, workload: Workload) -> None:
        """Append every query of a :class:`Workload` (restoring history)."""
        if workload.num_ranges:
            self.record_ranges(workload.ranges)
        if workload.num_knn:
            n = self._num_knn
            num = workload.num_knn
            self._knn = _grown(self._knn, n, num)
            self._knn[n:n + num, :2] = workload.knn_probes
            self._knn[n:n + num, 2] = workload.knn_k
            self._num_knn = n + num
        if workload.num_radius:
            n = self._num_radius
            num = workload.num_radius
            self._radius = _grown(self._radius, n, num)
            self._radius[n:n + num, :2] = workload.radius_probes
            self._radius[n:n + num, 2] = workload.radius_radii
            self._num_radius = n + num

    @classmethod
    def from_workload(cls, workload: Workload) -> "WorkloadLog":
        """A log pre-seeded with a workload (e.g. restored history)."""
        log = cls()
        log.extend(workload)
        return log

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_ranges(self) -> int:
        return self._num_ranges

    @property
    def num_knn(self) -> int:
        return self._num_knn

    @property
    def num_radius(self) -> int:
        return self._num_radius

    def __len__(self) -> int:
        return self._num_ranges + self._num_knn + self._num_radius

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def range_rects(self) -> np.ndarray:
        """Read-only view of the recorded ``(n, 4)`` rectangle rows.

        The view aliases the log's buffer and is invalidated by the next
        append that grows it; snapshot() for a stable copy.
        """
        view = self._ranges[:self._num_ranges]
        view.setflags(write=False)
        return view

    @property
    def range_counts(self) -> np.ndarray:
        """Read-only view of the recorded result counts (-1 = unknown)."""
        view = self._range_counts[:self._num_ranges]
        view.setflags(write=False)
        return view

    @property
    def knn_probes(self) -> np.ndarray:
        """Read-only view of the recorded ``(n, 3)`` knn rows ``[x, y, k]``.

        Like :attr:`range_rects`, the view aliases the live buffer; take a
        copy (or :meth:`snapshot`) before holding on to it.
        """
        view = self._knn[:self._num_knn]
        view.setflags(write=False)
        return view

    @property
    def radius_probes(self) -> np.ndarray:
        """Read-only view of the ``(n, 3)`` radius rows ``[x, y, radius]``."""
        view = self._radius[:self._num_radius]
        view.setflags(write=False)
        return view

    def nbytes(self) -> int:
        """Bytes held by the log's buffers (capacity, not just used rows)."""
        return (
            self._ranges.nbytes + self._range_counts.nbytes
            + self._knn.nbytes + self._radius.nbytes
        )

    def clear(self) -> None:
        """Drop every recorded query (buffers are kept for reuse)."""
        self._num_ranges = 0
        self._num_knn = 0
        self._num_radius = 0

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def snapshot(self, **metadata) -> Workload:
        """Freeze the current contents into an immutable :class:`Workload`.

        Extra keyword arguments become the workload's metadata fields
        (``region``, ``description``, ...).  Result counts are summarised
        into ``extra['observed_range_counts_known']`` /
        ``extra['observed_range_hits']`` rather than carried as a column:
        the workload object describes *queries*, not one execution's
        results.

        The snapshot owns private **copies** of the recorded columns, never
        views of the log's growth buffers: appends recorded after the call
        (which write in place, and on overflow reallocate) can never reach
        a previously captured workload or change its fingerprint.  The
        copies are made here rather than delegated to the ``Workload``
        constructor's coercion so the guarantee cannot silently lapse if
        that coercion ever learns to adopt arrays.
        """
        extra = dict(metadata.pop("extra", ()) or {})
        counts = self._range_counts[:self._num_ranges]
        known = counts >= 0
        extra.setdefault("observed_range_counts_known", int(np.count_nonzero(known)))
        if known.any():
            extra.setdefault("observed_range_hits", int(counts[known].sum()))
        metadata.setdefault("description", "observed workload")
        return Workload(
            extra=extra,
            ranges=self._ranges[:self._num_ranges].copy(),
            knn_probes=self._knn[:self._num_knn, :2].copy(),
            knn_k=self._knn[:self._num_knn, 2].astype(np.int64, copy=True),
            radius_probes=self._radius[:self._num_radius, :2].copy(),
            radius_radii=self._radius[:self._num_radius, 2].copy(),
            **metadata,
        )

    def __repr__(self) -> str:
        return (
            f"WorkloadLog({self._num_ranges} ranges, {self._num_knn} knn, "
            f"{self._num_radius} radius)"
        )
