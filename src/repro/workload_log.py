"""The observe stage: a columnar, append-only log of executed query plans.

An adaptive engine needs to know what it actually serves.  The
:class:`WorkloadLog` is the cheapest possible answer: every executed plan
appends one row into preallocated, geometrically grown NumPy columns —

* range queries → an ``(n, 4)`` rectangle table plus an int64 result-count
  column (``-1`` when the execution path did not compute a count),
* kNN queries → probe ``x``/``y`` columns plus the ``k`` column,
* radius queries → probe ``x``/``y`` columns plus the radius column.

A scalar append is two or three array writes and an integer bump; a batch
append is one vectorised block copy.  That keeps recording cheap enough to
leave on in production (the adapt benchmark asserts < 10% overhead on the
batched range path at 100k points), which is what turns the paper's
build-time "anticipated workload" into a runtime *observed* one.

Every recorded row is stamped with a monotonically increasing sequence
number, and the log can run in a **bounded sliding-window mode**
(``window_size=N``): only the most recent ``N`` rows per kind stay live,
older rows are evicted ring-style as new traffic arrives.  That is what
lets the online maintenance loop advise over *recent* traffic instead of
the whole history, and what bounds the log's footprint under
``record=True`` in a long-lived server.  :meth:`evict_before` drops rows
older than a sequence number explicitly (e.g. after an adapt consumed
them).

:meth:`WorkloadLog.snapshot` freezes the current (windowed) contents into
a first-class :class:`~repro.workloads.Workload`, the object the advise
and adapt stages (and the persistence layer) consume.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.geometry import Point, Rect
from repro.workloads.workload import Workload

__all__ = ["WorkloadLog"]

#: Initial number of preallocated rows per kind.
_INITIAL_CAPACITY = 256


def _compacted(arrays, lo: int, used: int, needed: int):
    """Give the parallel ``arrays`` room for ``needed`` rows past ``used``.

    Evicted rows (before ``lo``) are reclaimed first: when the append would
    overflow but the *live* rows plus the new ones fit in the existing
    capacity, the live region is shifted to the front in place; otherwise
    the buffers grow geometrically and only the live rows are copied.
    Returns ``(arrays, lo, used)`` with the (possibly moved) live region.
    """
    capacity = arrays[0].shape[0]
    if used + needed <= capacity:
        return arrays, lo, used
    live = used - lo
    if live + needed <= capacity:
        for array in arrays:
            array[:live] = array[lo:used].copy()
        return arrays, 0, live
    new_capacity = max(live + needed, capacity * 2, _INITIAL_CAPACITY)
    grown = []
    for array in arrays:
        shape = (new_capacity,) + array.shape[1:]
        fresh = np.empty(shape, dtype=array.dtype)
        fresh[:live] = array[lo:used]
        grown.append(fresh)
    return grown, 0, live


class WorkloadLog:
    """Columnar append-only log of observed range / kNN / radius queries.

    Parameters
    ----------
    window_size:
        ``None`` (the default) keeps every recorded row — the original
        unbounded behaviour.  A positive integer keeps only the most
        recent ``window_size`` rows *per kind* live; older rows are
        evicted as new ones arrive (ring semantics).  The bound can be
        changed later through the :attr:`window_size` property.
    """

    __slots__ = (
        "_ranges", "_range_counts", "_range_seq", "_num_ranges", "_range_lo",
        "_knn", "_knn_seq", "_num_knn", "_knn_lo",
        "_radius", "_radius_seq", "_num_radius", "_radius_lo",
        "_window", "_next_seq",
    )

    def __init__(self, window_size: Optional[int] = None) -> None:
        self._ranges = np.empty((_INITIAL_CAPACITY, 4), dtype=np.float64)
        self._range_counts = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._range_seq = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._num_ranges = 0
        self._range_lo = 0
        # kNN rows are [x, y, k]; radius rows are [x, y, radius].
        self._knn = np.empty((_INITIAL_CAPACITY, 3), dtype=np.float64)
        self._knn_seq = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._num_knn = 0
        self._knn_lo = 0
        self._radius = np.empty((_INITIAL_CAPACITY, 3), dtype=np.float64)
        self._radius_seq = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._num_radius = 0
        self._radius_lo = 0
        self._window = None
        self._next_seq = 0
        if window_size is not None:
            self.window_size = window_size

    # ------------------------------------------------------------------
    # sliding window
    # ------------------------------------------------------------------
    @property
    def window_size(self) -> Optional[int]:
        """The per-kind retention bound (``None`` = unbounded)."""
        return self._window

    @window_size.setter
    def window_size(self, value: Optional[int]) -> None:
        if value is not None:
            value = int(value)
            if value <= 0:
                raise ValueError(f"window_size must be positive, got {value}")
        self._window = value
        self._enforce_window()

    @property
    def next_seq(self) -> int:
        """The sequence number the next recorded row will receive."""
        return self._next_seq

    def _enforce_window(self) -> None:
        window = self._window
        if window is None:
            return
        if self._num_ranges - self._range_lo > window:
            self._range_lo = self._num_ranges - window
        if self._num_knn - self._knn_lo > window:
            self._knn_lo = self._num_knn - window
        if self._num_radius - self._radius_lo > window:
            self._radius_lo = self._num_radius - window

    def evict_before(self, seq: int) -> int:
        """Drop every recorded row with sequence number below ``seq``.

        Returns the number of rows evicted.  Used by consumers that have
        fully digested a prefix of the log (e.g. the maintenance loop
        after an adapt) — the buffers are reclaimed lazily by the next
        appends.
        """
        evicted = 0
        lo = self._range_lo + int(np.searchsorted(
            self._range_seq[self._range_lo:self._num_ranges], seq, side="left"))
        evicted += lo - self._range_lo
        self._range_lo = lo
        lo = self._knn_lo + int(np.searchsorted(
            self._knn_seq[self._knn_lo:self._num_knn], seq, side="left"))
        evicted += lo - self._knn_lo
        self._knn_lo = lo
        lo = self._radius_lo + int(np.searchsorted(
            self._radius_seq[self._radius_lo:self._num_radius], seq, side="left"))
        evicted += lo - self._radius_lo
        self._radius_lo = lo
        return evicted

    def _claim_seqs(self, num: int) -> np.ndarray:
        first = self._next_seq
        self._next_seq = first + num
        return np.arange(first, first + num, dtype=np.int64)

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def record_range(self, rect: Rect, count: int = -1) -> None:
        """Append one observed range query (``count`` = result size, -1 unknown)."""
        (self._ranges, self._range_counts, self._range_seq), self._range_lo, n = (
            _compacted(
                (self._ranges, self._range_counts, self._range_seq),
                self._range_lo, self._num_ranges, 1,
            )
        )
        row = self._ranges[n]
        row[0] = rect.xmin
        row[1] = rect.ymin
        row[2] = rect.xmax
        row[3] = rect.ymax
        self._range_counts[n] = count
        self._range_seq[n] = self._next_seq
        self._next_seq += 1
        self._num_ranges = n + 1
        self._enforce_window()

    def record_ranges(
        self,
        rects: Union[Sequence[Rect], np.ndarray],
        counts: Optional[Sequence[int]] = None,
    ) -> None:
        """Append a batch of observed range queries in one block copy."""
        if isinstance(rects, np.ndarray):
            block = np.asarray(rects, dtype=np.float64).reshape(-1, 4)
        else:
            block = np.empty((len(rects), 4), dtype=np.float64)
            for i, rect in enumerate(rects):
                row = block[i]
                row[0] = rect.xmin
                row[1] = rect.ymin
                row[2] = rect.xmax
                row[3] = rect.ymax
        num = block.shape[0]
        if num == 0:
            return
        (self._ranges, self._range_counts, self._range_seq), self._range_lo, n = (
            _compacted(
                (self._ranges, self._range_counts, self._range_seq),
                self._range_lo, self._num_ranges, num,
            )
        )
        self._ranges[n:n + num] = block
        if counts is None:
            self._range_counts[n:n + num] = -1
        else:
            self._range_counts[n:n + num] = np.asarray(counts, dtype=np.int64)
        self._range_seq[n:n + num] = self._claim_seqs(num)
        self._num_ranges = n + num
        self._enforce_window()

    def record_knn(self, center: Point, k: int) -> None:
        """Append one observed kNN probe."""
        (self._knn, self._knn_seq), self._knn_lo, n = _compacted(
            (self._knn, self._knn_seq), self._knn_lo, self._num_knn, 1
        )
        row = self._knn[n]
        row[0] = center.x
        row[1] = center.y
        row[2] = k
        self._knn_seq[n] = self._next_seq
        self._next_seq += 1
        self._num_knn = n + 1
        self._enforce_window()

    def record_knns(self, centers: Sequence[Point], k: int) -> None:
        """Append a batch of observed kNN probes sharing one ``k``."""
        num = len(centers)
        if num == 0:
            return
        (self._knn, self._knn_seq), self._knn_lo, n = _compacted(
            (self._knn, self._knn_seq), self._knn_lo, self._num_knn, num
        )
        block = self._knn[n:n + num]
        for i, center in enumerate(centers):
            row = block[i]
            row[0] = center.x
            row[1] = center.y
        block[:, 2] = k
        self._knn_seq[n:n + num] = self._claim_seqs(num)
        self._num_knn = n + num
        self._enforce_window()

    def record_radius(self, center: Point, radius: float) -> None:
        """Append one observed radius probe."""
        (self._radius, self._radius_seq), self._radius_lo, n = _compacted(
            (self._radius, self._radius_seq), self._radius_lo, self._num_radius, 1
        )
        row = self._radius[n]
        row[0] = center.x
        row[1] = center.y
        row[2] = radius
        self._radius_seq[n] = self._next_seq
        self._next_seq += 1
        self._num_radius = n + 1
        self._enforce_window()

    def record_radii(self, centers: Sequence[Point], radius: float) -> None:
        """Append a batch of observed radius probes sharing one radius."""
        num = len(centers)
        if num == 0:
            return
        (self._radius, self._radius_seq), self._radius_lo, n = _compacted(
            (self._radius, self._radius_seq), self._radius_lo, self._num_radius, num
        )
        block = self._radius[n:n + num]
        for i, center in enumerate(centers):
            row = block[i]
            row[0] = center.x
            row[1] = center.y
        block[:, 2] = radius
        self._radius_seq[n:n + num] = self._claim_seqs(num)
        self._num_radius = n + num
        self._enforce_window()

    def extend(self, workload: Workload) -> None:
        """Append every query of a :class:`Workload` (restoring history)."""
        if workload.num_ranges:
            self.record_ranges(workload.ranges)
        if workload.num_knn:
            num = workload.num_knn
            (self._knn, self._knn_seq), self._knn_lo, n = _compacted(
                (self._knn, self._knn_seq), self._knn_lo, self._num_knn, num
            )
            self._knn[n:n + num, :2] = workload.knn_probes
            self._knn[n:n + num, 2] = workload.knn_k
            self._knn_seq[n:n + num] = self._claim_seqs(num)
            self._num_knn = n + num
        if workload.num_radius:
            num = workload.num_radius
            (self._radius, self._radius_seq), self._radius_lo, n = _compacted(
                (self._radius, self._radius_seq), self._radius_lo, self._num_radius, num
            )
            self._radius[n:n + num, :2] = workload.radius_probes
            self._radius[n:n + num, 2] = workload.radius_radii
            self._radius_seq[n:n + num] = self._claim_seqs(num)
            self._num_radius = n + num
        self._enforce_window()

    @classmethod
    def from_workload(
        cls, workload: Workload, window_size: Optional[int] = None
    ) -> "WorkloadLog":
        """A log pre-seeded with a workload (e.g. restored history)."""
        log = cls(window_size=window_size)
        log.extend(workload)
        return log

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_ranges(self) -> int:
        return self._num_ranges - self._range_lo

    @property
    def num_knn(self) -> int:
        return self._num_knn - self._knn_lo

    @property
    def num_radius(self) -> int:
        return self._num_radius - self._radius_lo

    def __len__(self) -> int:
        return self.num_ranges + self.num_knn + self.num_radius

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def range_rects(self) -> np.ndarray:
        """Read-only view of the live ``(n, 4)`` rectangle rows.

        The view aliases the log's buffer and is invalidated by the next
        append that grows it; snapshot() for a stable copy.
        """
        view = self._ranges[self._range_lo:self._num_ranges]
        view.setflags(write=False)
        return view

    @property
    def range_counts(self) -> np.ndarray:
        """Read-only view of the live result counts (-1 = unknown)."""
        view = self._range_counts[self._range_lo:self._num_ranges]
        view.setflags(write=False)
        return view

    @property
    def range_seqs(self) -> np.ndarray:
        """Read-only view of the live range rows' sequence numbers."""
        view = self._range_seq[self._range_lo:self._num_ranges]
        view.setflags(write=False)
        return view

    @property
    def knn_probes(self) -> np.ndarray:
        """Read-only view of the live ``(n, 3)`` knn rows ``[x, y, k]``.

        Like :attr:`range_rects`, the view aliases the live buffer; take a
        copy (or :meth:`snapshot`) before holding on to it.
        """
        view = self._knn[self._knn_lo:self._num_knn]
        view.setflags(write=False)
        return view

    @property
    def radius_probes(self) -> np.ndarray:
        """Read-only view of the ``(n, 3)`` radius rows ``[x, y, radius]``."""
        view = self._radius[self._radius_lo:self._num_radius]
        view.setflags(write=False)
        return view

    def nbytes(self) -> int:
        """Bytes held by the log's buffers (capacity, not just used rows)."""
        return (
            self._ranges.nbytes + self._range_counts.nbytes + self._range_seq.nbytes
            + self._knn.nbytes + self._knn_seq.nbytes
            + self._radius.nbytes + self._radius_seq.nbytes
        )

    def clear(self) -> None:
        """Drop every recorded query (buffers are kept for reuse).

        Sequence numbers keep increasing across a clear so that
        :meth:`evict_before` cursors held by consumers stay meaningful.
        """
        self._num_ranges = 0
        self._range_lo = 0
        self._num_knn = 0
        self._knn_lo = 0
        self._num_radius = 0
        self._radius_lo = 0

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def snapshot(self, **metadata) -> Workload:
        """Freeze the current (windowed) contents into a :class:`Workload`.

        Extra keyword arguments become the workload's metadata fields
        (``region``, ``description``, ...).  Result counts are summarised
        into ``extra['observed_range_counts_known']`` /
        ``extra['observed_range_hits']`` rather than carried as a column:
        the workload object describes *queries*, not one execution's
        results.

        The snapshot owns private **copies** of the recorded columns, never
        views of the log's growth buffers: appends recorded after the call
        (which write in place, and on overflow reallocate) can never reach
        a previously captured workload or change its fingerprint.  The
        copies are made here rather than delegated to the ``Workload``
        constructor's coercion so the guarantee cannot silently lapse if
        that coercion ever learns to adopt arrays.
        """
        extra = dict(metadata.pop("extra", ()) or {})
        counts = self._range_counts[self._range_lo:self._num_ranges]
        known = counts >= 0
        extra.setdefault("observed_range_counts_known", int(np.count_nonzero(known)))
        if known.any():
            extra.setdefault("observed_range_hits", int(counts[known].sum()))
        metadata.setdefault("description", "observed workload")
        return Workload(
            extra=extra,
            ranges=self._ranges[self._range_lo:self._num_ranges].copy(),
            knn_probes=self._knn[self._knn_lo:self._num_knn, :2].copy(),
            knn_k=self._knn[self._knn_lo:self._num_knn, 2].astype(np.int64, copy=True),
            radius_probes=self._radius[self._radius_lo:self._num_radius, :2].copy(),
            radius_radii=self._radius[self._radius_lo:self._num_radius, 2].copy(),
            **metadata,
        )

    def __repr__(self) -> str:
        bound = "" if self._window is None else f", window={self._window}"
        return (
            f"WorkloadLog({self.num_ranges} ranges, {self.num_knn} knn, "
            f"{self.num_radius} radius{bound})"
        )
