"""The buffer manager: ownership of the flat index columns.

Historically each :class:`~repro.zindex.ZIndex` *owned* its flat coordinate
columns — the scan cache gathered per-page copies, snapshot loading copied
the stored arrays again, and every process serving the same snapshot paid
for a private set of buffers.  This module inverts that ownership: a
:class:`ColumnStore` owns the columns and indexes hold **views** into it.

Two backends implement the same surface:

* :class:`MemoryColumnStore` — plain in-memory arrays, used by live
  (mutable) indexes.  The store's arrays are gathered once from the pages
  and the pages themselves are re-pointed at slices of them, so a resident
  index keeps exactly one copy of its coordinates.
* :class:`MmapColumnStore` — ``numpy.memmap`` views opened zero-copy from a
  snapshot container (:func:`repro.persistence.container.map_container`).
  N worker processes opening the same snapshot share one set of physical
  pages through the OS page cache; each additional worker costs page
  tables, not data.

Columns are read-only through the store.  Mutation goes through the
owning structures (pages, packed leaf metadata), which *promote* — copy a
private buffer on first write — and bump the store's generation so scan
caches and lazy result views notice staleness exactly as before.
"""

# repro-lint: hot-path
from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

#: Canonical column names a Z-index snapshot stores (the serving layer's
#: vocabulary; a store may hold additional members, e.g. tree tables).
COLUMN_NAMES = (
    "flat_x",
    "flat_y",
    "leaf_starts",
    "leaf_boxes",
    "leaf_nonempty",
    "skip_below",
    "skip_above",
    "skip_left",
    "skip_right",
)


#: The coordinate-bearing columns the float32 storage mode narrows.  Row
#: offsets, skip pointers and flags stay integral/bool at full width.
COORD_COLUMNS = ("flat_x", "flat_y", "leaf_boxes")


class ColumnStore:
    """Named, read-only column arrays plus a generation counter.

    The generation counter is the cross-layer staleness protocol: consumers
    (scan caches, lazy result boxers) capture the generation when they take
    views and compare before reuse.  ``bump()`` is called by whoever
    invalidates the columns (index mutation).
    """

    backend = "abstract"

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        self._columns: Dict[str, np.ndarray] = dict(columns)
        self.generation = 0

    # -- mapping surface --------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        return self._columns[name]

    def get(self, name: str, default: Optional[np.ndarray] = None):
        return self._columns.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._columns)

    def items(self):
        return self._columns.items()

    # -- lifecycle --------------------------------------------------------
    def bump(self) -> int:
        """Advance the generation (the columns no longer reflect the index)."""
        self.generation += 1
        return self.generation

    def close(self) -> None:
        """Drop column references (and with them any mapped file handles)."""
        self._columns = {}

    # -- introspection ----------------------------------------------------
    @property
    def writable(self) -> bool:
        return False

    def is_mapped(self, name: str) -> bool:
        """Whether a column is a view into a file mapping (shared pages)."""
        column = self._columns.get(name)
        return isinstance(column, np.memmap) or (
            column is not None and isinstance(column.base, np.memmap)
        )

    @property
    def nbytes(self) -> int:
        return sum(column.nbytes for column in self._columns.values())

    @property
    def coord_dtype(self) -> np.dtype:
        """The dtype the coordinate columns are served in (float64 default)."""
        for name in COORD_COLUMNS:
            column = self._columns.get(name)
            if column is not None:
                return column.dtype
        return np.dtype(np.float64)

    def astype_coords(self, dtype) -> "MemoryColumnStore":
        """A derived in-memory store with the coordinate columns cast.

        The float32 mode for memory-bound datasets: ``flat_x`` /
        ``flat_y`` / ``leaf_boxes`` are re-materialised at the requested
        width (halving the coordinate footprint for ``float32``) while
        every offset/pointer/flag column is *shared* with this store, not
        copied.  Casting is IEEE round-to-nearest and monotone, so leaf
        boxes cast from the same values as their points stay consistent
        bounds — but window predicates then evaluate against the rounded
        coordinates: matching is **value-lossy**, not byte-identical to
        the float64 tier.  Strictly opt-in; see ``docs/KERNELS.md``.

        Already-narrow stores pass through unchanged column objects, so
        the cast is idempotent and cheap to re-apply.
        """
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise ValueError(
                f"coordinate columns must stay floating point, got {dtype}"
            )
        columns: Dict[str, np.ndarray] = {}
        for name, column in self._columns.items():
            if name in COORD_COLUMNS and column.dtype != dtype:
                columns[name] = np.ascontiguousarray(column, dtype=dtype)
            else:
                columns[name] = column
        return MemoryColumnStore(columns)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(columns={len(self._columns)}, "
            f"generation={self.generation}, nbytes={self.nbytes})"
        )


class MemoryColumnStore(ColumnStore):
    """Columns held as ordinary in-process arrays (the mutable backend)."""

    backend = "memory"

    @property
    def writable(self) -> bool:
        return True

    @classmethod
    def from_arrays(cls, columns: Mapping[str, np.ndarray]) -> "MemoryColumnStore":
        """Adopt existing arrays without copying (the store takes ownership)."""
        return cls(columns)

    @classmethod
    def gather(cls, leaflist) -> "MemoryColumnStore":
        """Gather the flat coordinate columns from a LeafList's pages.

        Builds ``flat_x`` / ``flat_y`` (coordinates in curve order) and
        ``leaf_starts`` (length ``n_leaves + 1`` prefix offsets).  This is
        the single place the per-page → flat copy happens; the caller is
        expected to re-point the pages at slices of the gathered columns so
        the copy replaces, rather than duplicates, the page buffers.
        """
        entries = leaflist.entries
        counts = np.fromiter(
            (len(entry.page) for entry in entries), dtype=np.int64, count=len(entries)
        )
        starts = np.zeros(len(entries) + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        total = int(starts[-1])
        flat_x = np.empty(total, dtype=np.float64)
        flat_y = np.empty(total, dtype=np.float64)
        bounds = starts.tolist()
        for index, entry in enumerate(entries):
            lo, hi = bounds[index], bounds[index + 1]
            if lo == hi:
                continue
            page = entry.page
            flat_x[lo:hi] = page.xs
            flat_y[lo:hi] = page.ys
        return cls({"flat_x": flat_x, "flat_y": flat_y, "leaf_starts": starts})


class MmapColumnStore(ColumnStore):
    """Columns mapped zero-copy from a snapshot container on disk."""

    backend = "mmap"

    def __init__(self, columns: Mapping[str, np.ndarray], *, path=None, manifest=None) -> None:
        super().__init__(columns)
        self.path = path
        self.manifest = manifest

    @classmethod
    def open(cls, path) -> "MmapColumnStore":
        """Map every array member of a snapshot container.

        Imported lazily to keep the storage layer free of a hard dependency
        on the persistence package (which itself builds on storage).
        """
        from repro.persistence.container import map_container

        manifest, arrays = map_container(path)
        return cls(arrays, path=path, manifest=manifest)

    @classmethod
    def open_sidecars(cls, directory, names) -> "MmapColumnStore":
        """Map extracted sidecar ``.npy`` files instead of the container.

        ``directory`` is where :func:`repro.persistence.container.
        extract_array_members` unpacked the members; ``names`` the columns
        to map.  Zero-length members fall back to in-memory arrays exactly
        like :func:`map_container` does.
        """
        from pathlib import Path

        root = Path(directory)
        columns = {}
        for name in names:
            sidecar = root / f"{name}.npy"
            array = np.load(sidecar, mmap_mode="r")
            if array.size == 0:
                array = np.load(sidecar)
                array.setflags(write=False)
            columns[name] = array
        return cls(columns, path=root)
