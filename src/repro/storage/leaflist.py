"""Leaf entries and the ordered LeafList of a Z-index.

The leaf layer of a Z-index (Section 3, Figure 2 of the paper) is a linked
list of leaf cells ordered by the space-filling curve.  Each leaf holds a
bounding box of the area it spans, a pointer to its page of points, and a
pointer to the next leaf in curve order.  WaZI additionally equips each
leaf with four *look-ahead pointers* (Section 5) that allow range-query
processing to skip over runs of irrelevant leaves.

The :class:`LeafList` here stores leaves in a Python list (positions double
as the curve order ``Ord``) while each :class:`LeafEntry` also carries the
explicit ``next``/look-ahead indices so the skipping algorithms read exactly
like the paper's pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.geometry import Point, Rect
from repro.storage.page import Page

# Per-leaf overhead: bounding box (4 doubles), page pointer, next pointer and
# the four look-ahead pointers.
_LEAF_OVERHEAD_BYTES = 4 * 8 + 8 + 8 + 4 * 8

# Sentinel "index" meaning "past the end of the LeafList".
END_OF_LIST = -1

# Names of the four skipping criteria, in the order used throughout.
SKIP_BELOW = "below"
SKIP_ABOVE = "above"
SKIP_LEFT = "left"
SKIP_RIGHT = "right"
SKIP_CRITERIA = (SKIP_BELOW, SKIP_ABOVE, SKIP_LEFT, SKIP_RIGHT)


@dataclass
class LeafEntry:
    """A leaf cell of a Z-index.

    Attributes
    ----------
    cell:
        The region of the data space covered by the leaf (the cell produced
        by the hierarchical partitioning).  Used for cost accounting.
    page:
        The page of data points belonging to this leaf.
    order:
        Position of the leaf in curve order (``Ord`` in the paper).
    next_index:
        Index of the next leaf in the LeafList, or :data:`END_OF_LIST`.
    below, above, left, right:
        Look-ahead pointer targets for the four irrelevancy criteria of
        Section 5.1, or :data:`END_OF_LIST` when not yet built.
    """

    cell: Rect
    page: Page
    order: int = 0
    next_index: int = END_OF_LIST
    below: int = END_OF_LIST
    above: int = END_OF_LIST
    left: int = END_OF_LIST
    right: int = END_OF_LIST

    @property
    def bbox(self) -> Optional[Rect]:
        """Bounding box of the points actually stored in the leaf's page.

        The paper compares range queries against the bounding box of the
        *data* in the leaf (``bbs``), which can be tighter than the cell.
        Empty leaves have no data bounding box and never overlap a query.
        """
        return self.page.bbox

    @property
    def num_points(self) -> int:
        return len(self.page)

    def overlaps(self, query: Rect) -> bool:
        """Whether the leaf's data bounding box overlaps the query rectangle."""
        box = self.page.bbox
        return box is not None and box.overlaps(query)

    def skip_pointer(self, criterion: str) -> int:
        """The look-ahead pointer associated with ``criterion``."""
        if criterion == SKIP_BELOW:
            return self.below
        if criterion == SKIP_ABOVE:
            return self.above
        if criterion == SKIP_LEFT:
            return self.left
        if criterion == SKIP_RIGHT:
            return self.right
        raise ValueError(f"Unknown skip criterion: {criterion!r}")

    def set_skip_pointer(self, criterion: str, target: int) -> None:
        """Assign the look-ahead pointer associated with ``criterion``."""
        if criterion == SKIP_BELOW:
            self.below = target
        elif criterion == SKIP_ABOVE:
            self.above = target
        elif criterion == SKIP_LEFT:
            self.left = target
        elif criterion == SKIP_RIGHT:
            self.right = target
        else:
            raise ValueError(f"Unknown skip criterion: {criterion!r}")

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the leaf and its page."""
        return _LEAF_OVERHEAD_BYTES + self.page.size_bytes()


@dataclass
class LeafList:
    """The ordered collection of leaf entries of a Z-index."""

    entries: List[LeafEntry] = field(default_factory=list)

    def append(self, entry: LeafEntry) -> int:
        """Append ``entry``, fixing up its order and the predecessor's next pointer."""
        index = len(self.entries)
        entry.order = index
        entry.next_index = END_OF_LIST
        if self.entries:
            self.entries[-1].next_index = index
        self.entries.append(entry)
        return index

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[LeafEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> LeafEntry:
        return self.entries[index]

    @property
    def num_points(self) -> int:
        """Total number of points stored across all leaves."""
        return sum(entry.num_points for entry in self.entries)

    def iter_range(self, low: int, high: int) -> Iterator[LeafEntry]:
        """Iterate leaves with order in ``[low, high]`` inclusive."""
        for index in range(max(low, 0), min(high, len(self.entries) - 1) + 1):
            yield self.entries[index]

    def all_points(self) -> List[Point]:
        """Every stored point in curve order (page order within a leaf)."""
        points: List[Point] = []
        for entry in self.entries:
            points.extend(entry.page.points)
        return points

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the leaf layer."""
        return sum(entry.size_bytes() for entry in self.entries)

    # -- consistency checks (used by tests and debug assertions) ----------
    def check_linked(self) -> bool:
        """Verify the next pointers form a single chain in list order."""
        for index, entry in enumerate(self.entries):
            expected = index + 1 if index + 1 < len(self.entries) else END_OF_LIST
            if entry.next_index != expected:
                return False
            if entry.order != index:
                return False
        return True

    def check_skip_pointers_forward(self) -> bool:
        """Verify every look-ahead pointer targets a strictly later leaf (or the end)."""
        for index, entry in enumerate(self.entries):
            for criterion in SKIP_CRITERIA:
                target = entry.skip_pointer(criterion)
                if target != END_OF_LIST and target <= index:
                    return False
        return True
