"""Leaf entries and the ordered LeafList of a Z-index.

The leaf layer of a Z-index (Section 3, Figure 2 of the paper) is a linked
list of leaf cells ordered by the space-filling curve.  Each leaf holds a
bounding box of the area it spans, a pointer to its page of points, and a
pointer to the next leaf in curve order.  WaZI additionally equips each
leaf with four *look-ahead pointers* (Section 5) that allow range-query
processing to skip over runs of irrelevant leaves.

The :class:`LeafList` here stores leaves in a Python list (positions double
as the curve order ``Ord``) while each :class:`LeafEntry` also carries the
explicit ``next``/look-ahead indices so the skipping algorithms read exactly
like the paper's pseudocode.

Packed representation
---------------------
For the vectorized query paths the LeafList additionally maintains a
*packed* copy of the per-leaf metadata (:class:`PackedLeaves`): one
``(n_leaves, 4)`` float64 array of effective bounding boxes, a boolean
non-empty mask, and one int64 array per look-ahead criterion.  Overlap tests and skip-target selection then run as NumPy
array expressions instead of attribute-chasing ``LeafEntry`` objects.  The
packed copy is built lazily and invalidated (or repaired in place) by the
mutation entry points, so callers simply ask for :meth:`LeafList.packed`.
"""

# repro-lint: hot-path
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.geometry import Point, Rect
from repro.storage.page import Page

# Per-leaf overhead: bounding box (4 doubles), page pointer, next pointer and
# the four look-ahead pointers.
_LEAF_OVERHEAD_BYTES = 4 * 8 + 8 + 8 + 4 * 8

# Sentinel "index" meaning "past the end of the LeafList".
END_OF_LIST = -1

# Names of the four skipping criteria, in the order used throughout.
SKIP_BELOW = "below"
SKIP_ABOVE = "above"
SKIP_LEFT = "left"
SKIP_RIGHT = "right"
SKIP_CRITERIA = (SKIP_BELOW, SKIP_ABOVE, SKIP_LEFT, SKIP_RIGHT)


@dataclass
class LeafEntry:
    """A leaf cell of a Z-index.

    Attributes
    ----------
    cell:
        The region of the data space covered by the leaf (the cell produced
        by the hierarchical partitioning).  Used for cost accounting.
    page:
        The page of data points belonging to this leaf.
    order:
        Position of the leaf in curve order (``Ord`` in the paper).
    next_index:
        Index of the next leaf in the LeafList, or :data:`END_OF_LIST`.
    below, above, left, right:
        Look-ahead pointer targets for the four irrelevancy criteria of
        Section 5.1, or :data:`END_OF_LIST` when not yet built.
    node:
        Optional back-reference to the tree's leaf node, used by the
        incremental splice repair to renumber ``leaf_index`` fields without
        re-walking the whole tree.
    """

    cell: Rect
    page: Page
    order: int = 0
    next_index: int = END_OF_LIST
    below: int = END_OF_LIST
    above: int = END_OF_LIST
    left: int = END_OF_LIST
    right: int = END_OF_LIST
    node: Optional[object] = None

    @property
    def bbox(self) -> Optional[Rect]:
        """Bounding box of the points actually stored in the leaf's page.

        The paper compares range queries against the bounding box of the
        *data* in the leaf (``bbs``), which can be tighter than the cell.
        Empty leaves have no data bounding box and never overlap a query.
        """
        return self.page.bbox

    @property
    def num_points(self) -> int:
        return len(self.page)

    def overlaps(self, query: Rect) -> bool:
        """Whether the leaf's data bounding box overlaps the query rectangle."""
        box = self.page.bbox
        return box is not None and box.overlaps(query)

    def skip_pointer(self, criterion: str) -> int:
        """The look-ahead pointer associated with ``criterion``."""
        if criterion == SKIP_BELOW:
            return self.below
        if criterion == SKIP_ABOVE:
            return self.above
        if criterion == SKIP_LEFT:
            return self.left
        if criterion == SKIP_RIGHT:
            return self.right
        raise ValueError(f"Unknown skip criterion: {criterion!r}")

    def set_skip_pointer(self, criterion: str, target: int) -> None:
        """Assign the look-ahead pointer associated with ``criterion``."""
        if criterion == SKIP_BELOW:
            self.below = target
        elif criterion == SKIP_ABOVE:
            self.above = target
        elif criterion == SKIP_LEFT:
            self.left = target
        elif criterion == SKIP_RIGHT:
            self.right = target
        else:
            raise ValueError(f"Unknown skip criterion: {criterion!r}")

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the leaf and its page."""
        return _LEAF_OVERHEAD_BYTES + self.page.size_bytes()


class PackedLeaves:
    """Columnar copy of the LeafList metadata for vectorized projection.

    Attributes
    ----------
    boxes:
        ``(n, 4)`` float64 array of *effective* boxes ``[xmin, ymin, xmax,
        ymax]`` — the data bounding box of each leaf, or the leaf's cell for
        empty leaves (matching :func:`repro.zindex.skipping.leaf_box`).
    nonempty:
        ``(n,)`` boolean mask: whether the leaf stores any points.  Empty
        leaves never overlap a query but still participate in the skip
        criteria through their cell.
    below, above, left, right:
        ``(n,)`` int64 look-ahead pointer targets (:data:`END_OF_LIST`
        terminated).
    """

    __slots__ = (
        "boxes", "nonempty", "below", "above", "left", "right", "_lists", "_owned",
        "_live_span",
    )

    def __init__(self, entries: Sequence[LeafEntry]) -> None:
        n = len(entries)
        self.boxes = np.empty((n, 4), dtype=np.float64)
        self.nonempty = np.empty(n, dtype=bool)
        self.below = np.empty(n, dtype=np.int64)
        self.above = np.empty(n, dtype=np.int64)
        self.left = np.empty(n, dtype=np.int64)
        self.right = np.empty(n, dtype=np.int64)
        self._lists = None
        self._owned = True
        self._live_span = False
        for index, entry in enumerate(entries):
            self.refresh(index, entry)
            self.below[index] = entry.below
            self.above[index] = entry.above
            self.left[index] = entry.left
            self.right[index] = entry.right

    @classmethod
    def from_arrays(
        cls,
        boxes: np.ndarray,
        nonempty: np.ndarray,
        below: np.ndarray,
        above: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        *,
        copy: bool = True,
    ) -> "PackedLeaves":
        """Assemble a packed copy directly from stored column arrays.

        Used by snapshot loading, where the packed metadata was persisted
        verbatim: installing the arrays avoids re-deriving every row from
        freshly built :class:`LeafEntry` objects.  With ``copy=True`` the
        arrays are copied into the canonical dtypes.  With ``copy=False``
        the packed metadata holds *views* of the caller's columns (a
        :class:`~repro.storage.buffers.ColumnStore`, possibly read-only and
        memory-mapped); the first in-place repair (:meth:`refresh`) then
        promotes to private copies, so shared buffers are never written
        through either way.  A dtype mismatch under ``copy=False`` falls
        back to a converting copy — correctness over sharing.
        """
        packed = cls.__new__(cls)
        if copy:
            packed.boxes = np.array(boxes, dtype=np.float64).reshape(-1, 4)
            packed.nonempty = np.array(nonempty, dtype=bool)
            packed.below = np.array(below, dtype=np.int64)
            packed.above = np.array(above, dtype=np.int64)
            packed.left = np.array(left, dtype=np.int64)
            packed.right = np.array(right, dtype=np.int64)
        else:
            packed.boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
            packed.nonempty = np.asarray(nonempty, dtype=bool)
            packed.below = np.asarray(below, dtype=np.int64)
            packed.above = np.asarray(above, dtype=np.int64)
            packed.left = np.asarray(left, dtype=np.int64)
            packed.right = np.asarray(right, dtype=np.int64)
        packed._lists = None
        packed._owned = bool(copy)
        packed._live_span = False
        n = packed.boxes.shape[0]
        for name in ("nonempty", "below", "above", "left", "right"):
            if getattr(packed, name).shape != (n,):
                raise ValueError(
                    f"packed column {name!r} has shape {getattr(packed, name).shape}, "
                    f"expected ({n},)"
                )
        return packed

    # Explicit pickle state so files written before the `_owned` slot
    # existed still restore; their arrays were always private copies.
    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple):  # default reduce of the pre-slot layout
            state = dict(state[1] or {})
        self._owned = True
        self._live_span = False
        for name, value in state.items():
            setattr(self, name, value)

    def _ensure_writable(self) -> None:
        """Copy-on-write before an in-place repair of view-backed columns."""
        if self._owned:
            return
        self.boxes = np.array(self.boxes, dtype=np.float64)
        self.nonempty = np.array(self.nonempty, dtype=bool)
        self.below = np.array(self.below, dtype=np.int64)
        self.above = np.array(self.above, dtype=np.int64)
        self.left = np.array(self.left, dtype=np.int64)
        self.right = np.array(self.right, dtype=np.int64)
        self._owned = True

    def refresh(self, index: int, entry: LeafEntry) -> None:
        """Re-read one leaf's box row (after its page was mutated)."""
        self._ensure_writable()
        box = entry.page.bbox_tuple()
        if box is None:
            cell = entry.cell
            box = (cell.xmin, cell.ymin, cell.xmax, cell.ymax)
            nonempty = False
        else:
            nonempty = True
        self.nonempty[index] = nonempty
        self.boxes[index] = box
        self._live_span = False
        if self._lists is not None:
            boxes_l, nonempty_l = self._lists[:2]
            boxes_l[index] = list(box)
            nonempty_l[index] = nonempty

    def lists(self):
        """The packed metadata as plain Python lists, for scalar walks.

        Scalar indexing of NumPy arrays is several times slower than list
        indexing, so the sequential skip walk of the projection phase reads
        from this cached tuple ``(boxes, nonempty, below, above, left,
        right)`` instead, where ``boxes`` is a list of
        ``[xmin, ymin, xmax, ymax]`` rows.
        """
        if self._lists is None:
            self._lists = (
                self.boxes.tolist(),
                self.nonempty.tolist(),
                self.below.tolist(),
                self.above.tolist(),
                self.left.tolist(),
                self.right.tolist(),
            )
        return self._lists

    def live_span(self):
        """Inclusive ``(first, last)`` non-empty leaf positions, or ``None``.

        Leaves outside this interval hold no points and can never
        contribute to a query, so the projection phase clamps its scan
        interval to it.  For a freshly built index the clamp is a no-op,
        but for a Z-range shard — a mostly-empty copy of the global leaf
        list — it is what makes projection cost scale with the shard's own
        span instead of the global leaf count.  Cached; invalidated by
        :meth:`refresh`.
        """
        if self._live_span is False:
            hits = np.flatnonzero(self.nonempty)
            self._live_span = (
                (int(hits[0]), int(hits[-1])) if hits.size else None
            )
        return self._live_span


@dataclass
class LeafList:
    """The ordered collection of leaf entries of a Z-index."""

    entries: List[LeafEntry] = field(default_factory=list)
    _packed: Optional[PackedLeaves] = field(default=None, repr=False, compare=False)

    @classmethod
    def from_entries(cls, entries: Sequence[LeafEntry]) -> "LeafList":
        """Build a list from already-ordered entries, fixing the chain links.

        Orders and next pointers are renumbered to match the given sequence;
        the entries' look-ahead pointers are kept as-is (snapshot loading
        restores them from the persisted arrays before calling this).
        """
        leaflist = cls(entries=list(entries))
        n = len(leaflist.entries)
        for index, entry in enumerate(leaflist.entries):
            entry.order = index
            entry.next_index = index + 1 if index + 1 < n else END_OF_LIST
            if entry.node is not None:
                entry.node.leaf_index = index
        return leaflist

    def append(self, entry: LeafEntry) -> int:
        """Append ``entry``, fixing up its order and the predecessor's next pointer."""
        index = len(self.entries)
        entry.order = index
        entry.next_index = END_OF_LIST
        if self.entries:
            self.entries[-1].next_index = index
        self.entries.append(entry)
        self._packed = None
        return index

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[LeafEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> LeafEntry:
        return self.entries[index]

    @property
    def num_points(self) -> int:
        """Total number of points stored across all leaves."""
        return sum(entry.num_points for entry in self.entries)

    def iter_range(self, low: int, high: int) -> Iterator[LeafEntry]:
        """Iterate leaves with order in ``[low, high]`` inclusive."""
        for index in range(max(low, 0), min(high, len(self.entries) - 1) + 1):
            yield self.entries[index]

    def all_points(self) -> List[Point]:
        """Every stored point in curve order (page order within a leaf)."""
        points: List[Point] = []
        for entry in self.entries:
            points.extend(entry.page.points)
        return points

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the leaf layer."""
        return sum(entry.size_bytes() for entry in self.entries)

    # -- packed representation -------------------------------------------
    def packed(self) -> PackedLeaves:
        """The packed columnar metadata, (re)built lazily after mutations."""
        if self._packed is None:
            self._packed = PackedLeaves(self.entries)
        return self._packed

    def invalidate_packed(self) -> None:
        """Drop the packed copy; the next :meth:`packed` call rebuilds it.

        Called after bulk pointer rewrites (Algorithm 4 passes) and any
        structural change not covered by :meth:`refresh_entry`.
        """
        self._packed = None

    def refresh_entry(self, index: int) -> None:
        """Repair the packed row of one leaf after an in-place page mutation."""
        if self._packed is not None:
            self._packed.refresh(index, self.entries[index])

    # -- incremental structural repair ------------------------------------
    def splice(self, index: int, replacements: Sequence[LeafEntry]) -> None:
        """Replace the entry at ``index`` with ``replacements`` in place.

        Repairs orders, next pointers, look-ahead pointer *targets* (shifted
        by the size delta) and the ``leaf_index`` of back-referenced tree
        nodes for the unchanged suffix.  Look-ahead pointers of the prefix
        and of the new entries are left for the caller to recompute (they
        can legitimately point into the replaced region); see
        :func:`repro.zindex.skipping.repair_lookahead_pointers`.
        """
        if not replacements:
            raise ValueError("splice requires at least one replacement entry")
        shift = len(replacements) - 1
        entries = self.entries
        entries[index : index + 1] = list(replacements)
        n = len(entries)
        for position in range(index, n):
            entry = entries[position]
            entry.order = position
            entry.next_index = position + 1 if position + 1 < n else END_OF_LIST
            node = entry.node
            if node is not None:
                node.leaf_index = position
        if shift:
            # Suffix pointers only ever aim forward (targets were > index in
            # the old numbering), so a uniform shift keeps them valid.
            for position in range(index + len(replacements), n):
                entry = entries[position]
                if entry.below != END_OF_LIST:
                    entry.below += shift
                if entry.above != END_OF_LIST:
                    entry.above += shift
                if entry.left != END_OF_LIST:
                    entry.left += shift
                if entry.right != END_OF_LIST:
                    entry.right += shift
        self._packed = None

    def splice_span(self, low: int, high: int, replacements: Sequence[LeafEntry]) -> None:
        """Replace the contiguous span ``[low, high]`` with ``replacements``.

        The span generalization of :meth:`splice`, used by incremental
        subtree re-derive: a subtree's leaves occupy a contiguous run of
        the curve-ordered list, and the rebuilt subtree's leaves take their
        place in one structural edit.  The same pointer invariants apply —
        suffix look-ahead targets always aimed *past* ``high`` (pointers
        only ever go forward), so they survive under a uniform shift, while
        prefix and replacement pointers are left for
        :func:`repro.zindex.skipping.repair_lookahead_pointers`.
        """
        if not replacements:
            raise ValueError("splice_span requires at least one replacement entry")
        if low < 0 or high >= len(self.entries) or low > high:
            raise IndexError(f"invalid splice span [{low}, {high}] for {len(self.entries)} entries")
        shift = len(replacements) - (high - low + 1)
        entries = self.entries
        entries[low : high + 1] = list(replacements)
        n = len(entries)
        for position in range(low, n):
            entry = entries[position]
            entry.order = position
            entry.next_index = position + 1 if position + 1 < n else END_OF_LIST
            node = entry.node
            if node is not None:
                node.leaf_index = position
        if shift:
            for position in range(low + len(replacements), n):
                entry = entries[position]
                if entry.below != END_OF_LIST:
                    entry.below += shift
                if entry.above != END_OF_LIST:
                    entry.above += shift
                if entry.left != END_OF_LIST:
                    entry.left += shift
                if entry.right != END_OF_LIST:
                    entry.right += shift
        self._packed = None

    # -- consistency checks (used by tests and debug assertions) ----------
    def check_linked(self) -> bool:
        """Verify the next pointers form a single chain in list order."""
        for index, entry in enumerate(self.entries):
            expected = index + 1 if index + 1 < len(self.entries) else END_OF_LIST
            if entry.next_index != expected:
                return False
            if entry.order != index:
                return False
        return True

    def check_skip_pointers_forward(self) -> bool:
        """Verify every look-ahead pointer targets a strictly later leaf (or the end)."""
        for index, entry in enumerate(self.entries):
            for criterion in SKIP_CRITERIA:
                target = entry.skip_pointer(criterion)
                if target != END_OF_LIST and target <= index:
                    return False
        return True
