"""Fixed-capacity columnar data pages.

A page is the unit of storage scanned during the filtering phase of range
query processing.  The paper assumes points within a page are stored in
arbitrary order, so a range query that touches a page must compare the query
rectangle against every point on it; those comparisons are the quantity the
WaZI cost model minimises.

Storage layout
--------------
Points are stored *columnar*: two contiguous ``float64`` NumPy arrays hold
the x and y coordinates in insertion (curve) order.  The filtering step of
Algorithm 2 therefore runs as a handful of vectorized comparisons over the
whole page instead of a per-point Python loop, and the coordinate columns
can be handed to callers (:class:`~repro.storage.LeafList`, the Z-index's
flat scan cache) without re-boxing every point into a
:class:`~repro.geometry.Point`.

The page keeps the same logical interface as a list-of-points container —
``add`` / ``remove`` / iteration yield :class:`Point` objects — so callers
that are not on the hot path do not need to know about the columnar layout.
The bounding box is maintained incrementally on ``add``.
"""

# repro-lint: hot-path
from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

import numpy as np

from repro.geometry import Point, Rect

# Rough in-memory size accounting, mirroring the paper's Table 5.  A stored
# point is two 8-byte doubles; per-page overhead covers the bounding box and
# bookkeeping fields.
_BYTES_PER_POINT = 16
_PAGE_OVERHEAD_BYTES = 48


class PageOverflowError(RuntimeError):
    """Raised when adding a point to a page that is already at capacity."""


class Page:
    """A bounded columnar container of points with a maintained bounding box.

    A page either *owns* its coordinate buffers (the classic mode: private
    capacity-sized arrays, written in place) or holds **views** into a
    shared column store (:mod:`repro.storage.buffers`) — the mode used by
    snapshot loading and the flat scan cache, where one flat array backs
    every page.  View-backed pages answer all read queries directly from
    the shared buffer; the first mutation *promotes* the page by copying
    its points into a private buffer (copy-on-write), so shared columns —
    possibly memory-mapped read-only — are never written through.
    """

    __slots__ = (
        "capacity", "_xs", "_ys", "_n", "_owned",
        "_bxmin", "_bymin", "_bxmax", "_bymax",
    )

    def __init__(self, capacity: int, points: Optional[Iterable[Point]] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"Page capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._xs = np.empty(capacity, dtype=np.float64)
        self._ys = np.empty(capacity, dtype=np.float64)
        self._n = 0
        self._owned = True
        self._bxmin = self._bymin = self._bxmax = self._bymax = 0.0
        if points is not None:
            for point in points:
                self.add(point)

    @classmethod
    def from_arrays(
        cls, capacity: int, xs: np.ndarray, ys: np.ndarray, bbox=None
    ) -> "Page":
        """Build a page directly from coordinate columns (no Point boxing).

        ``capacity`` is raised to ``len(xs)`` if needed, mirroring the
        oversized-leaf escape hatch of the tree construction.  ``bbox`` is
        an optional precomputed ``(xmin, ymin, xmax, ymax)`` bounding box of
        the columns — snapshot loading passes the stored box so restoring a
        page is a pure memcpy with no min/max recomputation; the caller is
        trusted to pass a box consistent with the data.
        """
        n = int(xs.shape[0])
        page = cls(max(capacity, n, 1))
        if n:
            page._xs[:n] = xs
            page._ys[:n] = ys
            page._n = n
            if bbox is None:
                page._bxmin = float(xs.min())
                page._bxmax = float(xs.max())
                page._bymin = float(ys.min())
                page._bymax = float(ys.max())
            else:
                page._bxmin, page._bymin, page._bxmax, page._bymax = (
                    float(bbox[0]), float(bbox[1]), float(bbox[2]), float(bbox[3])
                )
        return page

    @classmethod
    def from_view(
        cls, capacity: int, xs: np.ndarray, ys: np.ndarray, bbox=None
    ) -> "Page":
        """Build a page over *views* of shared coordinate columns (no copy).

        ``xs`` / ``ys`` are length-``n`` float64 slices of a column store
        (or memmap); the page adopts them as its buffers instead of copying
        into private arrays.  Reads are served from the shared columns;
        the first ``add``/``remove`` copies on write.  ``bbox`` follows the
        same trusted-precomputation contract as :meth:`from_arrays`.
        """
        n = int(xs.shape[0])
        if ys.shape[0] != n:
            raise ValueError(
                f"coordinate views disagree on length: {n} vs {int(ys.shape[0])}"
            )
        page = cls.__new__(cls)
        page.capacity = max(int(capacity), n, 1)
        page._xs = xs
        page._ys = ys
        page._n = n
        page._owned = False
        if n == 0:
            page._bxmin = page._bymin = page._bxmax = page._bymax = 0.0
        elif bbox is None:
            page._bxmin = float(xs.min())
            page._bxmax = float(xs.max())
            page._bymin = float(ys.min())
            page._bymax = float(ys.max())
        else:
            page._bxmin, page._bymin, page._bxmax, page._bymax = (
                float(bbox[0]), float(bbox[1]), float(bbox[2]), float(bbox[3])
            )
        return page

    def adopt_view(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """Swap the page's buffers for equal-valued views into shared columns.

        Called by the flat-cache gather after it copied this page's points
        into the flat columns: re-pointing the page at its slice of those
        columns leaves one resident copy of the coordinates instead of two.
        The views must hold exactly the page's current points (same order);
        count, capacity and bounding box are unchanged.
        """
        if int(xs.shape[0]) != self._n or int(ys.shape[0]) != self._n:
            raise ValueError(
                f"adopted views hold {int(xs.shape[0])} points, page has {self._n}"
            )
        self._xs = xs
        self._ys = ys
        self._owned = False

    @property
    def owns_buffers(self) -> bool:
        """Whether the page holds private buffers (vs column-store views)."""
        return self._owned

    # -- pickling ---------------------------------------------------------
    # Explicit state methods so pickles written before the `_owned` slot
    # existed still restore (their full-capacity buffers are owned).  Note
    # that pickling serialises the *values* of view buffers, so a restored
    # view-backed page holds private length-n arrays but keeps
    # ``_owned=False`` — the first mutation promotes to capacity-sized
    # buffers exactly as it would have for the original views.
    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple):  # default reduce of the pre-slot layout
            state = dict(state[1] or {})
        self._owned = True
        for name, value in state.items():
            setattr(self, name, value)

    def _promote(self) -> None:
        """Copy-on-write: replace shared views with private buffers."""
        xs = np.empty(self.capacity, dtype=np.float64)
        ys = np.empty(self.capacity, dtype=np.float64)
        n = self._n
        xs[:n] = self._xs[:n]
        ys[:n] = self._ys[:n]
        self._xs = xs
        self._ys = ys
        self._owned = True

    # -- container protocol ---------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Point]:
        xs, ys = self._xs, self._ys
        for i in range(self._n):
            yield Point(xs[i].item(), ys[i].item())

    def __contains__(self, point: Point) -> bool:
        return self.contains_exact(point)

    @property
    def points(self) -> List[Point]:
        """The stored points as a freshly built list (page order)."""
        return [
            Point(x, y)
            for x, y in zip(self._xs[: self._n].tolist(), self._ys[: self._n].tolist())
        ]

    @property
    def xs(self) -> np.ndarray:
        """Read-only view of the x-coordinate column (length ``len(self)``)."""
        return self._xs[: self._n]

    @property
    def ys(self) -> np.ndarray:
        """Read-only view of the y-coordinate column (length ``len(self)``)."""
        return self._ys[: self._n]

    @property
    def bbox(self) -> Optional[Rect]:
        """Bounding box of the stored points, or ``None`` for an empty page."""
        if self._n == 0:
            return None
        return Rect(self._bxmin, self._bymin, self._bxmax, self._bymax)

    def bbox_tuple(self):
        """The bounding box as ``(xmin, ymin, xmax, ymax)`` floats, or ``None``."""
        if self._n == 0:
            return None
        return (self._bxmin, self._bymin, self._bxmax, self._bymax)

    @property
    def is_full(self) -> bool:
        return self._n >= self.capacity

    @property
    def is_empty(self) -> bool:
        return self._n == 0

    # -- mutation ---------------------------------------------------------
    def add(self, point: Point) -> None:
        """Append a point, growing the bounding box.

        Raises :class:`PageOverflowError` when the page is already full; the
        caller (leaf node) is responsible for splitting.
        """
        if self._n >= self.capacity:
            raise PageOverflowError(
                f"Page already holds {self._n}/{self.capacity} points"
            )
        if not self._owned:
            self._promote()
        x = float(point.x)
        y = float(point.y)
        index = self._n
        self._xs[index] = x
        self._ys[index] = y
        if index == 0:
            self._bxmin = self._bxmax = x
            self._bymin = self._bymax = y
        else:
            if x < self._bxmin:
                self._bxmin = x
            elif x > self._bxmax:
                self._bxmax = x
            if y < self._bymin:
                self._bymin = y
            elif y > self._bymax:
                self._bymax = y
        self._n = index + 1

    def remove(self, point: Point) -> bool:
        """Remove one occurrence of ``point``.

        Returns ``True`` if the point was present.  The bounding box is
        recomputed from the remaining points (removal is rare relative to
        scans, so the linear recomputation is acceptable).
        """
        n = self._n
        if n == 0:
            return False
        matches = np.flatnonzero(
            (self._xs[:n] == float(point.x)) & (self._ys[:n] == float(point.y))
        )
        if matches.size == 0:
            return False
        if not self._owned:
            self._promote()
        index = int(matches[0])
        # Shift the tail left by one to preserve page order.
        self._xs[index : n - 1] = self._xs[index + 1 : n]
        self._ys[index : n - 1] = self._ys[index + 1 : n]
        self._n = n - 1
        self._recompute_bbox()
        return True

    def _recompute_bbox(self) -> None:
        n = self._n
        if n == 0:
            self._bxmin = self._bymin = self._bxmax = self._bymax = 0.0
            return
        xs = self._xs[:n]
        ys = self._ys[:n]
        self._bxmin = float(xs.min())
        self._bxmax = float(xs.max())
        self._bymin = float(ys.min())
        self._bymax = float(ys.max())

    # -- queries ----------------------------------------------------------
    def range_mask(self, query: Rect) -> np.ndarray:
        """Boolean mask over the page's points selecting those inside ``query``."""
        return query.contains_arrays(self._xs[: self._n], self._ys[: self._n])

    def filter_range(self, query: Rect) -> List[Point]:
        """Return the points on this page that fall inside ``query``.

        This is the ``Filter(P)`` step of Algorithm 2 in the paper: every
        point on the page is compared against the query rectangle — here as
        four vectorized comparisons over the coordinate columns.
        """
        if self._n == 0:
            return []
        mask = self.range_mask(query)
        if not mask.any():
            return []
        sel_x = self._xs[: self._n][mask].tolist()
        sel_y = self._ys[: self._n][mask].tolist()
        return [Point(x, y) for x, y in zip(sel_x, sel_y)]

    def count_in_range(self, query: Rect) -> int:
        """Number of stored points inside ``query`` without materialising them."""
        if self._n == 0:
            return 0
        return int(self.range_mask(query).sum())

    def contains_exact(self, point: Point) -> bool:
        """Exact-match lookup used by point queries."""
        n = self._n
        if n == 0:
            return False
        return bool(
            ((self._xs[:n] == float(point.x)) & (self._ys[:n] == float(point.y))).any()
        )

    # -- accounting --------------------------------------------------------
    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the page."""
        return _PAGE_OVERHEAD_BYTES + _BYTES_PER_POINT * self._n

    def __repr__(self) -> str:
        return f"Page(n={self._n}, capacity={self.capacity}, bbox={self.bbox})"
