"""Fixed-capacity data pages.

A page is the unit of storage scanned during the filtering phase of range
query processing.  The paper assumes points within a page are stored in
arbitrary order, so a range query that touches a page must compare the query
rectangle against every point on it; those comparisons are the quantity the
WaZI cost model minimises.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.geometry import Point, Rect, bounding_box

# Rough in-memory size accounting, mirroring the paper's Table 5.  A stored
# point is two 8-byte doubles; per-page overhead covers the bounding box and
# bookkeeping fields.
_BYTES_PER_POINT = 16
_PAGE_OVERHEAD_BYTES = 48


class PageOverflowError(RuntimeError):
    """Raised when adding a point to a page that is already at capacity."""


class Page:
    """A bounded container of points with a maintained bounding box."""

    __slots__ = ("capacity", "_points", "_bbox")

    def __init__(self, capacity: int, points: Optional[Iterable[Point]] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"Page capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._points: List[Point] = []
        self._bbox: Optional[Rect] = None
        if points is not None:
            for point in points:
                self.add(point)

    # -- container protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self._points)

    def __contains__(self, point: Point) -> bool:
        return point in self._points

    @property
    def points(self) -> List[Point]:
        """The points stored on the page (live list, treat as read-only)."""
        return self._points

    @property
    def bbox(self) -> Optional[Rect]:
        """Bounding box of the stored points, or ``None`` for an empty page."""
        return self._bbox

    @property
    def is_full(self) -> bool:
        return len(self._points) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._points

    # -- mutation ---------------------------------------------------------
    def add(self, point: Point) -> None:
        """Append a point, growing the bounding box.

        Raises :class:`PageOverflowError` when the page is already full; the
        caller (leaf node) is responsible for splitting.
        """
        if self.is_full:
            raise PageOverflowError(
                f"Page already holds {len(self._points)}/{self.capacity} points"
            )
        self._points.append(point)
        if self._bbox is None:
            self._bbox = Rect(point.x, point.y, point.x, point.y)
        else:
            self._bbox = self._bbox.expand_to_point(point)

    def remove(self, point: Point) -> bool:
        """Remove one occurrence of ``point``.

        Returns ``True`` if the point was present.  The bounding box is
        recomputed from the remaining points (removal is rare relative to
        scans, so the linear recomputation is acceptable).
        """
        try:
            self._points.remove(point)
        except ValueError:
            return False
        self._bbox = bounding_box(self._points) if self._points else None
        return True

    # -- queries ----------------------------------------------------------
    def filter_range(self, query: Rect) -> List[Point]:
        """Return the points on this page that fall inside ``query``.

        This is the ``Filter(P)`` step of Algorithm 2 in the paper: every
        point on the page is compared against the query rectangle.
        """
        return [p for p in self._points if query.contains_xy(p.x, p.y)]

    def count_in_range(self, query: Rect) -> int:
        """Number of stored points inside ``query`` without materialising them."""
        return sum(1 for p in self._points if query.contains_xy(p.x, p.y))

    def contains_exact(self, point: Point) -> bool:
        """Exact-match lookup used by point queries."""
        return any(p.x == point.x and p.y == point.y for p in self._points)

    # -- accounting --------------------------------------------------------
    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the page."""
        return _PAGE_OVERHEAD_BYTES + _BYTES_PER_POINT * len(self._points)

    def __repr__(self) -> str:
        return f"Page(n={len(self._points)}, capacity={self.capacity}, bbox={self._bbox})"
