"""Paged storage layer shared by the Z-index family of indexes.

The paper models a clustered index: data points belonging to consecutive
leaf cells are stored on consecutive pages, each page holding at most ``L``
points, and the leaf cells form a linked list (the *LeafList*) in curve
order.  This subpackage provides

* :class:`~repro.storage.page.Page` — a fixed-capacity *columnar* container
  of points (contiguous float64 coordinate arrays) with an incrementally
  maintained bounding box, vectorized filtering and copy-on-write
  promotion when backed by shared column views,
* :class:`~repro.storage.leaflist.LeafEntry` — a leaf cell (bounding box +
  page + next pointer + the four look-ahead pointers of Section 5),
* :class:`~repro.storage.leaflist.LeafList` — the ordered collection of leaf
  entries with helpers for scans, size accounting, consistency checks, an
  incremental :meth:`~repro.storage.leaflist.LeafList.splice` repair,
* :class:`~repro.storage.leaflist.PackedLeaves` — the packed per-leaf
  metadata (one ``(n, 4)`` bbox array plus int64 pointer arrays) the
  vectorized projection phase operates on, and
* :mod:`~repro.storage.buffers` — the buffer manager that owns the flat
  columns (:class:`~repro.storage.buffers.ColumnStore`) with in-memory and
  ``mmap`` zero-copy backends; indexes hold views into it.
"""

from repro.storage.page import Page
from repro.storage.leaflist import LeafEntry, LeafList, PackedLeaves
from repro.storage.buffers import (
    COLUMN_NAMES,
    ColumnStore,
    MemoryColumnStore,
    MmapColumnStore,
)

__all__ = [
    "Page",
    "LeafEntry",
    "LeafList",
    "PackedLeaves",
    "COLUMN_NAMES",
    "ColumnStore",
    "MemoryColumnStore",
    "MmapColumnStore",
]
