"""Paged storage layer shared by the Z-index family of indexes.

The paper models a clustered index: data points belonging to consecutive
leaf cells are stored on consecutive pages, each page holding at most ``L``
points, and the leaf cells form a linked list (the *LeafList*) in curve
order.  This subpackage provides

* :class:`~repro.storage.page.Page` — a fixed-capacity container of points
  with its bounding box,
* :class:`~repro.storage.leaflist.LeafEntry` — a leaf cell (bounding box +
  page + next pointer + the four look-ahead pointers of Section 5),
* :class:`~repro.storage.leaflist.LeafList` — the ordered collection of leaf
  entries with helpers for scans, size accounting and consistency checks.
"""

from repro.storage.page import Page
from repro.storage.leaflist import LeafEntry, LeafList

__all__ = ["Page", "LeafEntry", "LeafList"]
