"""Piecewise-stationary drifting-workload scenarios.

The workload-change experiment of Section 6.8 blends two fixed workloads;
a *serving* system instead sees traffic that shifts in phases — a hotspot
moves, users zoom in, the query mix tilts towards kNN.  This module
generates such piecewise-stationary scenarios as lists of
:class:`DriftPhase` objects (each phase a frozen
:class:`~repro.workloads.Workload`), shared by the adaptation benchmark
(``benchmarks/bench_adapt.py``), the adaptive-lifecycle tests and
``examples/adaptive_serving.py``.

Scenario kinds (:data:`SCENARIO_KINDS`):

* ``"hotspot_shift"`` — broad uniform traffic, then small queries
  concentrated in one hotspot, then the hotspot jumps elsewhere;
* ``"zoom_in"`` — traffic narrows from region-wide queries to ever
  smaller queries inside one shrinking focus area;
* ``"knn_heavy"`` — range-only traffic tilts into a phase dominated by
  kNN probes over the hotspot (exercising the kNN columns of the
  workload log and their equivalent-range conversion);
* ``"scan_heavy"`` — tiny interactive hotspot lookups give way to
  region-wide analytical scans: the observed result sizes jump by three
  orders of magnitude, so the layout's *page granularity* (not just its
  split points) is wrong for the new traffic.

Every generator threads an explicit ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry import Point, Rect
from repro.workloads.datasets import dataset_extent
from repro.workloads.queries import range_queries_from_centers
from repro.workloads.workload import Workload

__all__ = [
    "SCENARIO_KINDS",
    "DriftPhase",
    "drift_scenario",
    "hotspot_workload",
    "moving_hotspot",
    "uniform_centers_workload",
]

#: The scenario kinds :func:`drift_scenario` understands.
SCENARIO_KINDS = ("hotspot_shift", "zoom_in", "knn_heavy", "scan_heavy")


@dataclass(frozen=True)
class DriftPhase:
    """One stationary phase of a drifting scenario."""

    name: str
    workload: Workload

    def __len__(self) -> int:
        return len(self.workload)


def _sub_extent(extent: Rect, center: Tuple[float, float], fraction: float) -> Rect:
    """A sub-rectangle of ``extent``: ``fraction`` of each side around a
    relative center (coordinates in ``[0, 1]`` of the extent)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    cx = extent.xmin + center[0] * extent.width
    cy = extent.ymin + center[1] * extent.height
    half_w = extent.width * fraction / 2.0
    half_h = extent.height * fraction / 2.0
    xmin = min(max(extent.xmin, cx - half_w), extent.xmax - 2 * half_w)
    ymin = min(max(extent.ymin, cy - half_h), extent.ymax - 2 * half_h)
    return Rect(xmin, ymin, xmin + 2 * half_w, ymin + 2 * half_h)


def _uniform_points_in(rect: Rect, num: int, rng: np.random.Generator) -> List[Point]:
    xs = rng.uniform(rect.xmin, rect.xmax, size=num)
    ys = rng.uniform(rect.ymin, rect.ymax, size=num)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def uniform_centers_workload(
    region: str,
    num_queries: int,
    selectivity_percent: float,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Workload:
    """Region-wide queries with uniformly placed centers (the broad phase)."""
    extent = dataset_extent(region)
    rng = rng if rng is not None else np.random.default_rng(seed)
    centers = _uniform_points_in(extent, num_queries, rng)
    queries = range_queries_from_centers(centers, extent, selectivity_percent, rng=rng)
    return Workload(
        queries=queries,
        region=region,
        selectivity_percent=selectivity_percent,
        seed=seed,
        description=f"{region} uniform phase @ {selectivity_percent}%",
    )


def hotspot_workload(
    region: str,
    num_queries: int,
    selectivity_percent: float,
    *,
    hotspot_center: Tuple[float, float] = (0.5, 0.5),
    hotspot_fraction: float = 0.15,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Workload:
    """Queries whose centers concentrate in one hotspot sub-rectangle.

    ``hotspot_center`` is in relative ``[0, 1]`` coordinates of the
    region's extent; ``hotspot_fraction`` is the hotspot's side length as
    a fraction of the extent's.
    """
    extent = dataset_extent(region)
    rng = rng if rng is not None else np.random.default_rng(seed)
    hotspot = _sub_extent(extent, hotspot_center, hotspot_fraction)
    centers = _uniform_points_in(hotspot, num_queries, rng)
    queries = range_queries_from_centers(centers, extent, selectivity_percent, rng=rng)
    return Workload(
        queries=queries,
        region=region,
        selectivity_percent=selectivity_percent,
        seed=seed,
        description=(
            f"{region} hotspot phase @ {selectivity_percent}% around "
            f"{hotspot_center} ({hotspot_fraction:.0%} of extent)"
        ),
        extra={"hotspot_center": list(hotspot_center),
               "hotspot_fraction": hotspot_fraction},
    )


def _knn_heavy_workload(
    region: str,
    num_queries: int,
    selectivity_percent: float,
    *,
    hotspot_center: Tuple[float, float],
    hotspot_fraction: float,
    k: int,
    knn_share: float,
    seed: int,
) -> Workload:
    """A mixed phase: mostly kNN probes in the hotspot, some ranges."""
    rng = np.random.default_rng(seed)
    num_knn = int(round(knn_share * num_queries))
    extent = dataset_extent(region)
    hotspot = _sub_extent(extent, hotspot_center, hotspot_fraction)
    probes = _uniform_points_in(hotspot, num_knn, rng)
    ranges = hotspot_workload(
        region, num_queries - num_knn, selectivity_percent,
        hotspot_center=hotspot_center, hotspot_fraction=hotspot_fraction,
        rng=rng, seed=seed,
    )
    return Workload(
        queries=ranges.queries,
        region=region,
        selectivity_percent=selectivity_percent,
        seed=seed,
        description=f"{region} kNN-heavy phase (k={k}, {knn_share:.0%} kNN)",
        extra={"k": k, "knn_share": knn_share},
        knn_probes=probes,
        knn_k=k if num_knn else None,
    )


def moving_hotspot(
    region: str = "newyork",
    num_steps: int = 10,
    queries_per_step: int = 100,
    selectivity_percent: float = 0.0064,
    *,
    start: Tuple[float, float] = (0.15, 0.15),
    end: Tuple[float, float] = (0.85, 0.85),
    hotspot_fraction: float = 0.12,
    seed: int = 0,
) -> List[DriftPhase]:
    """Continuous drift: a hotspot translating smoothly across the extent.

    Where the piecewise-stationary scenarios model abrupt regime changes,
    this one models the traffic a *continuously* adapting engine must
    track: every step the hotspot's (relative) center moves one linear
    interpolation increment from ``start`` towards ``end``, and a fresh
    batch of ``queries_per_step`` small range queries concentrates around
    the new position.  A one-shot adapted layout fits step 0 and decays
    as the hotspot walks away from it — exactly the gap
    ``benchmarks/bench_online.py`` measures.

    Returns ``num_steps`` single-batch :class:`DriftPhase` objects
    (``step-00``, ``step-01``, …), deterministic given ``seed``.
    """
    if num_steps <= 0:
        raise ValueError(f"num_steps must be positive, got {num_steps}")
    if queries_per_step <= 0:
        raise ValueError(
            f"queries_per_step must be positive, got {queries_per_step}"
        )
    phases: List[DriftPhase] = []
    for step in range(num_steps):
        t = step / (num_steps - 1) if num_steps > 1 else 0.0
        center = (
            start[0] + t * (end[0] - start[0]),
            start[1] + t * (end[1] - start[1]),
        )
        phases.append(DriftPhase(
            f"step-{step:02d}",
            hotspot_workload(
                region, queries_per_step, selectivity_percent,
                hotspot_center=center, hotspot_fraction=hotspot_fraction,
                seed=seed + step,
            ),
        ))
    return phases


def drift_scenario(
    kind: str,
    region: str = "newyork",
    num_queries: int = 400,
    selectivity_percent: float = 0.0256,
    seed: int = 0,
    *,
    hotspot_fraction: float = 0.15,
    k: int = 10,
) -> List[DriftPhase]:
    """A piecewise-stationary scenario as a list of :class:`DriftPhase`.

    Each phase holds ``num_queries`` queries.  See the module docstring
    for what each ``kind`` models; phases are deterministic given ``seed``.
    """
    if num_queries <= 0:
        raise ValueError(f"num_queries must be positive, got {num_queries}")
    if kind == "hotspot_shift":
        return [
            DriftPhase("broad-uniform", uniform_centers_workload(
                region, num_queries, selectivity_percent, seed=seed,
            )),
            DriftPhase("hotspot-A", hotspot_workload(
                region, num_queries, selectivity_percent / 4.0,
                hotspot_center=(0.22, 0.3), hotspot_fraction=hotspot_fraction,
                seed=seed + 1,
            )),
            DriftPhase("hotspot-B", hotspot_workload(
                region, num_queries, selectivity_percent / 4.0,
                hotspot_center=(0.75, 0.7), hotspot_fraction=hotspot_fraction,
                seed=seed + 2,
            )),
        ]
    if kind == "zoom_in":
        phases = []
        focus = (0.6, 0.55)
        for step, (sel_scale, fraction) in enumerate(
            ((1.0, 1.0), (0.25, 0.4), (1 / 16.0, 0.15))
        ):
            phases.append(DriftPhase(
                f"zoom-{step}",
                hotspot_workload(
                    region, num_queries, selectivity_percent * sel_scale,
                    hotspot_center=focus, hotspot_fraction=fraction,
                    seed=seed + step,
                ),
            ))
        return phases
    if kind == "scan_heavy":
        return [
            DriftPhase("interactive", hotspot_workload(
                region, num_queries, selectivity_percent / 16.0,
                hotspot_center=(0.75, 0.7), hotspot_fraction=hotspot_fraction,
                seed=seed,
            )),
            DriftPhase("analytical", uniform_centers_workload(
                region, num_queries, max(selectivity_percent, 2.0), seed=seed + 1,
            )),
        ]
    if kind == "knn_heavy":
        return [
            DriftPhase("range-only", uniform_centers_workload(
                region, num_queries, selectivity_percent, seed=seed,
            )),
            DriftPhase("knn-heavy", _knn_heavy_workload(
                region, num_queries, selectivity_percent / 4.0,
                hotspot_center=(0.4, 0.45), hotspot_fraction=hotspot_fraction,
                k=k, knn_share=0.7, seed=seed + 1,
            )),
        ]
    raise ValueError(f"Unknown scenario kind {kind!r}; expected one of {SCENARIO_KINDS}")
