"""Synthetic point-of-interest datasets standing in for the paper's OSM extracts.

Each region is described by a :class:`RegionSpec`: a bounding box, a set of
Gaussian "urban" clusters (with per-cluster weight and spread), and a
fraction of uniform background noise.  The four named regions mimic the
qualitative structure visible in Figure 5 of the paper:

* ``calinev`` — a long, narrow band of clusters along a "coastline"
  diagonal with a few inland clusters (California coast + Nevada),
* ``newyork`` — a compact, extremely dense core with several satellite
  clusters (New York City),
* ``japan`` — an elongated archipelago-like arc of many medium clusters,
* ``iberia`` — a handful of widely separated large clusters (Madrid,
  Barcelona, Lisbon, ...) with sparse countryside in between.

The absolute coordinates are arbitrary; what matters for index behaviour is
the relative skew, cluster size and empty space, which these generators
reproduce deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.geometry import Point, Rect


@dataclass(frozen=True)
class ClusterSpec:
    """One Gaussian cluster of points of interest."""

    center_x: float
    center_y: float
    std_x: float
    std_y: float
    weight: float


@dataclass(frozen=True)
class RegionSpec:
    """A synthetic region: bounding box, clusters and background noise level."""

    name: str
    extent: Rect
    clusters: Tuple[ClusterSpec, ...]
    background_fraction: float

    @property
    def total_cluster_weight(self) -> float:
        return sum(cluster.weight for cluster in self.clusters)


def _diagonal_band(extent: Rect, count: int, spread: float, weights: Sequence[float]) -> Tuple[ClusterSpec, ...]:
    """Clusters arranged along the main diagonal of the extent (a "coastline")."""
    clusters = []
    for i in range(count):
        t = (i + 0.5) / count
        cx = extent.xmin + t * extent.width
        cy = extent.ymin + t * extent.height * 0.85 + 0.05 * extent.height
        clusters.append(
            ClusterSpec(cx, cy, spread * extent.width, spread * extent.height, weights[i % len(weights)])
        )
    return tuple(clusters)


_REGISTRY: Dict[str, RegionSpec] = {}


def _register(spec: RegionSpec) -> RegionSpec:
    _REGISTRY[spec.name] = spec
    return spec


_register(
    RegionSpec(
        name="calinev",
        extent=Rect(0.0, 0.0, 100.0, 100.0),
        clusters=_diagonal_band(
            Rect(0.0, 0.0, 100.0, 100.0),
            count=8,
            spread=0.035,
            weights=(4.0, 2.0, 1.0, 3.0, 1.5, 2.5, 1.0, 2.0),
        )
        + (
            ClusterSpec(70.0, 30.0, 6.0, 6.0, 1.0),
            ClusterSpec(85.0, 20.0, 4.0, 4.0, 0.7),
        ),
        background_fraction=0.08,
    )
)

_register(
    RegionSpec(
        name="newyork",
        extent=Rect(0.0, 0.0, 60.0, 60.0),
        clusters=(
            ClusterSpec(30.0, 32.0, 2.0, 3.5, 10.0),
            ClusterSpec(27.0, 27.0, 1.5, 1.5, 5.0),
            ClusterSpec(35.0, 38.0, 2.5, 2.0, 3.0),
            ClusterSpec(20.0, 40.0, 3.0, 3.0, 1.5),
            ClusterSpec(42.0, 22.0, 3.5, 3.0, 1.5),
            ClusterSpec(15.0, 15.0, 4.0, 4.0, 1.0),
        ),
        background_fraction=0.05,
    )
)

_register(
    RegionSpec(
        name="japan",
        extent=Rect(0.0, 0.0, 120.0, 160.0),
        clusters=tuple(
            ClusterSpec(
                20.0 + 0.55 * i * 10.0,
                20.0 + 0.80 * i * 10.0,
                3.0 + (i % 3),
                3.0 + ((i + 1) % 3),
                1.0 + (2.5 if i in (6, 9) else 0.0) + (1.0 if i % 4 == 0 else 0.0),
            )
            for i in range(14)
        ),
        background_fraction=0.12,
    )
)

_register(
    RegionSpec(
        name="iberia",
        extent=Rect(0.0, 0.0, 110.0, 90.0),
        clusters=(
            ClusterSpec(55.0, 45.0, 4.0, 4.0, 4.0),   # central capital
            ClusterSpec(95.0, 60.0, 3.5, 3.5, 3.0),   # north-east coastal city
            ClusterSpec(12.0, 35.0, 3.5, 3.5, 2.5),   # western coastal capital
            ClusterSpec(70.0, 15.0, 3.0, 3.0, 1.5),   # southern coast
            ClusterSpec(30.0, 70.0, 3.0, 3.0, 1.2),   # north-west
            ClusterSpec(85.0, 30.0, 2.5, 2.5, 1.0),
            ClusterSpec(45.0, 20.0, 2.5, 2.5, 1.0),
        ),
        background_fraction=0.18,
    )
)

REGION_NAMES: Tuple[str, ...] = tuple(sorted(_REGISTRY))


def region_spec(name: str) -> RegionSpec:
    """Look up a region specification by name (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"Unknown region {name!r}; available regions: {REGION_NAMES}")
    return _REGISTRY[key]


def dataset_extent(name: str) -> Rect:
    """Bounding box of a named region's data space."""
    return region_spec(name).extent


def generate_dataset(region: str, num_points: int, seed: int = 0) -> List[Point]:
    """Generate ``num_points`` points for a named region, deterministically.

    Cluster membership is sampled by weight, coordinates are Gaussian around
    the cluster center (clipped to the region extent), and a
    ``background_fraction`` of the points is uniform over the extent.
    """
    if num_points < 0:
        raise ValueError(f"num_points must be non-negative, got {num_points}")
    spec = region_spec(region)
    rng = np.random.default_rng(seed)
    return sample_from_spec(spec, num_points, rng)


def sample_from_spec(spec: RegionSpec, num_points: int, rng: np.random.Generator) -> List[Point]:
    """Sample points from a :class:`RegionSpec` using the provided generator."""
    if num_points == 0:
        return []
    extent = spec.extent
    num_background = int(round(spec.background_fraction * num_points))
    num_clustered = num_points - num_background

    points_xy = np.empty((num_points, 2), dtype=np.float64)

    if num_clustered > 0 and spec.clusters:
        weights = np.array([c.weight for c in spec.clusters], dtype=np.float64)
        weights = weights / weights.sum()
        assignments = rng.choice(len(spec.clusters), size=num_clustered, p=weights)
        for index in range(num_clustered):
            cluster = spec.clusters[assignments[index]]
            x = rng.normal(cluster.center_x, cluster.std_x)
            y = rng.normal(cluster.center_y, cluster.std_y)
            points_xy[index, 0] = min(max(x, extent.xmin), extent.xmax)
            points_xy[index, 1] = min(max(y, extent.ymin), extent.ymax)
    else:
        num_background = num_points
        num_clustered = 0

    if num_background > 0:
        points_xy[num_clustered:, 0] = rng.uniform(extent.xmin, extent.xmax, size=num_background)
        points_xy[num_clustered:, 1] = rng.uniform(extent.ymin, extent.ymax, size=num_background)

    return [Point(float(x), float(y)) for x, y in points_xy]


def dataset_summary(points: Sequence[Point], extent: Rect, grid: int = 8) -> np.ndarray:
    """A coarse occupancy grid of a dataset, used to "print" Figure 5 textually.

    Returns a ``grid x grid`` array of point counts; benchmark drivers render
    it as an ASCII heat map so the skew of each region is visible in text
    output.
    """
    counts = np.zeros((grid, grid), dtype=np.int64)
    if not points:
        return counts
    span_x = extent.width if extent.width > 0 else 1.0
    span_y = extent.height if extent.height > 0 else 1.0
    for point in points:
        ix = min(grid - 1, int((point.x - extent.xmin) / span_x * grid))
        iy = min(grid - 1, int((point.y - extent.ymin) / span_y * grid))
        counts[iy, ix] += 1
    return counts
