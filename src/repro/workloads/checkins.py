"""Synthetic "check-in" locations that drive the skewed query workloads.

The paper samples range-query centers from Gowalla check-ins restricted to
each region, so the *query* distribution is skewed towards popular venues
and differs from the underlying POI distribution.  This module reproduces
that setup synthetically: check-in centers are drawn from the same
region's clusters but with a *re-weighted* popularity distribution (a few
clusters dominate, most clusters receive almost no check-ins) plus a small
uniform component, giving a workload that overlaps the data but concentrates
on different hot spots.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.geometry import Point
from repro.workloads.datasets import RegionSpec, region_spec, sample_from_spec


def _popularity_weights(num_clusters: int, rng: np.random.Generator,
                        concentration: float) -> np.ndarray:
    """A heavy-tailed popularity vector over clusters.

    A Zipf-like profile (rank ``r`` gets weight ``1 / r**concentration``)
    randomly permuted over the clusters, so the popular check-in clusters
    generally differ from the heaviest data clusters.
    """
    ranks = np.arange(1, num_clusters + 1, dtype=np.float64)
    profile = 1.0 / np.power(ranks, concentration)
    permutation = rng.permutation(num_clusters)
    weights = np.empty(num_clusters, dtype=np.float64)
    weights[permutation] = profile
    return weights / weights.sum()


def generate_checkin_centers(
    region: str,
    num_centers: int,
    seed: int = 0,
    concentration: float = 1.6,
    uniform_fraction: float = 0.05,
    spec: Optional[RegionSpec] = None,
) -> List[Point]:
    """Generate skewed query centers ("check-ins") for a named region.

    Parameters
    ----------
    region:
        Name of the region (see :data:`repro.workloads.datasets.REGION_NAMES`).
    num_centers:
        How many check-in locations to produce.
    seed:
        Seed of the generator.  The cluster popularity permutation depends on
        the seed, so different seeds produce *differently* skewed workloads —
        exactly what the workload-change experiment (Figure 12) needs.
    concentration:
        Zipf exponent of the popularity profile; larger values concentrate
        check-ins on fewer clusters.
    uniform_fraction:
        Fraction of check-ins scattered uniformly over the region.
    spec:
        Optional explicit :class:`RegionSpec` overriding the named lookup.
    """
    if num_centers < 0:
        raise ValueError(f"num_centers must be non-negative, got {num_centers}")
    base_spec = spec if spec is not None else region_spec(region)
    rng = np.random.default_rng(seed)
    if not base_spec.clusters:
        return sample_from_spec(base_spec, num_centers, rng)
    popularity = _popularity_weights(len(base_spec.clusters), rng, concentration)
    reweighted_clusters = tuple(
        type(cluster)(
            cluster.center_x,
            cluster.center_y,
            # Check-ins hug the venue more tightly than POIs spread around it.
            cluster.std_x * 0.6,
            cluster.std_y * 0.6,
            float(weight),
        )
        for cluster, weight in zip(base_spec.clusters, popularity)
    )
    checkin_spec = RegionSpec(
        name=f"{base_spec.name}-checkins",
        extent=base_spec.extent,
        clusters=reweighted_clusters,
        background_fraction=uniform_fraction,
    )
    return sample_from_spec(checkin_spec, num_centers, rng)


def popularity_histogram(centers: Sequence[Point], spec: RegionSpec) -> List[int]:
    """Count how many check-ins fall nearest to each cluster center.

    Used by tests to verify the check-in distribution is genuinely skewed
    (a few clusters should absorb most of the mass).
    """
    counts = [0] * len(spec.clusters)
    for center in centers:
        best_index = 0
        best_distance = float("inf")
        for index, cluster in enumerate(spec.clusters):
            dx = center.x - cluster.center_x
            dy = center.y - cluster.center_y
            distance = dx * dx + dy * dy
            if distance < best_distance:
                best_distance = distance
                best_index = index
        counts[best_index] += 1
    return counts
