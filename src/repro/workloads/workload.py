"""The first-class, frozen, columnar :class:`Workload` object.

The paper's thesis is that an index laid out for an *observed query
workload* beats workload-oblivious layouts — which makes the workload
itself a first-class artefact of the system, not an ad-hoc list of
rectangles.  This module promotes it to one:

* **Columnar tables.**  A workload holds three contiguous NumPy tables —
  range rectangles ``(n, 4)``, kNN probes ``(m, 2)`` with their ``k``
  column, radius probes ``(p, 2)`` with their radius column — so scoring a
  layout against a million observed queries stays array-speed.
* **Frozen.**  The tables are read-only and attributes cannot be rebound
  after construction; a workload can be shared between an engine, its
  advisor and a persistence layer without defensive copies.
* **Views and algebra.**  Per-kind views (:attr:`Workload.range_view`,
  :attr:`Workload.knn_view`, :attr:`Workload.radius_view`), plus
  :meth:`Workload.merge`, :meth:`Workload.sample`, :meth:`Workload.split`
  and a content :meth:`Workload.fingerprint`.
* **Persistence.**  :meth:`Workload.save` / :meth:`Workload.load`
  round-trip byte-identically through the snapshot container of
  :mod:`repro.persistence` as NPY members.

Both the query generators of :mod:`repro.workloads.queries` and the
engine's :class:`~repro.workload_log.WorkloadLog` produce this type, so the
same object describes an *anticipated* workload at build time and an
*observed* one at :meth:`~repro.engine.SpatialEngine.adapt` time.

Backwards compatibility: the pre-redesign ``Workload`` was a dataclass
wrapping a ``queries`` list of :class:`~repro.geometry.Rect`.  The
sequence protocol (``len`` / iteration / indexing over the boxed range
rectangles via the lazily cached :attr:`Workload.queries` view) is kept,
so every call site that treated a workload as a list of rectangles keeps
working unchanged.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Point, Rect

__all__ = ["Workload", "KnnView", "RadiusView", "RangeView"]


def _readonly(array: np.ndarray) -> np.ndarray:
    array = np.ascontiguousarray(array)
    array.setflags(write=False)
    return array


def _as_rect_table(value) -> np.ndarray:
    """Coerce rectangles (boxed or tabular) into a read-only ``(n, 4)`` table."""
    if value is None:
        return _readonly(np.empty((0, 4), dtype=np.float64))
    if isinstance(value, np.ndarray):
        table = np.array(value, dtype=np.float64, copy=True)
        if table.size == 0:
            table = table.reshape(0, 4)
        if table.ndim != 2 or table.shape[1] != 4:
            raise ValueError(f"range table must have shape (n, 4), got {table.shape}")
        return _readonly(table)
    rects = list(value)
    table = np.empty((len(rects), 4), dtype=np.float64)
    for i, rect in enumerate(rects):
        table[i, 0] = rect.xmin
        table[i, 1] = rect.ymin
        table[i, 2] = rect.xmax
        table[i, 3] = rect.ymax
    return _readonly(table)


def _as_probe_table(value, label: str) -> np.ndarray:
    """Coerce probe centers (boxed or tabular) into a read-only ``(n, 2)`` table."""
    if value is None:
        return _readonly(np.empty((0, 2), dtype=np.float64))
    if isinstance(value, np.ndarray):
        table = np.array(value, dtype=np.float64, copy=True)
        if table.size == 0:
            table = table.reshape(0, 2)
        if table.ndim != 2 or table.shape[1] != 2:
            raise ValueError(f"{label} table must have shape (n, 2), got {table.shape}")
        return _readonly(table)
    probes = list(value)
    table = np.empty((len(probes), 2), dtype=np.float64)
    for i, probe in enumerate(probes):
        if isinstance(probe, Point):
            table[i, 0] = probe.x
            table[i, 1] = probe.y
        else:
            table[i, 0], table[i, 1] = probe
    return _readonly(table)


def _as_column(value, length: int, dtype, label: str) -> np.ndarray:
    """Broadcast a scalar (or validate a column) against ``length`` rows."""
    if value is None:
        if length != 0:
            raise ValueError(f"{label} is required when probes are given")
        return _readonly(np.empty((0,), dtype=dtype))
    if np.isscalar(value):
        return _readonly(np.full(length, value, dtype=dtype))
    column = np.array(value, dtype=dtype, copy=True).reshape(-1)
    if column.shape[0] != length:
        raise ValueError(
            f"{label} has {column.shape[0]} rows but there are {length} probes"
        )
    return _readonly(column)


class RangeView:
    """Read-only per-kind view over a workload's range-query table."""

    __slots__ = ("_workload",)

    def __init__(self, workload: "Workload") -> None:
        self._workload = workload

    @property
    def table(self) -> np.ndarray:
        """The ``(n, 4)`` ``[xmin, ymin, xmax, ymax]`` column table."""
        return self._workload.ranges

    def rects(self) -> List[Rect]:
        """The boxed rectangles (cached on the owning workload)."""
        return self._workload.queries

    def __len__(self) -> int:
        return int(self._workload.ranges.shape[0])

    def __iter__(self) -> Iterator[Rect]:
        return iter(self.rects())


class KnnView:
    """Read-only per-kind view over a workload's kNN-probe columns."""

    __slots__ = ("_workload",)

    def __init__(self, workload: "Workload") -> None:
        self._workload = workload

    @property
    def probes(self) -> np.ndarray:
        """The ``(m, 2)`` probe-center table."""
        return self._workload.knn_probes

    @property
    def ks(self) -> np.ndarray:
        """The ``(m,)`` int64 neighbour-count column."""
        return self._workload.knn_k

    def points(self) -> List[Point]:
        table = self.probes
        return [Point(float(x), float(y)) for x, y in table]

    def __len__(self) -> int:
        return int(self._workload.knn_probes.shape[0])


class RadiusView:
    """Read-only per-kind view over a workload's radius-probe columns."""

    __slots__ = ("_workload",)

    def __init__(self, workload: "Workload") -> None:
        self._workload = workload

    @property
    def probes(self) -> np.ndarray:
        """The ``(p, 2)`` probe-center table."""
        return self._workload.radius_probes

    @property
    def radii(self) -> np.ndarray:
        """The ``(p,)`` float64 radius column."""
        return self._workload.radius_radii

    def points(self) -> List[Point]:
        table = self.probes
        return [Point(float(x), float(y)) for x, y in table]

    def __len__(self) -> int:
        return int(self._workload.radius_probes.shape[0])


class Workload:
    """A frozen, columnar query workload plus the metadata describing it.

    Construct from boxed rectangles (the legacy shape every generator and
    test used)::

        Workload(queries=[Rect(...), ...], region="newyork", seed=1)

    or from columnar tables (what :class:`~repro.workload_log.WorkloadLog`
    and the persistence layer produce)::

        Workload(ranges=rect_table, knn_probes=centers, knn_k=10,
                 radius_probes=centers2, radius_radii=0.05)

    The sequence protocol (``len(w)``, ``iter(w)``, ``w[i]``) covers the
    boxed *range* rectangles for backwards compatibility with the
    list-of-rects era; ``len`` counts every recorded query of every kind.
    """

    def __init__(
        self,
        queries: Optional[Sequence[Rect]] = None,
        region: str = "",
        selectivity_percent: float = 0.0,
        seed: int = 0,
        description: str = "",
        extra: Optional[dict] = None,
        *,
        ranges=None,
        knn_probes=None,
        knn_k=None,
        radius_probes=None,
        radius_radii=None,
    ) -> None:
        if queries is not None and ranges is not None:
            raise ValueError("pass either boxed queries or a ranges table, not both")
        table = _as_rect_table(ranges if ranges is not None else queries)
        if not np.all(table[:, 0] <= table[:, 2]) or not np.all(table[:, 1] <= table[:, 3]):
            raise ValueError("range table rows must satisfy xmin <= xmax and ymin <= ymax")
        knn_table = _as_probe_table(knn_probes, "knn_probes")
        k_column = _as_column(knn_k, knn_table.shape[0], np.int64, "knn_k")
        if knn_table.shape[0] and (k_column <= 0).any():
            raise ValueError("knn_k entries must be positive")
        radius_table = _as_probe_table(radius_probes, "radius_probes")
        r_column = _as_column(radius_radii, radius_table.shape[0], np.float64, "radius_radii")
        if radius_table.shape[0] and ((r_column < 0).any() or not np.isfinite(r_column).all()):
            raise ValueError("radius_radii entries must be finite and non-negative")
        self._ranges = table
        self._knn_probes = knn_table
        self._knn_k = k_column
        self._radius_probes = radius_table
        self._radius_radii = r_column
        self.region = str(region)
        self.selectivity_percent = float(selectivity_percent)
        self.seed = seed
        self.description = str(description)
        self.extra = dict(extra) if extra else {}
        self._rects_cache: Optional[List[Rect]] = (
            list(queries) if queries is not None else None
        )
        self._frozen = True

    # ------------------------------------------------------------------
    # frozenness
    # ------------------------------------------------------------------
    def __setattr__(self, name, value) -> None:
        if getattr(self, "_frozen", False) and name != "_rects_cache":
            raise AttributeError(
                f"Workload is frozen; cannot assign {name!r} — build a new "
                "workload with merge()/sample()/split() or the constructor"
            )
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # columnar tables and per-kind views
    # ------------------------------------------------------------------
    @property
    def ranges(self) -> np.ndarray:
        """Read-only ``(n, 4)`` ``[xmin, ymin, xmax, ymax]`` table."""
        return self._ranges

    @property
    def knn_probes(self) -> np.ndarray:
        """Read-only ``(m, 2)`` kNN probe-center table."""
        return self._knn_probes

    @property
    def knn_k(self) -> np.ndarray:
        """Read-only ``(m,)`` int64 neighbour counts, aligned with probes."""
        return self._knn_k

    @property
    def radius_probes(self) -> np.ndarray:
        """Read-only ``(p, 2)`` radius probe-center table."""
        return self._radius_probes

    @property
    def radius_radii(self) -> np.ndarray:
        """Read-only ``(p,)`` float64 radii, aligned with probes."""
        return self._radius_radii

    @property
    def range_view(self) -> RangeView:
        return RangeView(self)

    @property
    def knn_view(self) -> KnnView:
        return KnnView(self)

    @property
    def radius_view(self) -> RadiusView:
        return RadiusView(self)

    @property
    def num_ranges(self) -> int:
        return int(self._ranges.shape[0])

    @property
    def num_knn(self) -> int:
        return int(self._knn_probes.shape[0])

    @property
    def num_radius(self) -> int:
        return int(self._radius_probes.shape[0])

    @property
    def kinds(self) -> Tuple[str, ...]:
        """The query kinds present, in canonical order."""
        present = []
        if self.num_ranges:
            present.append("range")
        if self.num_knn:
            present.append("knn")
        if self.num_radius:
            present.append("radius")
        return tuple(present)

    # ------------------------------------------------------------------
    # legacy list-of-rects protocol
    # ------------------------------------------------------------------
    @property
    def queries(self) -> List[Rect]:
        """The boxed range rectangles (lazily boxed once, then cached)."""
        cache = self._rects_cache
        if cache is None:
            table = self._ranges
            cache = [
                Rect(float(r[0]), float(r[1]), float(r[2]), float(r[3]))
                for r in table
            ]
            self._rects_cache = cache
        return cache

    def __len__(self) -> int:
        return self.num_ranges + self.num_knn + self.num_radius

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Rect]:
        return iter(self.queries)

    def __getitem__(self, index):
        return self.queries[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Workload):
            return NotImplemented
        return (
            np.array_equal(self._ranges, other._ranges)
            and np.array_equal(self._knn_probes, other._knn_probes)
            and np.array_equal(self._knn_k, other._knn_k)
            and np.array_equal(self._radius_probes, other._radius_probes)
            and np.array_equal(self._radius_radii, other._radius_radii)
            and self.region == other.region
            and self.selectivity_percent == other.selectivity_percent
            and self.seed == other.seed
            and self.description == other.description
            and self.extra == other.extra
        )

    __hash__ = None  # mutable ancestors compared by content; keep unhashable

    def __repr__(self) -> str:
        parts = [f"{self.num_ranges} ranges"]
        if self.num_knn:
            parts.append(f"{self.num_knn} knn")
        if self.num_radius:
            parts.append(f"{self.num_radius} radius")
        label = f" {self.description!r}" if self.description else ""
        return f"Workload({', '.join(parts)}{label})"

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def merge(self, *others: "Workload") -> "Workload":
        """Concatenate this workload with ``others`` (metadata from ``self``)."""
        workloads = (self,) + tuple(others)
        for w in workloads:
            if not isinstance(w, Workload):
                raise TypeError(f"merge expects Workload operands, got {type(w).__name__}")
        return Workload(
            region=self.region,
            selectivity_percent=self.selectivity_percent,
            seed=self.seed,
            description=self.description,
            extra=self.extra,
            ranges=np.concatenate([w._ranges for w in workloads]),
            knn_probes=np.concatenate([w._knn_probes for w in workloads]),
            knn_k=np.concatenate([w._knn_k for w in workloads]),
            radius_probes=np.concatenate([w._radius_probes for w in workloads]),
            radius_radii=np.concatenate([w._radius_radii for w in workloads]),
        )

    def __add__(self, other: "Workload") -> "Workload":
        if not isinstance(other, Workload):
            return NotImplemented
        return self.merge(other)

    def _take(self, keep: np.ndarray) -> "Workload":
        """A new workload holding the rows selected by a global boolean mask.

        The global row space is ``[ranges | knn | radius]`` in that order.
        """
        n, m = self.num_ranges, self.num_knn
        range_mask = keep[:n]
        knn_mask = keep[n:n + m]
        radius_mask = keep[n + m:]
        return Workload(
            region=self.region,
            selectivity_percent=self.selectivity_percent,
            seed=self.seed,
            description=self.description,
            extra=self.extra,
            ranges=self._ranges[range_mask],
            knn_probes=self._knn_probes[knn_mask],
            knn_k=self._knn_k[knn_mask],
            radius_probes=self._radius_probes[radius_mask],
            radius_radii=self._radius_radii[radius_mask],
        )

    def sample(
        self, num: int, seed: int = 0, rng: Optional[np.random.Generator] = None
    ) -> "Workload":
        """A uniform sample of ``num`` queries (without replacement).

        Sampling is uniform over the *global* row space, so kinds are kept
        in proportion to their share of the workload; original row order is
        preserved within each kind.
        """
        total = len(self)
        if not 0 <= num <= total:
            raise ValueError(f"sample size must be in [0, {total}], got {num}")
        rng = rng if rng is not None else np.random.default_rng(seed)
        keep = np.zeros(total, dtype=bool)
        keep[rng.choice(total, size=num, replace=False)] = True
        return self._take(keep)

    def split(
        self, fraction: float, seed: int = 0, rng: Optional[np.random.Generator] = None
    ) -> Tuple["Workload", "Workload"]:
        """Random partition into ``(first, second)`` with ``fraction`` in first."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        total = len(self)
        num_first = int(round(fraction * total))
        rng = rng if rng is not None else np.random.default_rng(seed)
        keep = np.zeros(total, dtype=bool)
        keep[rng.choice(total, size=num_first, replace=False)] = True
        return self._take(keep), self._take(~keep)

    def fingerprint(self) -> str:
        """Order-sensitive content fingerprint across every kind's table.

        Two workloads with the same tables in the same order (metadata
        excluded) produce the same fingerprint; used by the engine to tell
        whether the observed workload changed since the last ``adapt``.
        """
        from repro.persistence import workload_fingerprint

        parts = [workload_fingerprint(self._ranges)]
        knn4 = np.column_stack([
            self._knn_probes.reshape(-1, 2),
            self._knn_k.astype(np.float64),
            np.zeros(self.num_knn, dtype=np.float64),
        ])
        parts.append(workload_fingerprint(knn4))
        radius4 = np.column_stack([
            self._radius_probes.reshape(-1, 2),
            self._radius_radii,
            np.zeros(self.num_radius, dtype=np.float64),
        ])
        parts.append(workload_fingerprint(radius4))
        return "/".join(parts)

    # ------------------------------------------------------------------
    # layout derivation
    # ------------------------------------------------------------------
    def equivalent_ranges(
        self,
        total_points: Optional[int] = None,
        extent: Optional[Rect] = None,
    ) -> np.ndarray:
        """Every query of every kind as an equivalent range-rectangle table.

        The paper's Section 6.3 remark treats kNN and radius queries as
        (sets of) range queries; this is the table a layout optimiser
        consumes.  Radius probes become their bounding squares.  A kNN
        probe's square uses the expected ``k``-neighbour radius under a
        locally uniform density, ``sqrt(k * |extent| / (pi * N))`` — the
        same first-order estimate the expanding-window kNN kernel starts
        from; without ``total_points``/``extent`` the probe degrades to a
        degenerate point rectangle (still a valid optimisation target:
        it concentrates mass where the probes land).
        """
        tables = [np.asarray(self._ranges, dtype=np.float64)]
        if self.num_knn:
            xy = self._knn_probes
            if total_points and extent is not None and extent.area > 0:
                radii = np.sqrt(
                    self._knn_k.astype(np.float64) * extent.area
                    / (math.pi * float(total_points))
                )
            else:
                radii = np.zeros(self.num_knn, dtype=np.float64)
            tables.append(np.column_stack([
                xy[:, 0] - radii, xy[:, 1] - radii,
                xy[:, 0] + radii, xy[:, 1] + radii,
            ]))
        if self.num_radius:
            xy = self._radius_probes
            r = self._radius_radii
            tables.append(np.column_stack([
                xy[:, 0] - r, xy[:, 1] - r, xy[:, 0] + r, xy[:, 1] + r,
            ]))
        return np.concatenate(tables) if len(tables) > 1 else tables[0]

    def equivalent_rects(
        self,
        total_points: Optional[int] = None,
        extent: Optional[Rect] = None,
    ) -> List[Rect]:
        """Boxed form of :meth:`equivalent_ranges` (what index builders take)."""
        table = self.equivalent_ranges(total_points, extent)
        return [Rect(float(r[0]), float(r[1]), float(r[2]), float(r[3])) for r in table]

    def to_plans(self) -> List:
        """Typed query plans for replay through ``engine.execute_many``."""
        from repro.query import KnnQuery, RadiusQuery, RangeQuery

        plans: List = [RangeQuery(rect) for rect in self.queries]
        plans.extend(
            KnnQuery(Point(float(x), float(y)), int(k))
            for (x, y), k in zip(self._knn_probes, self._knn_k)
        )
        plans.extend(
            RadiusQuery(Point(float(x), float(y)), float(r))
            for (x, y), r in zip(self._radius_probes, self._radius_radii)
        )
        return plans

    # ------------------------------------------------------------------
    # construction helpers / persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_rects(cls, rects: Sequence[Rect], **metadata) -> "Workload":
        """A pure range workload from boxed rectangles (thin adapter)."""
        return cls(queries=list(rects), **metadata)

    def metadata(self) -> dict:
        """The JSON-friendly metadata block persisted alongside the tables."""
        return {
            "region": self.region,
            "selectivity_percent": self.selectivity_percent,
            "seed": self.seed,
            "description": self.description,
            "extra": dict(self.extra),
        }

    def tables(self) -> dict:
        """The columnar tables keyed by their canonical member names."""
        return {
            "ranges": self._ranges,
            "knn_probes": self._knn_probes,
            "knn_k": self._knn_k,
            "radius_probes": self._radius_probes,
            "radius_radii": self._radius_radii,
        }

    @classmethod
    def from_tables(cls, tables: dict, metadata: Optional[dict] = None) -> "Workload":
        """Rebuild a workload from :meth:`tables` / :meth:`metadata` output."""
        metadata = metadata or {}
        return cls(
            region=metadata.get("region", ""),
            selectivity_percent=metadata.get("selectivity_percent", 0.0),
            seed=metadata.get("seed", 0),
            description=metadata.get("description", ""),
            extra=metadata.get("extra") or {},
            ranges=tables.get("ranges"),
            knn_probes=tables.get("knn_probes"),
            knn_k=tables.get("knn_k"),
            radius_probes=tables.get("radius_probes"),
            radius_radii=tables.get("radius_radii"),
        )

    def save(self, path) -> None:
        """Persist to a snapshot container (see :func:`repro.persistence.save_workload`)."""
        from repro.persistence import save_workload

        save_workload(self, path)

    @classmethod
    def load(cls, path) -> "Workload":
        """Restore a workload saved by :meth:`save`."""
        from repro.persistence import load_workload

        return load_workload(path)
