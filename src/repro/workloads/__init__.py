"""Datasets and query workloads.

The paper evaluates on OpenStreetMap points of interest from four regions
(California/Nevada coast, New York City, Japan, the Iberian peninsula) and
on skewed range-query workloads whose centers follow Gowalla check-in
locations — i.e. the query distribution is skewed *differently* from the
data distribution.  Neither dataset ships with this offline reproduction,
so this subpackage provides deterministic synthetic generators with the
same qualitative structure:

* :mod:`repro.workloads.datasets` — per-region point generators (clustered
  urban cores + sparse background, with region-specific cluster layouts),
* :mod:`repro.workloads.checkins` — "check-in" generators producing query
  centers concentrated on a popularity-reweighted subset of the clusters,
* :mod:`repro.workloads.queries` — range-query workloads at a target
  selectivity, point-query workloads, uniform insert streams, and the
  workload-drift blending used by the workload-change experiment,
* :mod:`repro.workloads.workload` — the first-class frozen columnar
  :class:`Workload` object every generator returns and the adaptive
  engine lifecycle (observe → advise → adapt) consumes,
* :mod:`repro.workloads.drift` — piecewise-stationary drifting-workload
  scenarios (hotspot shift, zoom-in, kNN-heavy phases) for the
  adaptation benchmark, tests and examples.

Every generator takes an explicit seed (and accepts an ``rng`` override),
so all experiments are reproducible.
"""

from repro.workloads.datasets import (
    REGION_NAMES,
    RegionSpec,
    dataset_extent,
    generate_dataset,
    region_spec,
)
from repro.workloads.checkins import generate_checkin_centers
from repro.workloads.workload import KnnView, RadiusView, RangeView, Workload
from repro.workloads.queries import (
    ProbeWorkload,
    blend_workloads,
    generate_insert_points,
    generate_knn_workload,
    generate_point_queries,
    generate_probe_points,
    generate_range_workload,
    range_queries_from_centers,
    uniform_range_workload,
)
from repro.workloads.drift import (
    SCENARIO_KINDS,
    DriftPhase,
    drift_scenario,
    hotspot_workload,
    moving_hotspot,
    uniform_centers_workload,
)

__all__ = [
    "KnnView",
    "RadiusView",
    "RangeView",
    "SCENARIO_KINDS",
    "DriftPhase",
    "drift_scenario",
    "hotspot_workload",
    "moving_hotspot",
    "uniform_centers_workload",
    "REGION_NAMES",
    "RegionSpec",
    "region_spec",
    "generate_dataset",
    "dataset_extent",
    "generate_checkin_centers",
    "Workload",
    "range_queries_from_centers",
    "generate_range_workload",
    "uniform_range_workload",
    "generate_point_queries",
    "generate_insert_points",
    "generate_probe_points",
    "generate_knn_workload",
    "ProbeWorkload",
    "blend_workloads",
]
