"""Query-workload construction: range queries, point queries, inserts, drift.

The paper's range-query workloads are built by sampling query centers from
check-in locations and growing a rectangle around each center until it
covers a target fraction of the *data space* (selectivity is expressed as a
percentage of the data-space area, Section 6.2).  Point queries are sampled
from the data itself (Section 6.4), insert streams are uniform over the
data space (Section 6.7), and the workload-change experiment (Section 6.8)
evaluates an index built for one workload on progressively blended
replacement workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry import Point, Rect
from repro.workloads.checkins import generate_checkin_centers
from repro.workloads.datasets import dataset_extent, generate_dataset
from repro.workloads.workload import Workload

#: The selectivities (percent of data-space area) used throughout Section 6.
PAPER_SELECTIVITIES = (0.0016, 0.0064, 0.0256, 0.1024)

#: Every generator threads an explicit ``seed`` (and accepts an ``rng``
#: override); streams derived from one seed are decorrelated with these
#: fixed offsets rather than ad-hoc constants scattered per call site.
_RANGE_RNG_OFFSET = 1
_POINT_HIT_RNG_OFFSET = 7
_POINT_MISS_SEED_OFFSET = 13
_DATA_PROBE_SEED_OFFSET = 23


def _clamp_interval(low: float, high: float, bound_low: float, bound_high: float):
    """Shift an interval to lie inside ``[bound_low, bound_high]`` keeping its length."""
    length = high - low
    span = bound_high - bound_low
    if length >= span:
        return bound_low, bound_high
    if low < bound_low:
        return bound_low, bound_low + length
    if high > bound_high:
        return bound_high - length, bound_high
    return low, high


def range_queries_from_centers(
    centers: Sequence[Point],
    extent: Rect,
    selectivity_percent: float,
    aspect_jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> List[Rect]:
    """Grow a query rectangle around each center to a target data-space coverage.

    ``selectivity_percent`` is the area of the query as a percentage of the
    data-space area (the paper's convention).  Queries near the boundary are
    shifted inwards so every query lies inside the data space and keeps its
    full area.  With ``aspect_jitter > 0``, query aspect ratios vary
    log-uniformly in ``[1/(1+jitter), 1+jitter]`` instead of being square.
    Randomness comes from ``rng`` when given, else from ``seed`` (the old
    behaviour of silently seeding with 0 is now an explicit default).
    """
    if selectivity_percent <= 0:
        raise ValueError(f"selectivity_percent must be positive, got {selectivity_percent}")
    if aspect_jitter < 0:
        raise ValueError(f"aspect_jitter must be non-negative, got {aspect_jitter}")
    area = extent.area * selectivity_percent / 100.0
    rng = rng if rng is not None else np.random.default_rng(seed)
    queries: List[Rect] = []
    for center in centers:
        if aspect_jitter > 0:
            aspect = float(np.exp(rng.uniform(-np.log1p(aspect_jitter), np.log1p(aspect_jitter))))
        else:
            aspect = 1.0
        width = float(np.sqrt(area * aspect))
        height = area / width
        xmin, xmax = _clamp_interval(
            center.x - width / 2.0, center.x + width / 2.0, extent.xmin, extent.xmax
        )
        ymin, ymax = _clamp_interval(
            center.y - height / 2.0, center.y + height / 2.0, extent.ymin, extent.ymax
        )
        queries.append(Rect(xmin, ymin, xmax, ymax))
    return queries


def generate_range_workload(
    region: str,
    num_queries: int,
    selectivity_percent: float,
    seed: int = 0,
    aspect_jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> Workload:
    """The paper's semi-synthetic workload: check-in centers + fixed selectivity.

    Returns a first-class :class:`~repro.workloads.Workload`; all
    randomness is threaded from ``seed`` (or an explicit ``rng``).
    """
    extent = dataset_extent(region)
    centers = generate_checkin_centers(region, num_queries, seed=seed)
    rng = rng if rng is not None else np.random.default_rng(seed + _RANGE_RNG_OFFSET)
    queries = range_queries_from_centers(
        centers, extent, selectivity_percent, aspect_jitter=aspect_jitter, rng=rng
    )
    return Workload(
        queries=queries,
        region=region,
        selectivity_percent=selectivity_percent,
        seed=seed,
        description=f"{region} check-in workload @ {selectivity_percent}%",
    )


def uniform_range_workload(
    region: str,
    num_queries: int,
    selectivity_percent: float,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Workload:
    """Range queries with centers uniform over the data space (Figure 12, left)."""
    extent = dataset_extent(region)
    rng = rng if rng is not None else np.random.default_rng(seed)
    centers = [
        Point(float(x), float(y))
        for x, y in zip(
            rng.uniform(extent.xmin, extent.xmax, size=num_queries),
            rng.uniform(extent.ymin, extent.ymax, size=num_queries),
        )
    ]
    queries = range_queries_from_centers(centers, extent, selectivity_percent, rng=rng)
    return Workload(
        queries=queries,
        region=region,
        selectivity_percent=selectivity_percent,
        seed=seed,
        description=f"{region} uniform workload @ {selectivity_percent}%",
    )


def generate_point_queries(
    region: str,
    num_queries: int,
    num_points: int,
    seed: int = 0,
    hit_fraction: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> List[Point]:
    """Point queries sampled from the data distribution (Section 6.4).

    ``hit_fraction`` controls how many of the queries are existing data
    points (the rest are fresh samples from the same distribution and will
    usually miss), letting tests exercise both outcomes.  Returns a plain
    point list (the shape :class:`~repro.query.PointQuery` plans and the
    measurement harness consume).
    """
    if not 0.0 <= hit_fraction <= 1.0:
        raise ValueError(f"hit_fraction must be in [0, 1], got {hit_fraction}")
    data = generate_dataset(region, num_points, seed=seed)
    rng = rng if rng is not None else np.random.default_rng(seed + _POINT_HIT_RNG_OFFSET)
    num_hits = int(round(hit_fraction * num_queries))
    hits: List[Point] = []
    if data and num_hits > 0:
        indices = rng.integers(0, len(data), size=num_hits)
        hits = [data[i] for i in indices]
    misses = generate_dataset(region, num_queries - num_hits, seed=seed + _POINT_MISS_SEED_OFFSET)
    return hits + misses


@dataclass
class ProbeWorkload:
    """A kNN / join probe workload plus the metadata describing it.

    ``probes`` are the query centers (kNN) or the outer relation (joins);
    ``k`` is the neighbour count for kNN scenarios (0 when unused).  This
    is the thin list-of-points adapter kept for the pre-columnar call
    sites; :meth:`as_workload` lifts it into the first-class
    :class:`~repro.workloads.Workload` the adaptive engine consumes.
    """

    probes: List[Point]
    region: str = ""
    k: int = 0
    seed: int = 0
    source: str = "checkins"
    description: str = ""
    extra: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.probes)

    def __iter__(self):
        return iter(self.probes)

    def __getitem__(self, index: int) -> Point:
        return self.probes[index]

    def as_workload(self, radius: Optional[float] = None) -> Workload:
        """Lift into a columnar :class:`~repro.workloads.Workload`.

        With ``radius`` the probes become radius queries; otherwise they
        become kNN probes using this workload's ``k`` (which must then be
        positive).
        """
        meta = dict(
            region=self.region, seed=self.seed,
            description=self.description, extra=self.extra,
        )
        if radius is not None:
            return Workload(radius_probes=self.probes, radius_radii=radius, **meta)
        if self.k <= 0:
            raise ValueError(
                "ProbeWorkload.as_workload needs k > 0 for kNN probes "
                "(or pass radius=... for radius probes)"
            )
        return Workload(knn_probes=self.probes, knn_k=self.k, **meta)


def generate_probe_points(
    region: str, num_probes: int, seed: int = 0, source: str = "checkins"
) -> List[Point]:
    """Probe points for the kNN and spatial-join scenarios.

    The paper's Section 6.3 remark treats kNN and joins as sets of range
    queries, so their probes play the role the range-query *centers* play
    in Section 6.2.  ``source`` selects the probe distribution:

    * ``"checkins"`` (default) — probes follow the skewed check-in
      distribution, i.e. the same skew-differs-from-data regime as the
      paper's range workloads,
    * ``"data"`` — probes sampled from the data distribution itself
      (self-join flavour),
    * ``"uniform"`` — probes uniform over the region's data space.
    """
    if num_probes < 0:
        raise ValueError(f"num_probes must be non-negative, got {num_probes}")
    if source == "checkins":
        return generate_checkin_centers(region, num_probes, seed=seed)
    if source == "data":
        return generate_dataset(region, num_probes, seed=seed + _DATA_PROBE_SEED_OFFSET)
    if source == "uniform":
        extent = dataset_extent(region)
        rng = np.random.default_rng(seed)
        return [
            Point(float(x), float(y))
            for x, y in zip(
                rng.uniform(extent.xmin, extent.xmax, size=num_probes),
                rng.uniform(extent.ymin, extent.ymax, size=num_probes),
            )
        ]
    raise ValueError(
        f"Unknown probe source {source!r}; expected checkins, data or uniform"
    )


def generate_knn_workload(
    region: str, num_probes: int, k: int = 10, seed: int = 0, source: str = "checkins"
) -> ProbeWorkload:
    """A kNN probe workload: ``num_probes`` centers asking for ``k`` neighbours."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    probes = generate_probe_points(region, num_probes, seed=seed, source=source)
    return ProbeWorkload(
        probes=probes,
        region=region,
        k=k,
        seed=seed,
        source=source,
        description=f"{region} {source} kNN workload @ k={k}",
    )


def generate_insert_points(
    region: str,
    num_inserts: int,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> List[Point]:
    """Insert stream: points uniform over the region's data space (Section 6.7)."""
    extent = dataset_extent(region)
    rng = rng if rng is not None else np.random.default_rng(seed)
    xs = rng.uniform(extent.xmin, extent.xmax, size=num_inserts)
    ys = rng.uniform(extent.ymin, extent.ymax, size=num_inserts)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def blend_workloads(
    original: Workload,
    replacement: Workload,
    change_fraction: float,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Workload:
    """Replace a fraction of the original workload's queries (Section 6.8).

    ``change_fraction = 0`` returns the original workload, ``1`` returns the
    replacement; in between, a random ``change_fraction`` of positions is
    substituted with queries from the replacement workload.
    """
    if not 0.0 <= change_fraction <= 1.0:
        raise ValueError(f"change_fraction must be in [0, 1], got {change_fraction}")
    rng = rng if rng is not None else np.random.default_rng(seed)
    num_queries = len(original.queries)
    num_changed = int(round(change_fraction * num_queries))
    queries = list(original.queries)
    if num_changed > 0 and replacement.queries:
        positions = rng.choice(num_queries, size=num_changed, replace=False)
        for position in positions:
            queries[position] = replacement.queries[int(rng.integers(0, len(replacement.queries)))]
    return Workload(
        queries=queries,
        region=original.region,
        selectivity_percent=original.selectivity_percent,
        seed=seed,
        description=(
            f"{original.description} blended {change_fraction:.0%} with "
            f"{replacement.description}"
        ),
        extra={"change_fraction": change_fraction},
    )
