"""The WaZI index and its ablation variants.

:class:`WaZI` combines the two mechanisms the paper contributes on top of
the base Z-index:

1. **Adaptive partitioning and ordering** (Section 4): each node's split
   point and child ordering are chosen greedily to minimise the retrieval
   cost of an anticipated range-query workload, with point counts supplied
   by a learned density estimator (RFDE).
2. **Look-ahead skipping** (Section 5): leaves carry four look-ahead
   pointers so range-query scans jump over runs of irrelevant pages.

The ablation study of Section 6.9 isolates the two mechanisms;
:class:`BaseWithSkipping` (``Base+SK``) keeps median splits but adds the
pointers, and :class:`WaZIWithoutSkipping` (``WaZI−SK``) keeps the adaptive
layout but scans leaves one by one.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.construction import (
    DEFAULT_NUM_CANDIDATES,
    GreedySplitStrategy,
    build_density_estimator,
)
from repro.core.cost import ALPHA_WITH_SKIPPING, ALPHA_WITHOUT_SKIPPING
from repro.density import DensityEstimator
from repro.geometry import Point, Rect
from repro.zindex.base import DEFAULT_LEAF_CAPACITY, DEFAULT_MAX_DEPTH, ZIndex
from repro.zindex.splitters import MedianSplitStrategy


class WaZI(ZIndex):
    """The learned, workload-aware Z-index.

    Parameters
    ----------
    points:
        The dataset to index.
    workload:
        The anticipated range queries (rectangles) the layout is optimised
        for.  An empty workload degrades gracefully to median splits, i.e.
        the base Z-index layout plus skipping pointers.
    leaf_capacity:
        Page size ``L``.
    num_candidates:
        ``kappa``, the number of random candidate split points evaluated per
        node during greedy construction.
    alpha:
        Skip-cost fraction in the retrieval-cost objective.  Defaults to the
        paper's ``1e-5`` because WaZI is built with skipping enabled; pass
        a larger value to study the skip-unaware objective.
    density:
        Either a pre-built :class:`~repro.density.DensityEstimator`, or one
        of the strings ``"rfde"`` (default) / ``"exact"`` selecting how data
        densities are estimated during construction.
    density_trees:
        Number of trees of the RFDE forest (ignored for ``"exact"``).
    use_skipping:
        Whether to build and use look-ahead pointers.  ``True`` for the full
        WaZI; :class:`WaZIWithoutSkipping` sets it to ``False``.
    adaptive:
        Whether to use the greedy workload-aware split strategy.  ``True``
        for the full WaZI; :class:`BaseWithSkipping` sets it to ``False``.
    seed:
        Seed controlling both the candidate sampling and the RFDE forest;
        construction is deterministic given the seed.
    """

    name = "WaZI"

    def __init__(
        self,
        points: Sequence[Point],
        workload: Sequence[Rect],
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        num_candidates: int = DEFAULT_NUM_CANDIDATES,
        alpha: Optional[float] = None,
        density="rfde",
        density_trees: int = 4,
        use_skipping: bool = True,
        adaptive: bool = True,
        seed: Optional[int] = None,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        self.workload = list(workload)
        if alpha is None:
            alpha = ALPHA_WITH_SKIPPING if use_skipping else ALPHA_WITHOUT_SKIPPING
        self.alpha = alpha
        if adaptive and self.workload:
            estimator = self._resolve_density(points, density, density_trees, leaf_capacity, seed)
            strategy = GreedySplitStrategy(
                self.workload,
                density=estimator,
                num_candidates=num_candidates,
                alpha=alpha,
                seed=seed,
            )
            self.density_estimator: Optional[DensityEstimator] = estimator
        else:
            strategy = MedianSplitStrategy()
            self.density_estimator = None
        super().__init__(
            points,
            leaf_capacity=leaf_capacity,
            split_strategy=strategy,
            use_skipping=use_skipping,
            max_depth=max_depth,
        )

    @staticmethod
    def _resolve_density(points, density, density_trees, leaf_capacity, seed):
        if isinstance(density, DensityEstimator):
            return density
        if isinstance(density, str):
            return build_density_estimator(
                points,
                kind=density,
                num_trees=density_trees,
                leaf_size=leaf_capacity,
                seed=seed,
            )
        raise TypeError(
            "density must be a DensityEstimator instance or one of the strings "
            f"'rfde'/'exact', got {density!r}"
        )

    def size_bytes(self) -> int:
        """Index footprint.

        Following the paper (Table 5 reports WaZI at essentially the same
        size as Base), the density estimator is a construction-time artefact
        and is not counted as part of the deployed index; only the tree, the
        leaf list (including the four look-ahead pointers per leaf) and the
        pages are.
        """
        return super().size_bytes()


class BaseWithSkipping(ZIndex):
    """``Base+SK`` — median splits and "abcd" ordering, plus look-ahead pointers."""

    name = "Base+SK"

    def __init__(
        self,
        points: Sequence[Point],
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        super().__init__(
            points,
            leaf_capacity=leaf_capacity,
            split_strategy=MedianSplitStrategy(),
            use_skipping=True,
            max_depth=max_depth,
        )


class WaZIWithoutSkipping(WaZI):
    """``WaZI−SK`` — adaptive partitioning and ordering, but no look-ahead pointers."""

    name = "WaZI-SK"

    def __init__(
        self,
        points: Sequence[Point],
        workload: Sequence[Rect],
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        num_candidates: int = DEFAULT_NUM_CANDIDATES,
        density="rfde",
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(
            points,
            workload,
            leaf_capacity=leaf_capacity,
            num_candidates=num_candidates,
            alpha=ALPHA_WITHOUT_SKIPPING,
            density=density,
            use_skipping=False,
            adaptive=True,
            seed=seed,
        )
