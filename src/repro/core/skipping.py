"""Look-ahead skipping (Section 5) — public re-export.

The look-ahead pointer machinery operates purely on the
:class:`~repro.storage.LeafList`, so its implementation lives next to the
leaf list in :mod:`repro.zindex.skipping`; this module re-exports it under
the package where the paper's Section 5 contribution conceptually belongs,
so downstream code can write ``from repro.core.skipping import
build_lookahead_pointers``.
"""

from repro.zindex.skipping import (
    build_lookahead_pointers,
    choose_skip_target,
    disqualifying_criteria,
    leaf_box,
)

__all__ = [
    "build_lookahead_pointers",
    "choose_skip_target",
    "disqualifying_criteria",
    "leaf_box",
]
