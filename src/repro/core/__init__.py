"""WaZI — the paper's contribution.

The :mod:`repro.core` package layers the workload-aware machinery of the
paper on top of the generic Z-index structure from :mod:`repro.zindex`:

* :mod:`repro.core.cost` — the retrieval-cost model of Section 4.2
  (Eq. 1–5): which quadrants a range query forces the index to scan or skip
  under the "abcd" and "acbd" orderings, and the aggregate workload cost.
* :mod:`repro.core.construction` — the greedy construction of Section 4.3
  (Algorithm 3): sample candidate split points per node, evaluate the cost
  against learned density estimates, keep the best split and ordering.
* :mod:`repro.core.skipping` — the look-ahead pointer mechanism of
  Section 5 (Algorithm 4), re-exported from the leaf-list layer.
* :mod:`repro.core.wazi` — the :class:`WaZI` index itself and its ablation
  variants (``Base+SK`` and ``WaZI−SK`` from Section 6.9).
"""

from repro.core.cost import (
    QuadrantCounts,
    ordering_cost,
    overlapping_quadrants,
    query_pair_counts,
    workload_cost,
)
from repro.core.construction import GreedySplitStrategy
from repro.core.wazi import WaZI, BaseWithSkipping, WaZIWithoutSkipping

__all__ = [
    "QuadrantCounts",
    "overlapping_quadrants",
    "ordering_cost",
    "query_pair_counts",
    "workload_cost",
    "GreedySplitStrategy",
    "WaZI",
    "BaseWithSkipping",
    "WaZIWithoutSkipping",
]
