"""Greedy workload-aware construction (Algorithm 3 of the paper).

The greedy construction decides, for one node at a time and from the root
downwards, where to place the node's split point and which of the two
monotonicity-preserving orderings ("abcd" / "acbd") to use.  For each node
it

1. collects the workload queries that overlap the node's cell (clipped to
   the cell, since only the part of a query inside the cell matters for the
   node's decision),
2. samples ``kappa`` candidate split points uniformly at random from the
   cell (plus the data median, a strong default when the workload gives no
   signal),
3. estimates the number of data points in each of the four child cells of
   every candidate using a learned density estimator (RFDE by default),
4. evaluates the simplified retrieval cost of Eq. 5 for both orderings, and
5. keeps the minimiser.

The decision plugs into the generic recursive builder of
:class:`repro.zindex.ZIndex` through the :class:`SplitStrategy` interface.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.cost import (
    ALPHA_WITH_SKIPPING,
    QuadrantCounts,
    best_ordering,
)
from repro.density import DensityEstimator, ExactDensity, RandomForestDensity
from repro.geometry import Rect
from repro.zindex.node import ORDER_ABCD
from repro.zindex.splitters import SplitDecision, SplitStrategy

DEFAULT_NUM_CANDIDATES = 16


class GreedySplitStrategy(SplitStrategy):
    """Cost-minimising split selection driven by a query workload.

    Parameters
    ----------
    workload:
        The anticipated range queries (historical log or representative
        sample) the index should be optimised for.
    density:
        Range-count estimator over the data.  Defaults to an RFDE model
        built lazily from the points handed to the first ``choose`` call is
        *not* done — the caller builds the estimator once over the full
        dataset and passes it in, mirroring the paper where the model is fit
        once before construction starts.
    num_candidates:
        ``kappa`` — how many random split points are tried per node.
    alpha:
        Skip-cost fraction used in Eq. 5.  Use
        :data:`~repro.core.cost.ALPHA_WITH_SKIPPING` when the index will be
        built with look-ahead pointers and a larger value otherwise.
    seed:
        Seed of the candidate-sampling generator (construction is
        deterministic given the seed).
    min_queries:
        Below this number of relevant queries the node falls back to the
        median split: with almost no workload signal the adaptive choice
        would just chase noise.
    """

    def __init__(
        self,
        workload: Sequence[Rect],
        density: Optional[DensityEstimator] = None,
        num_candidates: int = DEFAULT_NUM_CANDIDATES,
        alpha: float = ALPHA_WITH_SKIPPING,
        seed: Optional[int] = None,
        min_queries: int = 1,
    ) -> None:
        if num_candidates <= 0:
            raise ValueError(f"num_candidates must be positive, got {num_candidates}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.workload = list(workload)
        self.density = density
        self.num_candidates = num_candidates
        self.alpha = alpha
        self.min_queries = min_queries
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def choose(self, cell: Rect, points: np.ndarray, depth: int) -> SplitDecision:
        relevant = self._relevant_queries(cell)
        if len(relevant) < self.min_queries or points.shape[0] == 0:
            return self._median_decision(cell, points)
        candidates = self._candidate_splits(cell, points)
        estimator = self._estimator_for(points)
        best: Optional[SplitDecision] = None
        best_cost = float("inf")
        for split_x, split_y in candidates:
            counts = self._quadrant_counts(cell, split_x, split_y, estimator)
            ordering, cost = best_ordering(relevant, counts, split_x, split_y, self.alpha)
            if cost < best_cost:
                best_cost = cost
                best = SplitDecision(split_x, split_y, ordering)
        if best is None:
            return self._median_decision(cell, points)
        return best

    # ------------------------------------------------------------------
    def _relevant_queries(self, cell: Rect) -> List[Rect]:
        """Workload queries overlapping the cell, clipped to the cell."""
        clipped = []
        for query in self.workload:
            overlap = query.intersection(cell)
            if overlap is not None:
                clipped.append(overlap)
        return clipped

    def _candidate_splits(self, cell: Rect, points: np.ndarray) -> List[tuple]:
        """``kappa`` uniform samples from the cell, plus the data median."""
        candidates: List[tuple] = []
        if points.shape[0] > 0:
            median_x = float(np.clip(np.median(points[:, 0]), cell.xmin, cell.xmax))
            median_y = float(np.clip(np.median(points[:, 1]), cell.ymin, cell.ymax))
            candidates.append((median_x, median_y))
        xs = self._rng.uniform(cell.xmin, cell.xmax, size=self.num_candidates)
        ys = self._rng.uniform(cell.ymin, cell.ymax, size=self.num_candidates)
        candidates.extend((float(x), float(y)) for x, y in zip(xs, ys))
        return candidates

    def _estimator_for(self, points: np.ndarray) -> DensityEstimator:
        """The density estimator used to count points per child cell.

        When the caller supplied a global estimator it is reused for every
        node (the paper's setup); otherwise exact counting over the node's
        own points is used, which is the ``density="exact"`` ablation arm.
        """
        if self.density is not None:
            return self.density
        return ExactDensity([_RowPoint(x, y) for x, y in points])

    def _quadrant_counts(
        self, cell: Rect, split_x: float, split_y: float, estimator: DensityEstimator
    ) -> QuadrantCounts:
        quad_a, quad_b, quad_c, quad_d = cell.split(
            min(max(split_x, cell.xmin), cell.xmax),
            min(max(split_y, cell.ymin), cell.ymax),
        )
        return QuadrantCounts(
            estimator.estimate(quad_a),
            estimator.estimate(quad_b),
            estimator.estimate(quad_c),
            estimator.estimate(quad_d),
        )

    @staticmethod
    def _median_decision(cell: Rect, points: np.ndarray) -> SplitDecision:
        if points.shape[0] == 0:
            center = cell.center
            return SplitDecision(center.x, center.y, ORDER_ABCD)
        split_x = float(np.clip(np.median(points[:, 0]), cell.xmin, cell.xmax))
        split_y = float(np.clip(np.median(points[:, 1]), cell.ymin, cell.ymax))
        return SplitDecision(split_x, split_y, ORDER_ABCD)


class _RowPoint:
    """Minimal point adaptor so numpy rows can feed :class:`ExactDensity`."""

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        self.x = float(x)
        self.y = float(y)


def build_density_estimator(
    points,
    kind: str = "rfde",
    num_trees: int = 4,
    leaf_size: int = 64,
    seed: Optional[int] = None,
) -> DensityEstimator:
    """Construct the density estimator used during WaZI construction.

    ``kind`` is ``"rfde"`` (the paper's choice), or ``"exact"`` for the
    no-learning ablation arm.
    """
    if kind == "rfde":
        return RandomForestDensity(points, num_trees=num_trees, leaf_size=leaf_size, seed=seed)
    if kind == "exact":
        return ExactDensity(points)
    raise ValueError(f"Unknown density estimator kind: {kind!r}")
