"""The retrieval-cost model of Section 4.2 (Eq. 1–5).

The cost of answering a range query with a one-level Z-index depends on
where the query's two corners fall relative to the node's split point and on
the ordering of the four child cells along the curve:

* child cells that *overlap* the query are scanned in full (their whole
  point count enters the cost),
* child cells that do not overlap the query but lie *between* the first and
  last overlapping cell in curve order are only "skipped over" — the index
  still pays a small per-cell price, modelled as a fraction ``alpha`` of the
  cell's point count (``alpha`` is ~1 for the naive bounding-box scan and
  ``1e-5`` once the look-ahead pointers of Section 5 are in place),
* child cells outside that interval contribute nothing.

Because a range query's bottom-left corner is dominated by its top-right
corner, only nine corner-quadrant combinations can occur (AA, AB, AC, AD,
BB, BD, CC, CD, DD); the overlapping cells are fully determined by that
combination, which is how the closed forms Eq. 1 and Eq. 2 arise.  The
functions below implement the general rule, which reduces to the paper's
formulas for both orderings.

Note on Eq. 2: the published formula's "δ_{R∈AB}(n_A + α n_B + n_C)" term
has the α on the wrong cell — under the "acbd" ordering the cell lying
*between* A and B on the curve is C, so the skipped cell is C.  We implement
the internally consistent version (``n_A + n_B + α n_C``); the aggregate
behaviour the paper reports is unaffected because the term is symmetric in
the roles the two cells play elsewhere in the optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from repro.geometry import Rect, classify_quadrants
from repro.geometry.rect import QUADRANT_A, QUADRANT_B, QUADRANT_C, QUADRANT_D
from repro.zindex.node import ORDER_ABCD, ORDER_ACBD, ORDERINGS, visit_sequence

#: The α used once look-ahead pointers make skipping nearly free (Section 5.2).
ALPHA_WITH_SKIPPING = 1e-5
#: The α for the naive scan that still checks every bounding box.
ALPHA_WITHOUT_SKIPPING = 0.1

# Which quadrants a query overlaps, given the quadrants of its BL/TR corners.
_OVERLAP_BY_PAIR: Dict[Tuple[int, int], Tuple[int, ...]] = {
    (QUADRANT_A, QUADRANT_A): (QUADRANT_A,),
    (QUADRANT_B, QUADRANT_B): (QUADRANT_B,),
    (QUADRANT_C, QUADRANT_C): (QUADRANT_C,),
    (QUADRANT_D, QUADRANT_D): (QUADRANT_D,),
    (QUADRANT_A, QUADRANT_B): (QUADRANT_A, QUADRANT_B),
    (QUADRANT_A, QUADRANT_C): (QUADRANT_A, QUADRANT_C),
    (QUADRANT_B, QUADRANT_D): (QUADRANT_B, QUADRANT_D),
    (QUADRANT_C, QUADRANT_D): (QUADRANT_C, QUADRANT_D),
    (QUADRANT_A, QUADRANT_D): (QUADRANT_A, QUADRANT_B, QUADRANT_C, QUADRANT_D),
}


@dataclass(frozen=True)
class QuadrantCounts:
    """Point counts (or estimates) of the four child cells of a split."""

    n_a: float
    n_b: float
    n_c: float
    n_d: float

    def __getitem__(self, quadrant: int) -> float:
        return (self.n_a, self.n_b, self.n_c, self.n_d)[quadrant]

    @property
    def total(self) -> float:
        return self.n_a + self.n_b + self.n_c + self.n_d


def overlapping_quadrants(corner_pair: Tuple[int, int]) -> Tuple[int, ...]:
    """Quadrants a query overlaps given the quadrants of its BL and TR corners.

    Raises ``ValueError`` for pairs that violate the domination constraint
    (for example BL in B and TR in C), which cannot arise for well-formed
    range queries.
    """
    try:
        return _OVERLAP_BY_PAIR[corner_pair]
    except KeyError:
        raise ValueError(
            f"Impossible corner-quadrant pair {corner_pair}; the bottom-left "
            "corner must be dominated by the top-right corner"
        ) from None


def single_query_cost(
    corner_pair: Tuple[int, int],
    counts: QuadrantCounts,
    ordering: str,
    alpha: float,
) -> float:
    """Retrieval cost of one query under one ordering (Eq. 1 / Eq. 2).

    Overlapped quadrants contribute their full count; non-overlapping
    quadrants sandwiched between the first and last overlapped quadrant in
    curve order contribute ``alpha`` times their count.
    """
    overlapped = overlapping_quadrants(corner_pair)
    sequence = visit_sequence(ordering)
    ranks = {quadrant: rank for rank, quadrant in enumerate(sequence)}
    overlapped_ranks = [ranks[q] for q in overlapped]
    low_rank, high_rank = min(overlapped_ranks), max(overlapped_ranks)
    cost = 0.0
    for quadrant in range(4):
        rank = ranks[quadrant]
        if quadrant in overlapped:
            cost += counts[quadrant]
        elif low_rank < rank < high_rank:
            cost += alpha * counts[quadrant]
    return cost


def query_pair_counts(
    queries: Iterable[Rect], split_x: float, split_y: float
) -> Dict[Tuple[int, int], int]:
    """Histogram of corner-quadrant pairs over a set of queries (the q_XY terms).

    Each query is classified by where its BL and TR corners fall relative to
    the split point; the returned dictionary maps each of the nine possible
    pairs to the number of queries exhibiting it.
    """
    counts: Dict[Tuple[int, int], int] = {}
    for query in queries:
        pair = classify_quadrants(query, split_x, split_y)
        counts[pair] = counts.get(pair, 0) + 1
    return counts


def ordering_cost(
    pair_counts: Dict[Tuple[int, int], int],
    counts: QuadrantCounts,
    ordering: str,
    alpha: float,
) -> float:
    """Aggregate workload cost for one candidate split under one ordering (Eq. 5)."""
    total = 0.0
    for corner_pair, num_queries in pair_counts.items():
        if num_queries == 0:
            continue
        total += num_queries * single_query_cost(corner_pair, counts, ordering, alpha)
    return total


def workload_cost(
    queries: Sequence[Rect],
    counts: QuadrantCounts,
    split_x: float,
    split_y: float,
    alpha: float,
) -> Dict[str, float]:
    """Costs of both orderings for a candidate split over a query workload.

    Returns ``{"abcd": cost, "acbd": cost}``.  The greedy construction keeps
    the split/ordering combination with the smallest value.
    """
    pair_counts = query_pair_counts(queries, split_x, split_y)
    return {
        ordering: ordering_cost(pair_counts, counts, ordering, alpha)
        for ordering in ORDERINGS
    }


def best_ordering(
    queries: Sequence[Rect],
    counts: QuadrantCounts,
    split_x: float,
    split_y: float,
    alpha: float,
) -> Tuple[str, float]:
    """The cheaper of the two orderings and its cost for a candidate split."""
    costs = workload_cost(queries, counts, split_x, split_y, alpha)
    if costs[ORDER_ABCD] <= costs[ORDER_ACBD]:
        return ORDER_ABCD, costs[ORDER_ABCD]
    return ORDER_ACBD, costs[ORDER_ACBD]
