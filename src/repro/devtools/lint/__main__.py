"""Entry point: ``python -m repro.devtools.lint src/repro [--strict]``."""

import sys

from repro.devtools.lint import main

if __name__ == "__main__":
    sys.exit(main())
