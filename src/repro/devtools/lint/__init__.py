"""repro-lint: an AST-based static analyzer for this repository's invariants.

Usage::

    python -m repro.devtools.lint src/repro            # report findings
    python -m repro.devtools.lint src/repro --strict   # + suppression hygiene
    python -m repro.devtools.lint --list-rules

The framework is deliberately small: a rule is a function registered with
:func:`rule` that receives a :class:`ModuleContext` (path, source, parsed
AST, module tags) and yields :class:`Finding` objects.  Rules encode *this
repository's* hard-won correctness requirements — see
``docs/STATIC_ANALYSIS.md`` for the catalog and the historical bug behind
each rule.

Suppressions are per line::

    self.root = merged  # repro-lint: disable=mutation-must-invalidate -- caller rebuilds

Every suppression must carry a ``-- reason``; ``--strict`` (the CI mode)
reports reasonless or unknown-rule suppressions as findings.  Modules opt
into scope-sensitive rules with tags on their own line near the top::

    # repro-lint: hot-path      (no-boxing-in-hot-path applies)
    # repro-lint: public-api    (keyword-only-api-growth applies)
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "ModuleContext",
    "rule",
    "RULES",
    "lint_source",
    "lint_paths",
    "main",
]

#: Framework-level pseudo-rule used for suppression hygiene problems.
SUPPRESSION_RULE = "suppression-hygiene"

_DIRECTIVE_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>.+?)\s*$")
_DISABLE_RE = re.compile(r"disable=(?P<rules>[\w,-]+)(?P<reason>\s+--\s+.+)?$")

#: Module tags a file may declare on a comment-only line.
MODULE_TAGS = ("hot-path", "public-api", "kernel-parity")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class Suppression:
    """A parsed ``disable=`` directive on one source line."""

    line: int
    rules: Tuple[str, ...]
    reason: Optional[str]
    used: bool = False


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str]
    tags: Set[str] = field(default_factory=set)
    suppressions: Dict[int, Suppression] = field(default_factory=dict)

    @property
    def parts(self) -> Tuple[str, ...]:
        """Path components of :attr:`relpath` (for directory-scoped rules)."""
        return tuple(Path(self.relpath).parts)

    def in_package(self, *names: str) -> bool:
        """Whether the module lives under any of the named directories."""
        return any(name in self.parts[:-1] for name in names)

    def finding(self, node: ast.AST, rule_name: str, message: str) -> Finding:
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule_name,
            message=message,
        )

    def functions(self) -> Iterator[Tuple[ast.AST, Optional[ast.ClassDef]]]:
        """Every (async) function definition, paired with its enclosing class.

        Nested functions report the *innermost* class, mirroring how the
        invariants attach to methods.
        """

        def walk(node: ast.AST, cls: Optional[ast.ClassDef]) -> Iterator:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, child)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield child, cls
                    yield from walk(child, cls)
                else:
                    yield from walk(child, cls)

        yield from walk(self.tree, None)


RuleFunc = Callable[[ModuleContext], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    name: str
    description: str
    check: RuleFunc


#: Registry of all known rules, keyed by rule name.
RULES: Dict[str, Rule] = {}


def rule(name: str, description: str) -> Callable[[RuleFunc], RuleFunc]:
    """Register ``func`` as the checker for rule ``name``."""

    def register(func: RuleFunc) -> RuleFunc:
        if name in RULES:
            raise ValueError(f"duplicate lint rule: {name}")
        RULES[name] = Rule(name=name, description=description, check=func)
        return func

    return register


# ---------------------------------------------------------------------------
# Directive parsing
# ---------------------------------------------------------------------------


def _iter_comments(source: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line, text)`` for every real comment token in ``source``.

    Tokenizing (rather than scanning lines) keeps directive-looking text in
    docstrings and string literals from being parsed as directives.
    """
    import io
    import tokenize

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except tokenize.TokenError:
        return


def _parse_directives(source: str) -> Tuple[Set[str], Dict[int, Suppression], List[Tuple[int, str]]]:
    """Extract module tags, per-line suppressions, and directive errors.

    Returns ``(tags, suppressions_by_line, errors)`` where each error is a
    ``(line, message)`` pair (malformed directive bodies).
    """
    tags: Set[str] = set()
    suppressions: Dict[int, Suppression] = {}
    errors: List[Tuple[int, str]] = []
    for lineno, text in _iter_comments(source):
        match = _DIRECTIVE_RE.search(text)
        if match is None:
            continue
        body = match.group("body")
        if body in MODULE_TAGS:
            tags.add(body)
            continue
        disable = _DISABLE_RE.match(body)
        if disable is None:
            errors.append((lineno, f"malformed repro-lint directive: {body!r}"))
            continue
        names = tuple(name for name in disable.group("rules").split(",") if name)
        reason_text = disable.group("reason")
        reason = reason_text.split("--", 1)[1].strip() if reason_text else None
        suppressions[lineno] = Suppression(line=lineno, rules=names, reason=reason)
    return tags, suppressions, errors


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------


def _load_context(path: Path, root: Optional[Path]) -> ModuleContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    tags, suppressions, errors = _parse_directives(source)
    try:
        relpath = str(path.relative_to(root)) if root is not None else str(path)
    except ValueError:
        relpath = str(path)
    ctx = ModuleContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        lines=lines,
        tags=tags,
        suppressions=suppressions,
    )
    ctx._directive_errors = errors  # type: ignore[attr-defined]
    return ctx


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    relpath: Optional[str] = None,
    select: Optional[Iterable[str]] = None,
    strict: bool = False,
) -> List[Finding]:
    """Lint a source string (the entry point tests and fixtures use)."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    tags, suppressions, errors = _parse_directives(source)
    ctx = ModuleContext(
        path=Path(path),
        relpath=relpath if relpath is not None else path,
        source=source,
        tree=tree,
        lines=lines,
        tags=tags,
        suppressions=suppressions,
    )
    ctx._directive_errors = errors  # type: ignore[attr-defined]
    return _check_module(ctx, select=select, strict=strict)


def _check_module(
    ctx: ModuleContext,
    *,
    select: Optional[Iterable[str]] = None,
    strict: bool = False,
) -> List[Finding]:
    _ensure_rules_loaded()
    selected = set(select) if select is not None else set(RULES)
    findings: List[Finding] = []
    for name in sorted(selected):
        if name not in RULES:
            raise KeyError(f"unknown lint rule: {name}")
        findings.extend(RULES[name].check(ctx))

    kept: List[Finding] = []
    for finding in findings:
        suppression = ctx.suppressions.get(finding.line)
        if suppression is not None and finding.rule in suppression.rules:
            suppression.used = True
            continue
        kept.append(finding)

    if strict:
        for lineno, message in getattr(ctx, "_directive_errors", []):
            kept.append(Finding(str(ctx.path), lineno, 0, SUPPRESSION_RULE, message))
        for suppression in ctx.suppressions.values():
            if suppression.reason is None:
                kept.append(Finding(
                    str(ctx.path), suppression.line, 0, SUPPRESSION_RULE,
                    "suppression is missing a reason "
                    "(write: # repro-lint: disable=<rule> -- <why>)",
                ))
            for name in suppression.rules:
                if name not in RULES:
                    kept.append(Finding(
                        str(ctx.path), suppression.line, 0, SUPPRESSION_RULE,
                        f"suppression names unknown rule {name!r}",
                    ))
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Tuple[Path, Optional[Path]]]:
    for base in paths:
        if base.is_dir():
            for path in sorted(base.rglob("*.py")):
                yield path, base
        else:
            yield base, None


def lint_paths(
    paths: Sequence[Path],
    *,
    select: Optional[Iterable[str]] = None,
    strict: bool = False,
) -> List[Finding]:
    """Lint files and directory trees; returns all unsuppressed findings."""
    findings: List[Finding] = []
    for path, root in _iter_python_files(paths):
        ctx = _load_context(path, root)
        findings.extend(_check_module(ctx, select=select, strict=strict))
    return findings


def _ensure_rules_loaded() -> None:
    # Importing the rules module populates RULES via the @rule decorator.
    from repro.devtools.lint import rules  # noqa: F401


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Repository-invariant static analysis.",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories to lint")
    parser.add_argument("--strict", action="store_true",
                        help="also enforce suppression hygiene (CI mode)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule names to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    _ensure_rules_loaded()
    if args.list_rules:
        width = max(len(name) for name in RULES)
        for name in sorted(RULES):
            print(f"{name:<{width}}  {RULES[name].description}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.devtools.lint src/repro)")

    select = args.select.split(",") if args.select else None
    try:
        findings = lint_paths(args.paths, select=select, strict=args.strict)
    except KeyError as exc:
        parser.error(str(exc))
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
