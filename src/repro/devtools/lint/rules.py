"""The repro-lint rule catalog.

Each rule mechanizes one invariant this codebase has already paid for in
review time or bugs; ``docs/STATIC_ANALYSIS.md`` records the history.  The
rules are heuristics over the AST — same-function presence checks, not data
flow — tuned so that every firing on this tree is either a real defect or a
case worth an explicit, reasoned suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.devtools.lint import Finding, ModuleContext, rule

# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None for anything else)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _called_names(func: ast.AST) -> Set[str]:
    """Trailing attribute/function names of every call inside ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = node.func
            if isinstance(target, ast.Attribute):
                names.add(target.attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _call_linenos(func: ast.AST, names: Set[str]) -> List[int]:
    """Line numbers of calls whose trailing name is in ``names``."""
    linenos: List[int] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = node.func
            name = target.attr if isinstance(target, ast.Attribute) else (
                target.id if isinstance(target, ast.Name) else None
            )
            if name in names:
                linenos.append(node.lineno)
    return linenos


def _is_self_attr(node: ast.AST, attrs: Optional[Set[str]] = None) -> Optional[str]:
    """``self.<attr>`` → the attribute name (restricted to ``attrs`` if given)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attrs is None or node.attr in attrs)
    ):
        return node.attr
    return None


def _assign_targets(node: ast.stmt) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


# ---------------------------------------------------------------------------
# mutation-must-invalidate
# ---------------------------------------------------------------------------

#: Rebinding these attributes changes what the flat scan cache mirrors.
_STRUCTURE_ATTRS = {"root", "leaflist"}
#: Packed skip/box columns: writing them stales any retained packed view.
_PACKED_COLUMNS = {"boxes", "nonempty", "below", "above", "left", "right"}
#: Calls that count as repairing/invalidating the derived state.
_INVALIDATORS = {
    "_invalidate_flat", "_rebuild_leaflist", "invalidate_packed",
    "refresh", "refresh_entry", "_ensure_writable", "_promote", "bump",
    "build_lookahead_pointers", "repair_lookahead_pointers",
    "refresh_lookahead_for_leaf",
}
#: Functions that *are* the build/repair machinery.
_MUTATION_EXEMPT_PREFIXES = (
    "__init__", "_build", "_rebuild", "from_", "refresh",
    "_invalidate", "_adopt", "_ensure", "_promote",
)


@rule(
    "mutation-must-invalidate",
    "structural mutations in zindex/storage must invalidate derived caches "
    "in the same function",
)
def check_mutation_must_invalidate(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package("zindex", "storage"):
        return
    for func, _cls in ctx.functions():
        if func.name.startswith(_MUTATION_EXEMPT_PREFIXES):
            continue
        called = _called_names(func)
        if called & _INVALIDATORS:
            continue
        assigns_packed_sentinel = False
        mutations: List[Tuple[ast.AST, str]] = []
        for node in ast.walk(func):
            for target in _assign_targets(node) if isinstance(node, ast.stmt) else []:
                attr = _is_self_attr(target, _STRUCTURE_ATTRS)
                if attr is not None:
                    mutations.append((target, f"self.{attr} = ... rebinds index structure"))
                if _is_self_attr(target, {"_packed"}) is not None:
                    assigns_packed_sentinel = True
                if isinstance(target, ast.Subscript):
                    col = _is_self_attr(target.value, _PACKED_COLUMNS)
                    if col is not None:
                        mutations.append(
                            (target, f"self.{col}[...] = ... writes a packed column")
                        )
        if assigns_packed_sentinel:
            # Dropping the packed cache (self._packed = None) is itself the
            # invalidation LeafList.append/splice use.
            continue
        for target, what in mutations:
            yield ctx.finding(
                target, "mutation-must-invalidate",
                f"{what} but {func.name}() never calls an invalidator "
                f"({', '.join(sorted(_INVALIDATORS)[:3])}, ...); stale flat/packed "
                "caches silently serve old data",
            )


# ---------------------------------------------------------------------------
# cow-before-write
# ---------------------------------------------------------------------------

_PROMOTERS = {"_promote", "_ensure_writable"}
_COW_EXEMPT = ("__init__", "__setstate__", "from_", "adopt_")


@rule(
    "cow-before-write",
    "item-assignment to buffers of a copy-on-write class must follow a "
    "_promote/_ensure_writable call in the same method",
)
def check_cow_before_write(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        method_names = {
            child.name for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not (method_names & _PROMOTERS):
            continue
        for child in node.body:
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if child.name in _PROMOTERS or child.name.startswith(_COW_EXEMPT):
                continue
            promote_lines = _call_linenos(child, _PROMOTERS)
            first_promote = min(promote_lines) if promote_lines else None
            for stmt in ast.walk(child):
                for target in _assign_targets(stmt) if isinstance(stmt, ast.stmt) else []:
                    if not isinstance(target, ast.Subscript):
                        continue
                    attr = _is_self_attr(target.value)
                    if attr is None:
                        continue
                    if first_promote is None or first_promote > target.lineno:
                        yield ctx.finding(
                            target, "cow-before-write",
                            f"{node.name}.{child.name}() writes self.{attr}[...] "
                            "without first calling _promote()/_ensure_writable(); "
                            "a view-backed buffer would corrupt its source",
                        )


# ---------------------------------------------------------------------------
# no-hidden-rng
# ---------------------------------------------------------------------------

_SEED_CALLS = {"random.seed", "np.random.seed", "numpy.random.seed"}


@rule(
    "no-hidden-rng",
    "library code must thread seeds through rng=/seed= parameters, never "
    "hard-code them",
)
def check_no_hidden_rng(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted is None:
            continue
        tail = dotted.rsplit(".", 1)[-1]
        if tail == "default_rng" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, int):
                yield ctx.finding(
                    node, "no-hidden-rng",
                    f"literal seed default_rng({first.value}) hides determinism "
                    "from callers; accept a seed=/rng= parameter instead",
                )
        elif dotted in _SEED_CALLS:
            yield ctx.finding(
                node, "no-hidden-rng",
                f"{dotted}(...) reseeds global state; thread an explicit "
                "Generator through rng=/seed= parameters",
            )


# ---------------------------------------------------------------------------
# error-taxonomy
# ---------------------------------------------------------------------------

_BARE_EXCEPTIONS = {"ValueError", "KeyError", "TypeError", "RuntimeError"}
_LOAD_PREFIXES = (
    "load", "_load", "read", "_read", "open", "_open",
    "map", "_map", "from_", "restore", "_restore",
)


@rule(
    "error-taxonomy",
    "persistence/serving load paths raise the SnapshotError/PersistenceError "
    "hierarchy, never bare built-in exceptions",
)
def check_error_taxonomy(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package("persistence", "serving"):
        return
    for func, cls in ctx.functions():
        if not func.name.startswith(_LOAD_PREFIXES):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _BARE_EXCEPTIONS:
                where = f"{cls.name}.{func.name}" if cls else func.name
                yield ctx.finding(
                    node, "error-taxonomy",
                    f"{where}() raises bare {name} on a load path; raise a "
                    "repro.persistence.errors class (SnapshotFormatError, "
                    "DatasetFormatError, ...) so serving fallbacks can catch "
                    "PersistenceError",
                )


# ---------------------------------------------------------------------------
# no-boxing-in-hot-path
# ---------------------------------------------------------------------------

_BOXER_NAME_PARTS = ("box", "points")
_BOXER_EXEMPT = {"__iter__", "__init__", "filter_range"}


def _is_boxer(name: str) -> bool:
    return name in _BOXER_EXEMPT or any(part in name for part in _BOXER_NAME_PARTS)


@rule(
    "no-boxing-in-hot-path",
    "hot-path modules must not construct Point objects or call .points() "
    "outside whitelisted boxer functions",
)
def check_no_boxing_in_hot_path(ctx: ModuleContext) -> Iterator[Finding]:
    if "hot-path" not in ctx.tags:
        return
    for func, cls in ctx.functions():
        if _is_boxer(func.name):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            where = f"{cls.name}.{func.name}" if cls else func.name
            if isinstance(node.func, ast.Name) and node.func.id == "Point":
                yield ctx.finding(
                    node, "no-boxing-in-hot-path",
                    f"{where}() constructs Point objects in a hot-path module; "
                    "keep the scan columnar and box only at the result boundary",
                )
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "points":
                yield ctx.finding(
                    node, "no-boxing-in-hot-path",
                    f"{where}() calls .points() in a hot-path module; iterate "
                    "the columns instead of materializing boxed points",
                )


# ---------------------------------------------------------------------------
# keyword-only-api-growth
# ---------------------------------------------------------------------------


@rule(
    "keyword-only-api-growth",
    "public API callables with two or more defaulted parameters must make "
    "them keyword-only",
)
def check_keyword_only_api_growth(ctx: ModuleContext) -> Iterator[Finding]:
    if "public-api" not in ctx.tags:
        return
    for func, cls in ctx.functions():
        if func.name.startswith("_"):
            continue
        defaulted = len(func.args.defaults)
        if defaulted >= 2:
            where = f"{cls.name}.{func.name}" if cls else func.name
            yield ctx.finding(
                func, "keyword-only-api-growth",
                f"{where}() has {defaulted} defaulted positional parameters; "
                "adding one later silently shifts positional callers — put "
                "them after a bare * (keyword-only)",
            )


# ---------------------------------------------------------------------------
# pickle-safety
# ---------------------------------------------------------------------------

_VIEW_MARKERS = {"_promote", "_ensure_writable", "from_view", "adopt_view"}


@rule(
    "pickle-safety",
    "view-backed (COW/mmap) classes must define __getstate__ and "
    "__setstate__ so pickling materializes owned arrays",
)
def check_pickle_safety(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        method_names = {
            child.name for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not (method_names & _VIEW_MARKERS):
            continue
        missing = {"__getstate__", "__setstate__"} - method_names
        if missing:
            yield ctx.finding(
                node, "pickle-safety",
                f"{node.name} holds view-backed buffers "
                f"({', '.join(sorted(method_names & _VIEW_MARKERS))}) but lacks "
                f"{' and '.join(sorted(missing))}; default pickling would "
                "capture borrowed memory or an mmap handle",
            )


# ---------------------------------------------------------------------------
# deterministic-io
# ---------------------------------------------------------------------------

_NONDETERMINISTIC_CALLS = {
    "time.time", "time.time_ns", "time.monotonic",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "os.urandom",
    "uuid.uuid1", "uuid.uuid3", "uuid.uuid4", "uuid.uuid5",
}
_WRITE_PREFIXES = ("write", "_write", "save", "_save", "dump", "_dump")


@rule(
    "deterministic-io",
    "container write paths must produce byte-identical output: no clocks, "
    "no urandom, no set-ordered iteration",
)
def check_deterministic_io(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package("persistence"):
        return
    for func, cls in ctx.functions():
        if not func.name.startswith(_WRITE_PREFIXES):
            continue
        where = f"{cls.name}.{func.name}" if cls else func.name
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted in _NONDETERMINISTIC_CALLS:
                    yield ctx.finding(
                        node, "deterministic-io",
                        f"{where}() calls {dotted}(); written container bytes "
                        "must not depend on clocks or entropy",
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter
                is_set = isinstance(it, ast.Set) or (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id in {"set", "frozenset"}
                )
                if is_set:
                    yield ctx.finding(
                        it, "deterministic-io",
                        f"{where}() iterates a set while writing; hash order "
                        "varies per process — sort first",
                    )


# ---------------------------------------------------------------------------
# kernel-parity
# ---------------------------------------------------------------------------

#: Sorts whose default algorithm (introsort) is not stable: without
#: ``kind="stable"`` equal keys land in unspecified order, breaking the
#: byte-identical tie-break the kernel tiers share.
_UNSTABLE_SORTS = {"argsort", "sort"}
#: JIT decorators whose ``fastmath`` option licenses reassociation — the
#: compiled tier would stop being IEEE-identical to the NumPy reference.
_JIT_DECORATORS = {"njit", "jit"}


@rule(
    "kernel-parity",
    "kernel-tier modules must stay bitwise reproducible: sorts need "
    'kind="stable" and JIT decorators must not enable fastmath',
)
def check_kernel_parity(ctx: ModuleContext) -> Iterator[Finding]:
    if "kernel-parity" not in ctx.tags:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name in _UNSTABLE_SORTS:
            kind = next(
                (kw for kw in node.keywords if kw.arg == "kind"), None
            )
            stable = (
                kind is not None
                and isinstance(kind.value, ast.Constant)
                and kind.value.value == "stable"
            )
            if not stable:
                yield ctx.finding(
                    node, "kernel-parity",
                    f'{name}() without kind="stable" in a kernel-parity '
                    "module; the default introsort breaks the shared "
                    "tie-break on equal keys",
                )
        elif name in _JIT_DECORATORS:
            for keyword in node.keywords:
                if keyword.arg != "fastmath":
                    continue
                disabled = (
                    isinstance(keyword.value, ast.Constant)
                    and not keyword.value.value
                )
                if not disabled:
                    yield ctx.finding(
                        node, "kernel-parity",
                        f"{name}(fastmath=...) in a kernel-parity module; "
                        "fastmath licenses reassociation and the compiled "
                        "tier stops being IEEE-identical to the reference",
                    )
