"""Runtime sanitizer: deep checks of a built or loaded index's invariants.

The static rules in :mod:`repro.devtools.lint` catch code that *could*
corrupt derived state; this module checks the state itself.  Every check
raises :class:`InvariantViolation` carrying the *name* of the violated
invariant, so a failure in CI reads as a diagnosis, not a stack trace:

======================  ====================================================
invariant               what it asserts
======================  ====================================================
leaf-starts-monotone    ``leaf_starts`` is a 0-based, non-decreasing prefix
                        array with one slot per leaf plus the total
leaf-nonempty-consistent ``leaf_nonempty[i]`` equals ``starts[i+1] > starts[i]``
leaf-boxes-tight        a non-empty leaf's stored box equals the exact
                        min/max of its coordinate slice (empty: its cell)
skip-pointer-range      every look-ahead pointer is ``END_OF_LIST`` or a
                        strictly later leaf position
skip-pointer-rebuild    stored pointers are byte-equal to a fresh
                        (non-mutating) Algorithm 4 pass over the live boxes
mmap-read-only          columns of a read-only store (mmap snapshot) have
                        ``writeable=False`` and were never written through
flat-cache-coherent     the cached flat columns equal a fresh gather from
                        the pages (the cache is dropped on every mutation,
                        so a live cache must match a rebuild exactly)
shard-conservation      the dispatcher's accumulated counters equal the sum
                        of the per-shard counters (scatter/gather loses no
                        delta), measured from a shared counter reset
delta-conservation      an online index's merged row count equals the LSM
                        arithmetic ``len(base) + delta live − tombstones``
                        over both the active and frozen buffers — every
                        tombstone consumed exactly one matching row
kernel-parity           a sampled fraction of kernel-tier calls re-executed
                        on the pure-NumPy reference returns byte-identical
                        values (same dtype, shape, bytes and ordering)
======================  ====================================================

Enabling
--------
Nothing here runs unless asked.  Set ``REPRO_SANITIZE=1`` and the test
suite's conftest calls :func:`install_sanitizer`, which wraps
``ZIndex._build`` and ``ZIndex.from_snapshot_state`` to run
:func:`check_index_invariants` on every index the tests construct, and
interposes a :class:`KernelParityChecker` on the active kernel backend
so one in every ``kernel_sample_every`` hot-path kernel calls is
differentially re-executed on the reference tier.  With the variable
unset, the library functions are left untouched — zero overhead
(``benchmarks/bench_sanitize.py`` asserts this).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = [
    "InvariantViolation",
    "KernelParityChecker",
    "assert_kernel_parity",
    "check_delta_conservation",
    "check_index_invariants",
    "check_shard_conservation",
    "expected_skip_pointers",
    "install_sanitizer",
    "uninstall_sanitizer",
    "sanitize_enabled",
    "sanitizer_installed",
]


class InvariantViolation(AssertionError):
    """A deep check failed; :attr:`invariant` names the broken invariant."""

    def __init__(self, invariant: str, message: str) -> None:
        self.invariant = invariant
        super().__init__(f"[{invariant}] {message}")


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for the sanitizer to be installed."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


# ---------------------------------------------------------------------------
# Index deep checks
# ---------------------------------------------------------------------------


def expected_skip_pointers(entries) -> Dict[str, List[int]]:
    """Algorithm 4 recomputed into fresh lists, without touching ``entries``.

    Mirrors :func:`repro.zindex.skipping.build_lookahead_pointers` exactly,
    but follows its *own* already-computed chains instead of writing
    pointers back, so a check never repairs the corruption it is hunting.
    """
    from repro.storage.leaflist import END_OF_LIST, SKIP_CRITERIA
    from repro.zindex.skipping import _criterion_value, _improves

    n = len(entries)
    expected: Dict[str, List[int]] = {c: [END_OF_LIST] * n for c in SKIP_CRITERIA}
    for position in range(n - 1, -1, -1):
        entry = entries[position]
        for criterion in SKIP_CRITERIA:
            reference = _criterion_value(entry, criterion)
            target = position + 1 if position + 1 < n else END_OF_LIST
            while target != END_OF_LIST:
                candidate = entries[target]
                if _improves(criterion, _criterion_value(candidate, criterion), reference):
                    break
                target = expected[criterion][target]
            expected[criterion][position] = target
    return expected


def check_index_invariants(index: Any) -> None:
    """Deep-check one index; raises :class:`InvariantViolation` on failure.

    Indexes outside the Z-index family (no ``leaflist``) pass vacuously.
    """
    leaflist = getattr(index, "leaflist", None)
    if leaflist is None or not hasattr(leaflist, "entries"):
        return

    from repro.storage.buffers import MemoryColumnStore
    from repro.storage.leaflist import END_OF_LIST, SKIP_CRITERIA

    entries = list(leaflist.entries)
    n = len(entries)

    # A fresh, independent gather of the coordinate columns from the pages.
    fresh = MemoryColumnStore.gather(leaflist)
    starts = np.asarray(fresh["leaf_starts"], dtype=np.int64)
    flat_x = np.asarray(fresh["flat_x"], dtype=np.float64)
    flat_y = np.asarray(fresh["flat_y"], dtype=np.float64)

    # -- leaf-starts-monotone ---------------------------------------------
    if starts.shape[0] != n + 1:
        raise InvariantViolation(
            "leaf-starts-monotone",
            f"leaf_starts has {starts.shape[0]} slots for {n} leaves "
            f"(expected {n + 1})",
        )
    if n >= 0 and (starts[0] != 0 or np.any(np.diff(starts) < 0)):
        raise InvariantViolation(
            "leaf-starts-monotone",
            f"leaf_starts must start at 0 and be non-decreasing; got "
            f"starts[0]={int(starts[0])}, min step "
            f"{int(np.diff(starts).min()) if n else 0}",
        )
    if int(starts[-1]) != flat_x.shape[0]:
        raise InvariantViolation(
            "leaf-starts-monotone",
            f"leaf_starts totals {int(starts[-1])} rows but the flat columns "
            f"hold {flat_x.shape[0]}",
        )

    packed = leaflist.packed()

    # -- leaf-nonempty-consistent -----------------------------------------
    derived_nonempty = starts[1:] > starts[:-1]
    if not np.array_equal(np.asarray(packed.nonempty, dtype=bool), derived_nonempty):
        bad = int(np.flatnonzero(
            np.asarray(packed.nonempty, dtype=bool) != derived_nonempty
        )[0])
        raise InvariantViolation(
            "leaf-nonempty-consistent",
            f"leaf {bad}: nonempty={bool(packed.nonempty[bad])} but its slice "
            f"[{int(starts[bad])}, {int(starts[bad + 1])}) says "
            f"{bool(derived_nonempty[bad])}",
        )

    # -- leaf-boxes-tight --------------------------------------------------
    boxes = np.asarray(packed.boxes, dtype=np.float64).reshape(-1, 4)
    for i in np.flatnonzero(derived_nonempty):
        lo, hi = int(starts[i]), int(starts[i + 1])
        xs, ys = flat_x[lo:hi], flat_y[lo:hi]
        tight = (xs.min(), ys.min(), xs.max(), ys.max())
        if tuple(boxes[i]) != tight:
            raise InvariantViolation(
                "leaf-boxes-tight",
                f"leaf {int(i)}: stored box {tuple(boxes[i])} != tight box "
                f"{tight} of rows [{lo}, {hi})",
            )

    # -- skip-pointer-range ------------------------------------------------
    # The live entries are the source of truth; the packed columns must
    # mirror them (a stale packed cache would hide entry-level corruption).
    positions = np.arange(n, dtype=np.int64)
    entry_pointers = {
        criterion: np.fromiter(
            (entry.skip_pointer(criterion) for entry in entries),
            dtype=np.int64, count=n,
        )
        for criterion in SKIP_CRITERIA
    }
    packed_columns = dict(zip(
        SKIP_CRITERIA, (packed.below, packed.above, packed.left, packed.right)
    ))
    for criterion in SKIP_CRITERIA:
        for origin, pointers in (
            ("entry", entry_pointers[criterion]),
            ("packed", np.asarray(packed_columns[criterion], dtype=np.int64)),
        ):
            bad_mask = (pointers != END_OF_LIST) & (
                (pointers <= positions) | (pointers >= n)
            )
            if np.any(bad_mask):
                bad = int(np.flatnonzero(bad_mask)[0])
                raise InvariantViolation(
                    "skip-pointer-range",
                    f"leaf {bad}: {origin} {criterion} pointer "
                    f"{int(pointers[bad])} is not END_OF_LIST or a later "
                    f"position in [0, {n})",
                )

    # -- skip-pointer-rebuild ----------------------------------------------
    # All-END_OF_LIST columns mean "pointers not built (yet)" — a valid,
    # merely unoptimized state (scans skip nothing): shard construction
    # loads emptied snapshot states exactly like this before rebuilding.
    pointers_built = any(
        np.any(entry_pointers[criterion] != END_OF_LIST)
        for criterion in SKIP_CRITERIA
    )
    if getattr(index, "use_skipping", False) and n and pointers_built:
        expected = expected_skip_pointers(entries)
        for criterion in SKIP_CRITERIA:
            want = np.asarray(expected[criterion], dtype=np.int64)
            for origin, got in (
                ("entry", entry_pointers[criterion]),
                ("packed", np.asarray(packed_columns[criterion], dtype=np.int64)),
            ):
                if not np.array_equal(want, got):
                    bad = int(np.flatnonzero(want != got)[0])
                    raise InvariantViolation(
                        "skip-pointer-rebuild",
                        f"leaf {bad}: {origin} {criterion} pointer "
                        f"{int(got[bad])} != {int(want[bad])} from a fresh "
                        "Algorithm 4 pass — a scan following it could skip a "
                        "relevant leaf",
                    )

    # -- mmap-read-only ----------------------------------------------------
    store = getattr(index, "_store", None)
    if store is not None and not store.writable:
        for name in store.names():
            column = store[name]
            if column.flags.writeable:
                raise InvariantViolation(
                    "mmap-read-only",
                    f"read-only store column {name!r} is writeable; a stray "
                    "in-place write would corrupt the shared snapshot pages",
                )

    # -- flat-cache-coherent -----------------------------------------------
    cached_starts = getattr(index, "_flat_starts", None)
    if cached_starts is not None:
        for name, cached, fresh_column in (
            ("leaf_starts", np.asarray(cached_starts), starts),
            ("flat_x", np.asarray(index._flat_x), flat_x),
            ("flat_y", np.asarray(index._flat_y), flat_y),
        ):
            if not np.array_equal(cached, fresh_column):
                raise InvariantViolation(
                    "flat-cache-coherent",
                    f"cached {name} differs from a fresh page gather; a "
                    "mutation skipped _invalidate_flat (generation "
                    f"{getattr(index, '_flat_generation', '?')})",
                )


# ---------------------------------------------------------------------------
# Shard conservation
# ---------------------------------------------------------------------------


def check_shard_conservation(sharded: Any) -> None:
    """Dispatcher counters must equal the sum of the per-shard counters.

    Valid from a shared counter reset (``sharded.reset_counters()``
    broadcasts the reset to every backend): every per-shard delta the
    workers report must be absorbed exactly once by the dispatcher.
    """
    totals: Dict[str, int] = {}
    for backend in sharded._backends:
        shard_counters = backend.request("counters")
        for key, value in shard_counters.items():
            totals[key] = totals.get(key, 0) + int(value)
    dispatcher = vars(sharded.counters)
    for key, value in totals.items():
        if key in dispatcher and int(dispatcher[key]) != value:
            raise InvariantViolation(
                "shard-conservation",
                f"counter {key!r}: dispatcher accumulated "
                f"{int(dispatcher[key])} but the shards report {value} — a "
                "scatter/gather dropped or double-counted a delta",
            )


# ---------------------------------------------------------------------------
# Delta conservation (online ingest)
# ---------------------------------------------------------------------------


def check_delta_conservation(online: Any) -> None:
    """The LSM merge arithmetic must balance exactly.

    For an :class:`~repro.online.index.OnlineIndex`, the number of rows
    the merged view actually produces must equal ``len(base) + delta
    live − tombstones`` summed over the active and frozen buffers: the
    delete path validates every tombstone against a live occurrence at
    record time, so at *any* point — mid-ingest, mid-compaction, after a
    swap — each tombstone consumes exactly one matching row and no row
    is double-counted.  A mismatch means an acknowledged write was lost
    or resurrected.
    """
    with online._lock:
        state = online._state
        base_count = len(state.base)
        expected = base_count + state.delta.live_count - state.delta.tombstone_count
        if state.frozen is not None:
            expected += state.frozen.live_count - state.frozen.tombstone_count
        xs, _ys = online._merged_rows_full(state)
        actual = int(xs.shape[0])
        compacting = state.frozen is not None
    if actual != expected:
        raise InvariantViolation(
            "delta-conservation",
            f"merged view holds {actual} rows but the LSM arithmetic says "
            f"{expected} (base {base_count}, compacting={compacting}) — a "
            "tombstone missed its matching row or a row was double-counted",
        )


# ---------------------------------------------------------------------------
# Kernel parity (differential re-execution)
# ---------------------------------------------------------------------------


def _kernel_value_mismatch(got: Any, want: Any) -> Optional[str]:
    """Why two kernel return values are not byte-identical, or ``None``."""
    if isinstance(want, np.ndarray) or isinstance(got, np.ndarray):
        got_array = np.asarray(got)
        want_array = np.asarray(want)
        if got_array.dtype != want_array.dtype:
            return f"dtype {got_array.dtype} != reference {want_array.dtype}"
        if got_array.shape != want_array.shape:
            return f"shape {got_array.shape} != reference {want_array.shape}"
        if got_array.tobytes() != want_array.tobytes():
            diff = np.flatnonzero(
                got_array.view(np.uint8) != want_array.view(np.uint8)
            )
            return (
                f"values differ from the reference starting at byte "
                f"{int(diff[0])} of {got_array.nbytes}"
            )
        return None
    if got != want:
        return f"value {got!r} != reference {want!r}"
    return None


def assert_kernel_parity(kernel: str, got: Any, want: Any) -> None:
    """Raise ``InvariantViolation('kernel-parity', ...)`` naming the kernel
    unless ``got`` is byte-identical (dtype, shape, bytes, ordering) to the
    reference result ``want``."""
    if isinstance(want, tuple):
        if not isinstance(got, tuple) or len(got) != len(want):
            raise InvariantViolation(
                "kernel-parity",
                f"{kernel}() returned {type(got).__name__} where the "
                f"reference returns a {len(want)}-tuple",
            )
        for position, (got_part, want_part) in enumerate(zip(got, want)):
            mismatch = _kernel_value_mismatch(got_part, want_part)
            if mismatch is not None:
                raise InvariantViolation(
                    "kernel-parity",
                    f"{kernel}() element {position}: {mismatch}",
                )
        return
    mismatch = _kernel_value_mismatch(got, want)
    if mismatch is not None:
        raise InvariantViolation("kernel-parity", f"{kernel}() {mismatch}")


class KernelParityChecker:
    """A kernel backend that differentially re-executes sampled calls.

    Wraps the active backend: every call is served by the wrapped tier,
    and one in every ``sample_every`` (deterministically — a call
    counter, no RNG, so a failing run replays exactly) is re-executed on
    the pure-NumPy reference and compared byte-for-byte by
    :func:`assert_kernel_parity`.  Install with
    :func:`repro.kernels.set_kernels`; :func:`install_sanitizer` does so
    under ``REPRO_SANITIZE=1``.
    """

    def __init__(self, backend: Any, reference: Any, sample_every: int = 4) -> None:
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.wrapped = backend
        self.reference = reference
        self.sample_every = int(sample_every)
        self.calls = 0
        self.checked = 0
        from repro.kernels import KERNEL_NAMES

        for name in KERNEL_NAMES:
            setattr(self, name, self._checked_kernel(name))

    @property
    def BACKEND(self) -> str:  # noqa: N802  (kernel-backend protocol name)
        return getattr(self.wrapped, "BACKEND", "unknown")

    def _checked_kernel(self, name: str):
        fast = getattr(self.wrapped, name)
        reference = getattr(self.reference, name)

        def checked(*args, **kwargs):
            result = fast(*args, **kwargs)
            self.calls += 1
            if self.calls % self.sample_every == 0:
                self.checked += 1
                expected = reference(*args, **kwargs)
                assert_kernel_parity(name, result, expected)
            return result

        checked.__name__ = name
        return checked


# ---------------------------------------------------------------------------
# Installation (test-suite hook)
# ---------------------------------------------------------------------------

_ORIGINALS: Optional[Dict[str, Any]] = None


def sanitizer_installed() -> bool:
    return _ORIGINALS is not None


def install_sanitizer(
    *, kernel_sample_every: int = 4, delta_sample_every: int = 64
) -> None:
    """Wrap ``ZIndex._build`` / ``from_snapshot_state`` with deep checks,
    interpose the kernel-parity checker on the active kernel backend, and
    hook the online write path with the delta-conservation check.

    Online hooks: every ``delta_sample_every``-th ``OnlineIndex`` insert
    or delete (a shared deterministic counter — a failing run replays
    exactly) and *every* compaction re-derive the merged row count and
    compare it to the LSM arithmetic.

    Idempotent.  With the sanitizer never installed, the wrapped functions
    are the pristine originals — the disabled-mode overhead is exactly
    zero, which ``benchmarks/bench_sanitize.py`` verifies by identity.
    """
    global _ORIGINALS
    if _ORIGINALS is not None:
        return
    if delta_sample_every <= 0:
        raise ValueError(
            f"delta_sample_every must be positive, got {delta_sample_every}"
        )
    from repro import kernels
    from repro.online.index import OnlineIndex
    from repro.zindex.base import ZIndex

    original_build = ZIndex._build
    original_from_state = ZIndex.from_snapshot_state.__func__
    original_insert = OnlineIndex.insert
    original_delete = OnlineIndex.delete
    original_compact = OnlineIndex.compact

    def checked_build(self, *args, **kwargs):
        result = original_build(self, *args, **kwargs)
        check_index_invariants(self)
        return result

    def checked_from_state(cls, *args, **kwargs):
        index = original_from_state(cls, *args, **kwargs)
        check_index_invariants(index)
        return index

    mutation_clock = {"count": 0}

    def checked_insert(self, *args, **kwargs):
        result = original_insert(self, *args, **kwargs)
        mutation_clock["count"] += 1
        if mutation_clock["count"] % delta_sample_every == 0:
            check_delta_conservation(self)
        return result

    def checked_delete(self, *args, **kwargs):
        result = original_delete(self, *args, **kwargs)
        mutation_clock["count"] += 1
        if mutation_clock["count"] % delta_sample_every == 0:
            check_delta_conservation(self)
        return result

    def checked_compact(self, *args, **kwargs):
        result = original_compact(self, *args, **kwargs)
        if result is not None:
            check_delta_conservation(self)
        return result

    checked_build.__wrapped__ = original_build  # type: ignore[attr-defined]
    ZIndex._build = checked_build
    ZIndex.from_snapshot_state = classmethod(checked_from_state)
    for name, wrapper, original in (
        ("insert", checked_insert, original_insert),
        ("delete", checked_delete, original_delete),
        ("compact", checked_compact, original_compact),
    ):
        wrapper.__name__ = name
        wrapper.__wrapped__ = original  # type: ignore[attr-defined]
        setattr(OnlineIndex, name, wrapper)
    parity = KernelParityChecker(
        kernels.get_kernels(), kernels.reference_kernels(),
        sample_every=kernel_sample_every,
    )
    original_kernels = kernels.set_kernels(parity)
    _ORIGINALS = {
        "_build": original_build,
        "from_snapshot_state": original_from_state,
        "online_insert": original_insert,
        "online_delete": original_delete,
        "online_compact": original_compact,
        "kernels": original_kernels,
    }


def uninstall_sanitizer() -> None:
    """Restore the pristine ``ZIndex``/``OnlineIndex`` entry points and
    kernel backend."""
    global _ORIGINALS
    if _ORIGINALS is None:
        return
    from repro import kernels
    from repro.online.index import OnlineIndex
    from repro.zindex.base import ZIndex

    ZIndex._build = _ORIGINALS["_build"]
    ZIndex.from_snapshot_state = classmethod(_ORIGINALS["from_snapshot_state"])
    OnlineIndex.insert = _ORIGINALS["online_insert"]
    OnlineIndex.delete = _ORIGINALS["online_delete"]
    OnlineIndex.compact = _ORIGINALS["online_compact"]
    kernels.set_kernels(_ORIGINALS["kernels"])
    _ORIGINALS = None
