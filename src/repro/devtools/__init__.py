"""Developer tooling: the repro-lint static analyzer and runtime sanitizer.

This package mechanizes the correctness rules the codebase accumulated over
its first six PRs — flat-cache invalidation, copy-on-write promotion, the
persistence error taxonomy, deterministic container bytes, seed threading —
so they are enforced by CI instead of reviewer memory.

Two tools live here:

* :mod:`repro.devtools.lint` — an AST-based static analyzer run as
  ``python -m repro.devtools.lint src/repro`` with a registry of repo-specific
  rules and per-line suppressions.
* :mod:`repro.devtools.invariants` — a runtime sanitizer that deep-checks a
  built or loaded index (skip pointers, leaf boxes, mmap read-only flags,
  flat-cache coherence).  Enabled with ``REPRO_SANITIZE=1``; a pytest fixture
  hooks it into every index built by the test suite.

Neither module is imported by the library itself: production code paths pay
zero cost for their existence.
"""
