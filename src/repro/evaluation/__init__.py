"""Measurement and comparison harness.

The paper's evaluation reports two kinds of numbers: wall-clock latencies
(nanoseconds on the authors' C++ testbed) and logical work counters
(bounding boxes checked, excess points filtered, pages scanned — Figure 13).
Because a pure-Python reproduction cannot match C++ constant factors, the
harness records *both*: wall-clock via :mod:`time.perf_counter` /
pytest-benchmark, and logical counters via :class:`CostCounters`, which
every index in the library increments while processing queries.

The subpackage also contains the experiment drivers shared by the
``benchmarks/`` directory: the comparison runner, the cost-redemption
calculation of Table 4, and plain-text table formatting.
"""

from repro.evaluation.metrics import CostCounters, PhaseTimer, QueryStats
from repro.evaluation.runner import (
    ComparisonResult,
    ComparisonRunner,
    IndexFactory,
    measure_build,
    measure_join_workload,
    measure_knn_queries,
    measure_point_queries,
    measure_range_queries,
    measure_snapshot_roundtrip,
)
from repro.evaluation.cost_redemption import cost_redemption
from repro.evaluation.reporting import format_table, index_properties_table, percent_improvement

__all__ = [
    "CostCounters",
    "PhaseTimer",
    "QueryStats",
    "ComparisonResult",
    "ComparisonRunner",
    "IndexFactory",
    "measure_build",
    "measure_join_workload",
    "measure_knn_queries",
    "measure_point_queries",
    "measure_range_queries",
    "measure_snapshot_roundtrip",
    "cost_redemption",
    "format_table",
    "index_properties_table",
    "percent_improvement",
]
