"""Experiment runner: build indexes, run workloads, collect statistics.

The runner is deliberately free of any dependency on concrete index
classes: it works with *factories* (zero-argument callables returning a
freshly built index **or** a :class:`~repro.engine.SpatialEngine`) and
executes every workload through the engine's typed query plans
(:mod:`repro.query`), so the measurements exercise exactly the dispatch a
serving deployment uses.  Benchmarks compose it with the index
constructors and the workload generators to regenerate each of the
paper's tables and figures.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.evaluation.metrics import CostCounters, PhaseTimer, QueryStats
from repro.geometry import Point, Rect
from repro.query import JoinQuery, KnnQuery, PointQuery, RangeQuery

#: A factory producing a freshly built index or engine (build time is
#: measured around it).
IndexFactory = Callable[[], object]


def _as_engine(index):
    """Wrap bare indexes into an engine (imported lazily: engine needs the
    index classes, whose interfaces module needs this package)."""
    from repro.engine import as_engine

    return as_engine(index)


@dataclass
class ComparisonResult:
    """Everything measured for one index on one dataset/workload combination."""

    index_name: str
    build_seconds: float
    size_bytes: int
    num_points: int
    range_stats: Optional[QueryStats] = None
    point_stats: Optional[QueryStats] = None
    knn_stats: Optional[QueryStats] = None
    join_stats: Optional[QueryStats] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def range_mean_micros(self) -> float:
        return self.range_stats.mean_micros if self.range_stats else 0.0

    @property
    def point_mean_micros(self) -> float:
        return self.point_stats.mean_micros if self.point_stats else 0.0

    @property
    def knn_mean_micros(self) -> float:
        return self.knn_stats.mean_micros if self.knn_stats else 0.0

    @property
    def join_mean_micros(self) -> float:
        return self.join_stats.mean_micros if self.join_stats else 0.0


def measure_build(factory: IndexFactory):
    """Build an index through its factory, returning ``(index, seconds)``."""
    start = time.perf_counter()
    index = factory()
    return index, time.perf_counter() - start


def measure_range_queries(
    index,
    queries: Sequence[Rect],
    repeats: int = 1,
    batch: bool = False,
    count_only: bool = False,
) -> QueryStats:
    """Run a range-query workload, recording wall-clock and logical counters.

    The workload is executed as :class:`~repro.query.RangeQuery` plans
    through the engine dispatch (bare indexes are wrapped on the fly).
    With ``batch=True`` the plans are submitted through
    ``execute_many`` — the amortised ``batch_range_query`` path the
    columnar indexes optimise — instead of one ``execute`` per plan.
    Logical counters are identical either way; phase timings are only
    collected in per-query mode (the batch path bypasses the timer).
    ``count_only=True`` measures the count-only execution, which skips
    result materialisation entirely on the columnar core.
    """
    engine = _as_engine(index)
    plans = [RangeQuery(query) for query in queries]
    engine.reset_counters()
    timer = PhaseTimer()
    previous_timer = getattr(engine, "phase_timer", None)
    engine.phase_timer = timer
    start = time.perf_counter()
    if batch:
        for _ in range(max(1, repeats)):
            engine.execute_many(plans, count_only=count_only)
    else:
        for _ in range(max(1, repeats)):
            for plan in plans:
                engine.execute(plan, count_only=count_only)
    elapsed = time.perf_counter() - start
    engine.phase_timer = previous_timer
    counters: CostCounters = engine.counters.copy()
    extra: Dict[str, float] = {"count_only": 1.0} if count_only else {}
    return QueryStats(
        index_name=getattr(engine, "name", type(index).__name__),
        num_queries=len(queries) * max(1, repeats),
        total_seconds=elapsed,
        counters=counters,
        phase_seconds=timer.totals(),
        extra=extra,
    )


def measure_knn_queries(
    index, centers: Sequence[Point], k: int, repeats: int = 1, batch: bool = False
) -> QueryStats:
    """Run a kNN workload, recording wall-clock and logical counters.

    The probes are executed as :class:`~repro.query.KnnQuery` plans.  With
    ``batch=True`` they are submitted through ``execute_many`` — which
    recognises the homogeneous plan list and routes it through
    :meth:`~repro.interfaces.SpatialIndex.batch_knn` — instead of one
    ``execute`` per plan, measuring the amortised path the columnar
    indexes optimise.  Logical counters (and results) are identical
    either way.
    """
    engine = _as_engine(index)
    plans = [KnnQuery(center, k) for center in centers]
    engine.reset_counters()
    start = time.perf_counter()
    if batch:
        for _ in range(max(1, repeats)):
            engine.execute_many(plans)
    else:
        for _ in range(max(1, repeats)):
            for plan in plans:
                engine.execute(plan)
    elapsed = time.perf_counter() - start
    return QueryStats(
        index_name=getattr(engine, "name", type(index).__name__),
        num_queries=len(centers) * max(1, repeats),
        total_seconds=elapsed,
        counters=engine.counters.copy(),
        extra={"k": float(k)},
    )


def measure_join_workload(
    index,
    probes: Sequence[Point],
    kind: str = "box",
    *,
    half_width: Optional[float] = None,
    radius: Optional[float] = None,
    k: Optional[int] = None,
    repeats: int = 1,
) -> QueryStats:
    """Run one of the spatial-join operators as a measured workload.

    ``kind`` selects the operator: ``"box"`` (requires ``half_width``),
    ``"radius"`` (requires ``radius``) or ``"knn"`` (requires ``k``).  The
    workload is executed as one :class:`~repro.query.JoinQuery` plan
    through the engine dispatch; the returned stats count one query per
    probe and ``extra`` carries the number of result pairs and the join
    selectivity.
    """
    from repro.joins import join_selectivity, knn_join_pairs

    engine = _as_engine(index)
    plan = JoinQuery(
        tuple(probes), kind, half_width=half_width, radius=radius, k=k
    )
    if kind == "knn":
        # The kNN operator's native shape is per-probe (probe, neighbours)
        # entries; selectivity counts flattened pairs.
        run = lambda: knn_join_pairs(engine, probes, k)
    else:
        run = lambda: engine.execute(plan)
    engine.reset_counters()
    start = time.perf_counter()
    for _ in range(max(1, repeats)):
        pairs = run()
    elapsed = time.perf_counter() - start
    return QueryStats(
        index_name=getattr(engine, "name", type(index).__name__),
        num_queries=len(probes) * max(1, repeats),
        total_seconds=elapsed,
        counters=engine.counters.copy(),
        extra={
            "num_pairs": float(len(pairs)),
            "selectivity": join_selectivity(pairs, len(probes), len(engine)),
        },
    )


def measure_snapshot_roundtrip(
    index,
    path: Union[str, Path],
    build_seconds: Optional[float] = None,
    repeats: int = 3,
) -> Dict[str, float]:
    """Measure the save/load cycle of a structural snapshot.

    Saves ``index`` to ``path`` (:func:`repro.persistence.save_snapshot`),
    then loads it back ``repeats`` times, recording the best load time —
    the number a serving deployment cares about.  Returns a flat stats
    dict (``snapshot_save_seconds``, ``snapshot_load_seconds``,
    ``snapshot_bytes`` and, when ``build_seconds`` is given,
    ``snapshot_load_speedup`` = build / load, the load-vs-rebuild ratio).

    Raises :class:`TypeError` for indexes without structural snapshot
    support (everything outside the Z-index family), mirroring
    ``save_snapshot``; callers measuring a mixed fleet should catch it.
    """
    from repro.persistence import load_snapshot, save_snapshot

    start = time.perf_counter()
    save_snapshot(index, path)
    save_seconds = time.perf_counter() - start
    load_seconds = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        load_snapshot(path)
        load_seconds = min(load_seconds, time.perf_counter() - start)
    stats = {
        "snapshot_save_seconds": save_seconds,
        "snapshot_load_seconds": load_seconds,
        "snapshot_bytes": float(os.path.getsize(path)),
    }
    if build_seconds is not None and load_seconds > 0:
        stats["snapshot_load_speedup"] = build_seconds / load_seconds
    return stats


def measure_point_queries(index, points: Sequence[Point], repeats: int = 1) -> QueryStats:
    """Run a point-query workload (as :class:`~repro.query.PointQuery` plans),
    recording wall-clock and logical counters."""
    engine = _as_engine(index)
    plans = [PointQuery(point) for point in points]
    engine.reset_counters()
    start = time.perf_counter()
    for _ in range(max(1, repeats)):
        for plan in plans:
            engine.execute(plan)
    elapsed = time.perf_counter() - start
    return QueryStats(
        index_name=getattr(engine, "name", type(index).__name__),
        num_queries=len(points) * max(1, repeats),
        total_seconds=elapsed,
        counters=engine.counters.copy(),
    )


class ComparisonRunner:
    """Builds and measures a set of competing indexes on one workload.

    Usage::

        runner = ComparisonRunner({
            "Base": lambda: BaseZIndex(data),
            "WaZI": lambda: WaZI(data, workload.queries),
        })
        results = runner.run(range_queries=workload.queries,
                             point_queries=point_workload)
    """

    def __init__(self, factories: Dict[str, IndexFactory]) -> None:
        if not factories:
            raise ValueError("ComparisonRunner needs at least one index factory")
        self.factories = dict(factories)

    def run(
        self,
        range_queries: Sequence[Rect] = (),
        point_queries: Sequence[Point] = (),
        repeats: int = 1,
        batch_ranges: bool = False,
        *,
        knn_queries: Sequence[Point] = (),
        knn_k: int = 10,
        join_probes: Sequence[Point] = (),
        join_half_width: Optional[float] = None,
        batch_knn: bool = False,
        snapshot_dir: Optional[Union[str, Path]] = None,
    ) -> List[ComparisonResult]:
        """Build and measure every index on the supplied workloads.

        ``knn_queries`` adds a kNN scenario (``knn_k`` neighbours per
        center; ``batch_knn=True`` submits it through the amortised batch
        path).  ``join_probes`` plus ``join_half_width`` adds a box-join
        scenario measured through :func:`measure_join_workload`.

        ``snapshot_dir`` adds a persistence scenario: every index with
        structural snapshot support is saved to and re-loaded from
        ``<snapshot_dir>/<name>.snapshot``, and the
        ``snapshot_save_seconds`` / ``snapshot_load_seconds`` /
        ``snapshot_bytes`` / ``snapshot_load_speedup`` measurements of
        :func:`measure_snapshot_roundtrip` land in
        :attr:`ComparisonResult.extra` (indexes without snapshot support
        are skipped silently — their ``extra`` stays empty).
        """
        if join_probes and join_half_width is None:
            raise ValueError("join_probes requires join_half_width")
        if snapshot_dir is not None:
            Path(snapshot_dir).mkdir(parents=True, exist_ok=True)
        results: List[ComparisonResult] = []
        for name, factory in self.factories.items():
            index, build_seconds = measure_build(factory)
            result = ComparisonResult(
                index_name=name,
                build_seconds=build_seconds,
                size_bytes=index.size_bytes(),
                num_points=len(index),
            )
            if range_queries:
                result.range_stats = measure_range_queries(
                    index, range_queries, repeats, batch=batch_ranges
                )
            if point_queries:
                result.point_stats = measure_point_queries(index, point_queries, repeats)
            if knn_queries:
                result.knn_stats = measure_knn_queries(
                    index, knn_queries, knn_k, repeats, batch=batch_knn
                )
            if join_probes:
                result.join_stats = measure_join_workload(
                    index, join_probes, "box", half_width=join_half_width, repeats=repeats
                )
            # Measured last so saving (which primes the flat columns) cannot
            # warm the caches ahead of the query measurements above.
            # Factories may return engines; the snapshot layer works on the
            # wrapped index itself.
            target = getattr(index, "index", index)
            if snapshot_dir is not None and hasattr(target, "snapshot_state"):
                result.extra.update(measure_snapshot_roundtrip(
                    target,
                    Path(snapshot_dir) / f"{_safe_filename(name)}.snapshot",
                    build_seconds=build_seconds,
                ))
            results.append(result)
        return results

    def run_dict(self, **kwargs) -> Dict[str, ComparisonResult]:
        """Like :meth:`run` but keyed by index name."""
        return {result.index_name: result for result in self.run(**kwargs)}


def _safe_filename(name: str) -> str:
    """Index names like ``base+sk`` made filesystem-safe for snapshot files."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
