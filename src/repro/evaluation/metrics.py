"""Logical cost counters and phase timers.

Figure 9 of the paper splits range-query latency into a *Projection* phase
(walking the search structure to find candidate pages) and a *Scan* phase
(filtering points on those pages).  Figure 13 reports bounding boxes
checked, excess points compared and pages scanned.  Every index in this
library increments a :class:`CostCounters` instance while answering
queries so that those metrics can be reproduced exactly, independently of
Python's wall-clock noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CostCounters:
    """Logical work performed while answering queries.

    Attributes
    ----------
    nodes_visited:
        Internal search-structure nodes touched (tree nodes, grid cells).
    bbs_checked:
        Leaf/page bounding boxes compared against the query rectangle
        (Figure 13 bottom-left).
    pages_scanned:
        Pages whose points were actually filtered (Figure 13 bottom-right).
    points_filtered:
        Points compared against the query rectangle during filtering.
    points_returned:
        Points that satisfied the query (the result size).
    leaves_skipped:
        Leaves jumped over via look-ahead pointers (WaZI's skipping
        mechanism) or BIGMIN jumps, without a bounding-box comparison.
    """

    nodes_visited: int = 0
    bbs_checked: int = 0
    pages_scanned: int = 0
    points_filtered: int = 0
    points_returned: int = 0
    leaves_skipped: int = 0

    def reset(self) -> None:
        """Zero every counter (called between workloads)."""
        self.nodes_visited = 0
        self.bbs_checked = 0
        self.pages_scanned = 0
        self.points_filtered = 0
        self.points_returned = 0
        self.leaves_skipped = 0

    @property
    def excess_points(self) -> int:
        """Points filtered but not part of the result (Figure 13 top-right)."""
        return max(0, self.points_filtered - self.points_returned)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of the counters, convenient for reporting."""
        return {
            "nodes_visited": self.nodes_visited,
            "bbs_checked": self.bbs_checked,
            "pages_scanned": self.pages_scanned,
            "points_filtered": self.points_filtered,
            "points_returned": self.points_returned,
            "leaves_skipped": self.leaves_skipped,
            "excess_points": self.excess_points,
        }

    def add(self, other: "CostCounters") -> None:
        """Accumulate another counter set into this one."""
        self.nodes_visited += other.nodes_visited
        self.bbs_checked += other.bbs_checked
        self.pages_scanned += other.pages_scanned
        self.points_filtered += other.points_filtered
        self.points_returned += other.points_returned
        self.leaves_skipped += other.leaves_skipped

    def __sub__(self, other: "CostCounters") -> "CostCounters":
        return CostCounters(
            nodes_visited=self.nodes_visited - other.nodes_visited,
            bbs_checked=self.bbs_checked - other.bbs_checked,
            pages_scanned=self.pages_scanned - other.pages_scanned,
            points_filtered=self.points_filtered - other.points_filtered,
            points_returned=self.points_returned - other.points_returned,
            leaves_skipped=self.leaves_skipped - other.leaves_skipped,
        )

    def copy(self) -> "CostCounters":
        return CostCounters(**{k: v for k, v in self.snapshot().items() if k != "excess_points"})


class PhaseTimer:
    """Accumulates wall-clock time per named phase (Projection / Scan).

    Usage::

        timer = PhaseTimer()
        with timer.phase("projection"):
            ...identify candidate pages...
        with timer.phase("scan"):
            ...filter points...
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}

    def phase(self, name: str) -> "_PhaseContext":
        return _PhaseContext(self, name)

    def record(self, name: str, seconds: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + seconds

    def total(self, name: str) -> float:
        """Accumulated seconds spent in ``name`` (0.0 if never entered)."""
        return self._totals.get(name, 0.0)

    def totals(self) -> Dict[str, float]:
        return dict(self._totals)

    def reset(self) -> None:
        self._totals.clear()


class _PhaseContext:
    """Context manager recording the elapsed time of one phase entry."""

    def __init__(self, timer: PhaseTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.record(self._name, time.perf_counter() - self._start)


@dataclass
class QueryStats:
    """Aggregated statistics for one measured workload on one index."""

    index_name: str
    num_queries: int
    total_seconds: float
    counters: CostCounters = field(default_factory=CostCounters)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Workload-specific scalars (e.g. join pair counts / selectivity).
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_seconds(self) -> float:
        """Average seconds per query."""
        if self.num_queries == 0:
            return 0.0
        return self.total_seconds / self.num_queries

    @property
    def mean_micros(self) -> float:
        """Average microseconds per query (closer to the paper's scale)."""
        return self.mean_seconds * 1e6

    def per_query(self, counter_name: str) -> float:
        """Average per-query value of a logical counter."""
        if self.num_queries == 0:
            return 0.0
        return self.counters.snapshot()[counter_name] / self.num_queries
