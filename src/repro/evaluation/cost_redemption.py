"""Cost redemption (Table 4 of the paper).

A learned or workload-aware index typically pays a higher construction cost
in exchange for faster queries.  The paper quantifies the trade-off as the
number of query executions after which the cumulative (build + query) time
of an index matches that of the base Z-index:

    red_X = (X.build - Base.build) / (Base.query - X.query)

where ``query`` is the per-query latency.  Four regimes arise, mirroring
the (+)/(−)/blank annotations of Table 4:

* build slower, queries faster  → a positive break-even count (reported
  with ``"+"``: the index redeems itself after that many queries),
* build faster, queries slower  → a positive count with ``"-"``: the index
  is better *until* that many queries, worse afterwards,
* build faster and queries faster → always better (``"+"``, no count),
* build slower and queries slower → never better (``"-"``, no count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CostRedemption:
    """Break-even analysis of one index against the baseline."""

    index_name: str
    sign: str                      # "+" when the index eventually/always wins, "-" otherwise
    queries_to_break_even: Optional[float]  # None when one index dominates outright

    def render(self) -> str:
        """Human-readable cell matching the paper's Table 4 formatting."""
        if self.queries_to_break_even is None:
            return f"({self.sign})"
        if self.queries_to_break_even >= 1_000_000:
            return f"({self.sign}) {self.queries_to_break_even / 1_000_000:.1f}M"
        if self.queries_to_break_even >= 1_000:
            return f"({self.sign}) {self.queries_to_break_even / 1_000:.0f}k"
        return f"({self.sign}) {self.queries_to_break_even:.0f}"


def cost_redemption(
    index_name: str,
    index_build_seconds: float,
    index_query_seconds: float,
    base_build_seconds: float,
    base_query_seconds: float,
) -> CostRedemption:
    """Compute the cost-redemption entry of one index against the Base index.

    ``*_query_seconds`` are per-query latencies; ``*_build_seconds`` are
    one-off construction times.
    """
    build_delta = index_build_seconds - base_build_seconds
    query_gain = base_query_seconds - index_query_seconds
    if build_delta > 0 and query_gain > 0:
        return CostRedemption(index_name, "+", build_delta / query_gain)
    if build_delta < 0 and query_gain < 0:
        # Cheaper to build but slower per query: better only for the first
        # |build_delta| / |query_gain| queries.
        return CostRedemption(index_name, "-", abs(build_delta) / abs(query_gain))
    if build_delta <= 0 and query_gain >= 0:
        return CostRedemption(index_name, "+", None)
    return CostRedemption(index_name, "-", None)
