"""Plain-text reporting helpers shared by the benchmark drivers.

The benchmarks print the same rows and series the paper's tables and
figures report; these helpers keep the formatting (fixed-width tables,
percentage improvements, the Table 1 property matrix) in one place so every
benchmark's output looks the same.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width text table.

    Floats are formatted with ``float_format``; everything else with ``str``.
    """
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered_rows = [[render(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def percent_improvement(baseline_value: float, candidate_value: float) -> float:
    """Percentage improvement of a candidate over a baseline (positive = better).

    This is the metric of Figure 7: ``100 * (base - candidate) / base``; a
    candidate twice as fast as the baseline scores +50 %, one twice as slow
    scores −100 %.
    """
    if baseline_value == 0:
        return 0.0
    return 100.0 * (baseline_value - candidate_value) / baseline_value


#: The property matrix of Table 1 in the paper.  ``True`` means the index has
#: the property; the rows cover the six indexes of the main experiments.
INDEX_PROPERTIES: Dict[str, Dict[str, bool]] = {
    "STR": {"sfc_based": False, "query_aware": False, "learned": False},
    "CUR": {"sfc_based": False, "query_aware": True, "learned": True},
    "Flood": {"sfc_based": False, "query_aware": True, "learned": True},
    "QUASII": {"sfc_based": False, "query_aware": True, "learned": False},
    "Base": {"sfc_based": True, "query_aware": False, "learned": False},
    "WaZI": {"sfc_based": True, "query_aware": True, "learned": True},
}


def index_properties_table() -> str:
    """Render Table 1 (key properties of the compared indexes)."""
    headers = ["Index", "SFC-based", "Query-Aware", "Learned"]
    rows = []
    for name, properties in INDEX_PROPERTIES.items():
        rows.append(
            [
                name,
                "yes" if properties["sfc_based"] else "no",
                "yes" if properties["query_aware"] else "no",
                "yes" if properties["learned"] else "no",
            ]
        )
    return format_table(headers, rows, title="Table 1: key properties of compared indexes")


def improvement_table(
    baseline_name: str,
    values: Mapping[str, float],
    title: str = "",
) -> str:
    """Render a Figure 7-style percentage-improvement table over a baseline."""
    baseline_value = values[baseline_name]
    headers = ["Index", "value", f"% improvement over {baseline_name}"]
    rows = []
    for name, value in values.items():
        rows.append([name, value, percent_improvement(baseline_value, value)])
    return format_table(headers, rows, title=title)
