"""Baseline spatial indexes the paper compares WaZI against.

Every baseline the evaluation section uses is implemented from scratch on
top of the same :class:`~repro.interfaces.SpatialIndex` protocol and the
same cost counters, so the comparison harness treats them uniformly:

* :class:`~repro.baselines.str_rtree.STRRTree` — the Sort-Tile-Recursive
  bulk-loaded R-tree (``STR``),
* :class:`~repro.baselines.cur.CURTree` — the cost-based, workload-weighted
  unbalanced R-tree (``CUR``), packed with a weighted density estimator,
* :class:`~repro.baselines.flood.FloodIndex` — the simplified 2-D Flood
  grid index with a cost-model layout search (``Flood``),
* :class:`~repro.baselines.quasii.QUASIIIndex` — the converged query-aware
  cracking index (``QUASII``),
* :class:`~repro.baselines.zpgm.ZPGMIndex` — the rank-space Z-order +
  piecewise-linear learned index (``Zpgm``), one of the baselines Figure 4
  discards for poor performance,
* :class:`~repro.baselines.rtree.RTree` — a dynamic Guttman R-tree used by
  the update experiments and as the shared substrate of STR/CUR,
* :class:`~repro.baselines.quadtree.QuadTreeIndex` and
  :class:`~repro.baselines.kdtree_index.KDTreeIndex` — classical
  space-partitioning references used in tests and sanity checks.
"""

from repro.baselines.rtree import RTree, RTreeNode
from repro.baselines.str_rtree import STRRTree
from repro.baselines.cur import CURTree
from repro.baselines.flood import FloodIndex
from repro.baselines.quasii import QUASIIIndex
from repro.baselines.zpgm import ZPGMIndex
from repro.baselines.quadtree import QuadTreeIndex
from repro.baselines.kdtree_index import KDTreeIndex

__all__ = [
    "RTree",
    "RTreeNode",
    "STRRTree",
    "CURTree",
    "FloodIndex",
    "QUASIIIndex",
    "ZPGMIndex",
    "QuadTreeIndex",
    "KDTreeIndex",
]
