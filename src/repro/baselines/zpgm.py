"""Zpgm: a rank-space Z-order index with a piecewise-linear learned model.

This is one of the baselines Figure 4 of the paper discards for poor range
query performance: points are quantised onto an integer grid, sorted by
their Morton (Z-order) address, and a PGM-style piecewise linear model with
a bounded prediction error maps a Z-address to an approximate position in
the sorted array.  Range queries locate the Z-addresses of the query's two
corners and scan the array between them (page by page, with bounding-box
checks and optional BIGMIN jumps) — paying the classic price of rank-space
Z-ordering: the scanned interval can contain large runs of irrelevant
points, which is precisely the weakness WaZI's data-space layout avoids.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence

from repro.geometry import Point, Rect, bounding_box
from repro.interfaces import SpatialIndex
from repro.zorder import ZOrderMapper, bigmin

_SEGMENT_BYTES = 3 * 8
_POINT_BYTES = 16 + 8  # coordinates plus the stored Z-address
_PAGE_OVERHEAD_BYTES = 48


class _LinearSegment:
    """One segment of the piecewise-linear approximation: position ~ slope*z + intercept."""

    __slots__ = ("start_key", "slope", "intercept")

    def __init__(self, start_key: int, slope: float, intercept: float) -> None:
        self.start_key = start_key
        self.slope = slope
        self.intercept = intercept

    def predict(self, key: int) -> float:
        return self.slope * key + self.intercept


def _fit_segments(keys: List[int], epsilon: int) -> List[_LinearSegment]:
    """Greedy bounded-error piecewise-linear fit over a sorted key array.

    A simplified shrinking-cone construction: a segment grows while a single
    line through its first key can predict every covered position within
    ``epsilon``; when the cone collapses a new segment starts.
    """
    segments: List[_LinearSegment] = []
    n = len(keys)
    if n == 0:
        return segments
    start = 0
    while start < n:
        start_key = keys[start]
        slope_low, slope_high = float("-inf"), float("inf")
        end = start + 1
        while end < n:
            dx = keys[end] - start_key
            if dx == 0:
                end += 1
                continue
            dy = end - start
            slope_low = max(slope_low, (dy - epsilon) / dx)
            slope_high = min(slope_high, (dy + epsilon) / dx)
            if slope_low > slope_high:
                break
            end += 1
        if end == start + 1 or slope_low == float("-inf"):
            slope = 0.0
        else:
            slope = (max(slope_low, 0.0) + slope_high) / 2.0 if slope_high != float("inf") else max(slope_low, 0.0)
        segments.append(_LinearSegment(start_key, slope, start - slope * start_key))
        start = end
    return segments


class ZPGMIndex(SpatialIndex):
    """Rank-space Z-order + learned one-dimensional index (the ``Zpgm`` baseline)."""

    name = "Zpgm"

    def __init__(
        self,
        points: Sequence[Point],
        leaf_capacity: int = 64,
        epsilon: int = 32,
        bits: int = 16,
        use_bigmin: bool = True,
    ) -> None:
        super().__init__()
        if leaf_capacity <= 0:
            raise ValueError(f"leaf_capacity must be positive, got {leaf_capacity}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.leaf_capacity = leaf_capacity
        self.epsilon = epsilon
        self.bits = bits
        self.use_bigmin = use_bigmin
        self._extent = bounding_box(list(points)) if points else Rect(0, 0, 1, 1)
        self.mapper = ZOrderMapper(self._extent, bits=bits)
        decorated = sorted(
            ((self.mapper.z_address(p), p) for p in points), key=lambda item: item[0]
        )
        self._keys = [key for key, _ in decorated]
        self._sorted_points = [point for _, point in decorated]
        self._segments = _fit_segments(self._keys, epsilon)
        self._segment_keys = [segment.start_key for segment in self._segments]
        self._page_bounds = self._build_pages()

    # ------------------------------------------------------------------
    def _build_pages(self) -> List[Optional[Rect]]:
        bounds: List[Optional[Rect]] = []
        for start in range(0, len(self._sorted_points), self.leaf_capacity):
            page = self._sorted_points[start:start + self.leaf_capacity]
            bounds.append(bounding_box(page) if page else None)
        return bounds

    def _predict_position(self, key: int) -> int:
        """Model-predicted position of ``key``, corrected by a local binary search."""
        if not self._segments:
            return 0
        segment_index = max(0, bisect.bisect_right(self._segment_keys, key) - 1)
        predicted = int(round(self._segments[segment_index].predict(key)))
        low = max(0, predicted - self.epsilon)
        high = min(len(self._keys), predicted + self.epsilon + 1)
        # The model guarantees the true position lies within epsilon; a local
        # binary search inside the window pins it down exactly.
        position = bisect.bisect_left(self._keys, key, lo=low, hi=high)
        if (position == low and position > 0) or (position == high and high < len(self._keys)):
            position = bisect.bisect_left(self._keys, key)
        return position

    # ------------------------------------------------------------------
    def _range_query_points(self, query: Rect) -> List[Point]:
        if not self._sorted_points:
            return []
        z_low, z_high = self.mapper.z_range_of_query(query)
        low = self._predict_position(z_low)
        high = self._predict_position(z_high)
        if high < len(self._keys) and self._keys[high] <= z_high:
            high = bisect.bisect_right(self._keys, z_high)
        results: List[Point] = []
        page_low = low // self.leaf_capacity
        page_high = min((max(high, low)) // self.leaf_capacity, len(self._page_bounds) - 1)
        page = page_low
        while page <= page_high:
            self.counters.bbs_checked += 1
            bounds = self._page_bounds[page]
            if bounds is not None and bounds.overlaps(query):
                start = page * self.leaf_capacity
                stop = min(start + self.leaf_capacity, len(self._sorted_points))
                self.counters.pages_scanned += 1
                self.counters.points_filtered += stop - start
                for point in self._sorted_points[start:stop]:
                    if query.contains_xy(point.x, point.y):
                        results.append(point)
                        self.counters.points_returned += 1
                page += 1
                continue
            if self.use_bigmin and bounds is not None:
                # Jump the scan to the page holding the next Z-address that
                # can still fall inside the query rectangle.
                last_key = self._keys[min((page + 1) * self.leaf_capacity, len(self._keys)) - 1]
                next_key = bigmin(last_key, z_low, z_high, bits=self.bits)
                next_position = bisect.bisect_left(self._keys, next_key)
                next_page = next_position // self.leaf_capacity
                if next_page > page:
                    self.counters.leaves_skipped += next_page - page - 1
                    page = next_page
                    continue
            page += 1
        return results

    def point_query(self, point: Point) -> bool:
        if not self._sorted_points:
            return False
        key = self.mapper.z_address(point)
        position = self._predict_position(key)
        self.counters.nodes_visited += 1
        found = False
        index = position
        while index < len(self._keys) and self._keys[index] == key:
            self.counters.points_filtered += 1
            stored = self._sorted_points[index]
            if stored.x == point.x and stored.y == point.y:
                found = True
                break
            index += 1
        if found:
            self.counters.points_returned += 1
        return found

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sorted_points)

    def extent(self) -> Optional[Rect]:
        return self._extent if self._sorted_points else None

    def size_bytes(self) -> int:
        return (
            len(self._segments) * _SEGMENT_BYTES
            + len(self._sorted_points) * _POINT_BYTES
            + len(self._page_bounds) * _PAGE_OVERHEAD_BYTES
        )

    @property
    def num_segments(self) -> int:
        """Number of linear segments in the learned model."""
        return len(self._segments)
