"""STR: the Sort-Tile-Recursive bulk-loaded R-tree (Leutenegger et al.).

STR packs ``n`` points into leaves of capacity ``L`` by sorting the points
by x, cutting the sorted sequence into roughly ``sqrt(n / L)`` vertical
slices, sorting each slice by y and packing consecutive runs of ``L``
points into leaves.  Upper levels are built the same way over the leaf
bounding-box centers.  The result is a balanced R-tree with low overlap and
the fastest build time of all the paper's baselines (Table 3), but it is
data-aware only — the query workload plays no role.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.baselines.rtree import DEFAULT_FANOUT, DEFAULT_LEAF_CAPACITY, RTree, RTreeNode
from repro.geometry import Point


def _pack_leaves(points: List[Point], leaf_capacity: int) -> List[RTreeNode]:
    """Sort-tile-recursive packing of points into leaf nodes."""
    n = len(points)
    if n == 0:
        return []
    num_leaves = math.ceil(n / leaf_capacity)
    num_slices = max(1, math.ceil(math.sqrt(num_leaves)))
    slice_size = math.ceil(n / num_slices) if num_slices else n
    by_x = sorted(points, key=lambda p: (p.x, p.y))
    leaves: List[RTreeNode] = []
    for slice_start in range(0, n, slice_size):
        vertical_slice = sorted(
            by_x[slice_start:slice_start + slice_size], key=lambda p: (p.y, p.x)
        )
        for leaf_start in range(0, len(vertical_slice), leaf_capacity):
            leaf = RTreeNode(is_leaf=True)
            leaf.points = vertical_slice[leaf_start:leaf_start + leaf_capacity]
            leaf.recompute_bbox()
            leaves.append(leaf)
    return leaves


def _pack_level(nodes: List[RTreeNode], fanout: int) -> List[RTreeNode]:
    """Pack one level of nodes into parents using the STR tiling on node centers."""
    n = len(nodes)
    num_parents = math.ceil(n / fanout)
    num_slices = max(1, math.ceil(math.sqrt(num_parents)))
    slice_size = math.ceil(n / num_slices)

    def center_x(node: RTreeNode) -> float:
        return node.bbox.center.x if node.bbox is not None else 0.0

    def center_y(node: RTreeNode) -> float:
        return node.bbox.center.y if node.bbox is not None else 0.0

    by_x = sorted(nodes, key=center_x)
    parents: List[RTreeNode] = []
    for slice_start in range(0, n, slice_size):
        vertical_slice = sorted(by_x[slice_start:slice_start + slice_size], key=center_y)
        for group_start in range(0, len(vertical_slice), fanout):
            parent = RTreeNode(is_leaf=False)
            parent.children = vertical_slice[group_start:group_start + fanout]
            parent.recompute_bbox()
            parents.append(parent)
    return parents


class STRRTree(RTree):
    """R-tree bulk loaded with Sort-Tile-Recursive packing (the ``STR`` baseline)."""

    name = "STR"

    def __init__(
        self,
        points: Sequence[Point],
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        # Initialise the dynamic machinery with no points, then replace the
        # root with the bulk-loaded structure.
        super().__init__((), leaf_capacity=leaf_capacity, fanout=fanout)
        point_list = list(points)
        self._count = len(point_list)
        self.root = self._bulk_load(point_list)

    def _bulk_load(self, points: List[Point]) -> RTreeNode:
        leaves = _pack_leaves(points, self.leaf_capacity)
        if not leaves:
            return RTreeNode(is_leaf=True)
        if len(leaves) == 1:
            return leaves[0]
        level = leaves
        while len(level) > 1:
            level = _pack_level(level, self.fanout)
        return level[0]
