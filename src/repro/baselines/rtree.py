"""A dynamic R-tree (Guttman) and the node structure shared with STR/CUR.

The R-tree is the substrate for two of the paper's baselines: ``STR`` bulk
loads it with the Sort-Tile-Recursive algorithm and ``CUR`` with a
workload-weighted variant.  The dynamic insert path (ChooseLeaf by minimum
enlargement + quadratic split) is what the insert experiment of Section 6.7
exercises for the R-tree family.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.geometry import Point, Rect
from repro.interfaces import SpatialIndex

_NODE_OVERHEAD_BYTES = 4 * 8 + 8 + 8
_POINT_BYTES = 16

DEFAULT_FANOUT = 16
DEFAULT_LEAF_CAPACITY = 64


class RTreeNode:
    """A node of an R-tree: either a leaf of points or an internal node of children."""

    __slots__ = ("bbox", "children", "points", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.bbox: Optional[Rect] = None
        self.children: List["RTreeNode"] = []
        self.points: List[Point] = []

    # -- bounding-box maintenance ------------------------------------------
    def recompute_bbox(self) -> None:
        if self.is_leaf:
            if not self.points:
                self.bbox = None
                return
            xs = [p.x for p in self.points]
            ys = [p.y for p in self.points]
            self.bbox = Rect(min(xs), min(ys), max(xs), max(ys))
        else:
            boxes = [child.bbox for child in self.children if child.bbox is not None]
            if not boxes:
                self.bbox = None
                return
            self.bbox = Rect(
                min(b.xmin for b in boxes),
                min(b.ymin for b in boxes),
                max(b.xmax for b in boxes),
                max(b.ymax for b in boxes),
            )

    def include_point(self, point: Point) -> None:
        if self.bbox is None:
            self.bbox = Rect(point.x, point.y, point.x, point.y)
        else:
            self.bbox = self.bbox.expand_to_point(point)

    def include_rect(self, rect: Rect) -> None:
        self.bbox = rect if self.bbox is None else self.bbox.union(rect)

    def size_bytes(self) -> int:
        size = _NODE_OVERHEAD_BYTES
        if self.is_leaf:
            size += _POINT_BYTES * len(self.points)
        else:
            size += 8 * len(self.children)
            size += sum(child.size_bytes() for child in self.children)
        return size

    def count_points(self) -> int:
        if self.is_leaf:
            return len(self.points)
        return sum(child.count_points() for child in self.children)

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children)


class RTree(SpatialIndex):
    """A dynamic R-tree with ChooseLeaf-by-enlargement inserts and quadratic splits."""

    name = "R-tree"

    def __init__(
        self,
        points: Sequence[Point] = (),
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        super().__init__()
        if leaf_capacity <= 1:
            raise ValueError(f"leaf_capacity must exceed 1, got {leaf_capacity}")
        if fanout <= 2:
            raise ValueError(f"fanout must exceed 2, got {fanout}")
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self.root = RTreeNode(is_leaf=True)
        self._count = 0
        for point in points:
            self.insert(point)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _range_query_points(self, query: Rect) -> List[Point]:
        results: List[Point] = []
        self._range_recursive(self.root, query, results)
        return results

    def _range_recursive(self, node: RTreeNode, query: Rect, out: List[Point]) -> None:
        self.counters.nodes_visited += 1
        if node.bbox is None or not node.bbox.overlaps(query):
            return
        if node.is_leaf:
            self.counters.pages_scanned += 1
            self.counters.points_filtered += len(node.points)
            for point in node.points:
                if query.contains_xy(point.x, point.y):
                    out.append(point)
                    self.counters.points_returned += 1
            return
        for child in node.children:
            self.counters.bbs_checked += 1
            if child.bbox is not None and child.bbox.overlaps(query):
                self._range_recursive(child, query, out)

    def point_query(self, point: Point) -> bool:
        return self._point_recursive(self.root, point)

    def _point_recursive(self, node: RTreeNode, point: Point) -> bool:
        self.counters.nodes_visited += 1
        if node.bbox is None or not node.bbox.contains_point(point):
            return False
        if node.is_leaf:
            self.counters.pages_scanned += 1
            self.counters.points_filtered += len(node.points)
            found = any(p.x == point.x and p.y == point.y for p in node.points)
            if found:
                self.counters.points_returned += 1
            return found
        for child in node.children:
            self.counters.bbs_checked += 1
            if child.bbox is not None and child.bbox.contains_point(point):
                if self._point_recursive(child, point):
                    return True
        return False

    # ------------------------------------------------------------------
    # inserts (Guttman)
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        self._count += 1
        split = self._insert_recursive(self.root, point)
        if split is not None:
            new_root = RTreeNode(is_leaf=False)
            new_root.children = [self.root, split]
            new_root.recompute_bbox()
            self.root = new_root

    def _insert_recursive(self, node: RTreeNode, point: Point) -> Optional[RTreeNode]:
        """Insert and return a sibling node when ``node`` had to split."""
        if node.is_leaf:
            node.points.append(point)
            node.include_point(point)
            if len(node.points) > self.leaf_capacity:
                return self._split_leaf(node)
            return None
        child = self._choose_subtree(node, point)
        split = self._insert_recursive(child, point)
        node.include_point(point)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.fanout:
                return self._split_internal(node)
        return None

    @staticmethod
    def _choose_subtree(node: RTreeNode, point: Point) -> RTreeNode:
        """The child whose bounding box needs the least enlargement (ties by area)."""
        best_child = node.children[0]
        best_enlargement = float("inf")
        best_area = float("inf")
        target = Rect(point.x, point.y, point.x, point.y)
        for child in node.children:
            if child.bbox is None:
                return child
            enlargement = child.bbox.enlargement(target)
            area = child.bbox.area
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best_child = child
                best_enlargement = enlargement
                best_area = area
        return best_child

    def _split_leaf(self, node: RTreeNode) -> RTreeNode:
        """Quadratic split of an overflowing leaf; ``node`` keeps one group."""
        points = node.points
        seed_a, seed_b = self._pick_seeds([Rect(p.x, p.y, p.x, p.y) for p in points])
        group_a = [points[seed_a]]
        group_b = [points[seed_b]]
        box_a = Rect(points[seed_a].x, points[seed_a].y, points[seed_a].x, points[seed_a].y)
        box_b = Rect(points[seed_b].x, points[seed_b].y, points[seed_b].x, points[seed_b].y)
        for index, point in enumerate(points):
            if index in (seed_a, seed_b):
                continue
            grow_a = box_a.expand_to_point(point).area - box_a.area
            grow_b = box_b.expand_to_point(point).area - box_b.area
            if grow_a <= grow_b:
                group_a.append(point)
                box_a = box_a.expand_to_point(point)
            else:
                group_b.append(point)
                box_b = box_b.expand_to_point(point)
        node.points = group_a
        node.recompute_bbox()
        sibling = RTreeNode(is_leaf=True)
        sibling.points = group_b
        sibling.recompute_bbox()
        return sibling

    def _split_internal(self, node: RTreeNode) -> RTreeNode:
        children = node.children
        boxes = [child.bbox if child.bbox is not None else Rect(0, 0, 0, 0) for child in children]
        seed_a, seed_b = self._pick_seeds(boxes)
        group_a = [children[seed_a]]
        group_b = [children[seed_b]]
        box_a = boxes[seed_a]
        box_b = boxes[seed_b]
        for index, child in enumerate(children):
            if index in (seed_a, seed_b):
                continue
            child_box = boxes[index]
            grow_a = box_a.union(child_box).area - box_a.area
            grow_b = box_b.union(child_box).area - box_b.area
            if grow_a <= grow_b:
                group_a.append(child)
                box_a = box_a.union(child_box)
            else:
                group_b.append(child)
                box_b = box_b.union(child_box)
        node.children = group_a
        node.recompute_bbox()
        sibling = RTreeNode(is_leaf=False)
        sibling.children = group_b
        sibling.recompute_bbox()
        return sibling

    @staticmethod
    def _pick_seeds(boxes: List[Rect]):
        """Guttman's quadratic seed pick: the pair wasting the most area together."""
        best_pair = (0, min(1, len(boxes) - 1))
        worst_waste = -float("inf")
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                waste = boxes[i].union(boxes[j]).area - boxes[i].area - boxes[j].area
                if waste > worst_waste:
                    worst_waste = waste
                    best_pair = (i, j)
        return best_pair

    # ------------------------------------------------------------------
    # deletes
    # ------------------------------------------------------------------
    def delete(self, point: Point) -> bool:
        removed = self._delete_recursive(self.root, point)
        if removed:
            self._count -= 1
        return removed

    def _delete_recursive(self, node: RTreeNode, point: Point) -> bool:
        if node.bbox is None or not node.bbox.contains_point(point):
            return False
        if node.is_leaf:
            for index, stored in enumerate(node.points):
                if stored.x == point.x and stored.y == point.y:
                    node.points.pop(index)
                    node.recompute_bbox()
                    return True
            return False
        for child in node.children:
            if self._delete_recursive(child, point):
                node.children = [c for c in node.children if c.bbox is not None or c.is_leaf and c.points]
                node.recompute_bbox()
                return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def extent(self) -> Optional[Rect]:
        return self.root.bbox

    def size_bytes(self) -> int:
        return self.root.size_bytes()

    def depth(self) -> int:
        return self.root.depth()
