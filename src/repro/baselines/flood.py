"""Flood: a learned grid index with a cost-model layout search (Nathan et al.).

The paper implements a simplified two-dimensional Flood: the data space is
divided into a ``columns x rows`` grid, points are stored per cell (sorted
by y inside a cell), and the grid resolution is chosen by evaluating a
query-processing cost model on a sub-sample of the training workload.
Projection is a constant-time arithmetic computation (no tree traversal),
which is why Flood has by far the fastest projection phase in Figure 9,
while its scan cost depends on how well the single global grid fits the
workload — the weakness WaZI's per-node adaptivity addresses.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Point, Rect, bounding_box
from repro.interfaces import SpatialIndex

_CELL_OVERHEAD_BYTES = 48
_POINT_BYTES = 16

#: Candidate grid aspect factors explored by the layout search.  Each factor
#: ``f`` produces a candidate layout with ``columns ~ sqrt(n_cells) * f`` and
#: ``rows ~ sqrt(n_cells) / f``.
_DEFAULT_ASPECT_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)


class FloodIndex(SpatialIndex):
    """A 2-D grid index whose layout is chosen by a workload cost model.

    Parameters
    ----------
    points:
        The dataset to index.
    workload:
        Range queries used by the layout search.  With an empty workload the
        grid defaults to the square layout.
    cell_target:
        Desired average number of points per grid cell (plays the role the
        page size plays for the tree indexes).
    layout_sample:
        How many workload queries are used to score each candidate layout.
    aspect_factors:
        The column/row aspect ratios the layout search explores.
    """

    name = "Flood"

    def __init__(
        self,
        points: Sequence[Point],
        workload: Sequence[Rect] = (),
        cell_target: int = 64,
        layout_sample: int = 100,
        aspect_factors: Tuple[float, ...] = _DEFAULT_ASPECT_FACTORS,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__()
        if cell_target <= 0:
            raise ValueError(f"cell_target must be positive, got {cell_target}")
        self._points = list(points)
        self._extent = bounding_box(self._points) if self._points else Rect(0, 0, 1, 1)
        self.cell_target = cell_target
        rng = np.random.default_rng(seed)
        sample = self._sample_queries(list(workload), layout_sample, rng)
        self.columns, self.rows = self._search_layout(sample, aspect_factors)
        self._build_grid()

    # ------------------------------------------------------------------
    # layout search
    # ------------------------------------------------------------------
    @staticmethod
    def _sample_queries(workload: List[Rect], layout_sample: int, rng) -> List[Rect]:
        if not workload or len(workload) <= layout_sample:
            return workload
        indices = rng.choice(len(workload), size=layout_sample, replace=False)
        return [workload[i] for i in indices]

    def _candidate_layouts(self, aspect_factors: Tuple[float, ...]) -> List[Tuple[int, int]]:
        n = max(1, len(self._points))
        num_cells = max(1, n // self.cell_target)
        side = math.sqrt(num_cells)
        layouts = []
        for factor in aspect_factors:
            columns = max(1, int(round(side * factor)))
            rows = max(1, int(round(side / factor)))
            layouts.append((columns, rows))
        return sorted(set(layouts))

    def _search_layout(
        self, sample: List[Rect], aspect_factors: Tuple[float, ...]
    ) -> Tuple[int, int]:
        layouts = self._candidate_layouts(aspect_factors)
        if not sample:
            # No workload: prefer the square grid.
            return layouts[len(layouts) // 2] if layouts else (1, 1)
        best_layout = layouts[0]
        best_cost = float("inf")
        array = np.array([(p.x, p.y) for p in self._points]) if self._points else np.empty((0, 2))
        for columns, rows in layouts:
            cost = self._estimate_layout_cost(array, columns, rows, sample)
            if cost < best_cost:
                best_cost = cost
                best_layout = (columns, rows)
        return best_layout

    def _estimate_layout_cost(
        self, array: np.ndarray, columns: int, rows: int, sample: List[Rect]
    ) -> float:
        """Estimated points touched per query: cells overlapped x average cell load."""
        if array.shape[0] == 0:
            return 0.0
        counts, _, _ = np.histogram2d(
            array[:, 0],
            array[:, 1],
            bins=[columns, rows],
            range=[
                [self._extent.xmin, self._extent.xmin + self._span_x()],
                [self._extent.ymin, self._extent.ymin + self._span_y()],
            ],
        )
        total = 0.0
        for query in sample:
            ix_lo, ix_hi = self._column_range_for(query, columns)
            iy_lo, iy_hi = self._row_range_for(query, rows)
            total += float(counts[ix_lo:ix_hi + 1, iy_lo:iy_hi + 1].sum())
            # A small per-cell access charge models the projection overhead of
            # touching many tiny cells.
            total += 0.5 * (ix_hi - ix_lo + 1) * (iy_hi - iy_lo + 1)
        return total / max(1, len(sample))

    # ------------------------------------------------------------------
    # grid construction
    # ------------------------------------------------------------------
    def _span_x(self) -> float:
        return self._extent.width if self._extent.width > 0 else 1.0

    def _span_y(self) -> float:
        return self._extent.height if self._extent.height > 0 else 1.0

    def _build_grid(self) -> None:
        self._cells: List[List[Point]] = [[] for _ in range(self.columns * self.rows)]
        for point in self._points:
            self._cells[self._cell_index(point.x, point.y)].append(point)
        # Points inside a cell are kept sorted by y so scans can stop early.
        for cell in self._cells:
            cell.sort(key=lambda p: (p.y, p.x))
        self._cell_y_keys: List[List[float]] = [[p.y for p in cell] for cell in self._cells]

    def _cell_index(self, x: float, y: float) -> int:
        column = self._column_of(x)
        row = self._row_of(y)
        return column * self.rows + row

    def _column_of(self, x: float) -> int:
        column = int((x - self._extent.xmin) / self._span_x() * self.columns)
        return max(0, min(self.columns - 1, column))

    def _row_of(self, y: float) -> int:
        row = int((y - self._extent.ymin) / self._span_y() * self.rows)
        return max(0, min(self.rows - 1, row))

    def _column_range_for(self, query: Rect, columns: Optional[int] = None) -> Tuple[int, int]:
        columns = columns if columns is not None else self.columns
        span = self._span_x()
        lo = int((query.xmin - self._extent.xmin) / span * columns)
        hi = int((query.xmax - self._extent.xmin) / span * columns)
        return max(0, min(columns - 1, lo)), max(0, min(columns - 1, hi))

    def _row_range_for(self, query: Rect, rows: Optional[int] = None) -> Tuple[int, int]:
        rows = rows if rows is not None else self.rows
        span = self._span_y()
        lo = int((query.ymin - self._extent.ymin) / span * rows)
        hi = int((query.ymax - self._extent.ymin) / span * rows)
        return max(0, min(rows - 1, lo)), max(0, min(rows - 1, hi))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _range_query_points(self, query: Rect) -> List[Point]:
        results: List[Point] = []
        ix_lo, ix_hi = self._column_range_for(query)
        iy_lo, iy_hi = self._row_range_for(query)
        for column in range(ix_lo, ix_hi + 1):
            for row in range(iy_lo, iy_hi + 1):
                self.counters.nodes_visited += 1
                index = column * self.rows + row
                cell = self._cells[index]
                if not cell:
                    continue
                self.counters.pages_scanned += 1
                # Binary search the sorted-by-y cell for the query's y band.
                y_keys = self._cell_y_keys[index]
                start = bisect.bisect_left(y_keys, query.ymin)
                stop = bisect.bisect_right(y_keys, query.ymax)
                self.counters.points_filtered += stop - start
                for point in cell[start:stop]:
                    if query.xmin <= point.x <= query.xmax:
                        results.append(point)
                        self.counters.points_returned += 1
        return results

    def point_query(self, point: Point) -> bool:
        self.counters.nodes_visited += 1
        index = self._cell_index(point.x, point.y)
        cell = self._cells[index]
        y_keys = self._cell_y_keys[index]
        start = bisect.bisect_left(y_keys, point.y)
        stop = bisect.bisect_right(y_keys, point.y)
        self.counters.pages_scanned += 1
        self.counters.points_filtered += stop - start
        for stored in cell[start:stop]:
            if stored.x == point.x:
                self.counters.points_returned += 1
                return True
        return False

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert into the owning cell, keeping the cell's y-order."""
        self._points.append(point)
        if not self._extent.contains_point(point):
            self._extent = self._extent.expand_to_point(point)
            self._build_grid()
            return
        index = self._cell_index(point.x, point.y)
        position = bisect.bisect_left(self._cell_y_keys[index], point.y)
        self._cells[index].insert(position, point)
        self._cell_y_keys[index].insert(position, point.y)

    def delete(self, point: Point) -> bool:
        index = self._cell_index(point.x, point.y)
        cell = self._cells[index]
        for position, stored in enumerate(cell):
            if stored.x == point.x and stored.y == point.y:
                cell.pop(position)
                self._cell_y_keys[index].pop(position)
                self._points.remove(stored)
                return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def extent(self) -> Optional[Rect]:
        return self._extent

    def size_bytes(self) -> int:
        cells = self.columns * self.rows
        return cells * _CELL_OVERHEAD_BYTES + len(self._points) * (_POINT_BYTES + 8)

    @property
    def grid_shape(self) -> Tuple[int, int]:
        """The chosen layout as ``(columns, rows)``."""
        return (self.columns, self.rows)
