"""A bulk-loaded k-d tree index: the classical data-partitioning reference.

Like the quad-tree, this is a reference index rather than one of the
paper's headline baselines.  It doubles as a correctness oracle in the
integration tests (its query results must match every other index's) and
as the "traditional spatial index" arm in a couple of sanity benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.geometry import Point, Rect, bounding_box
from repro.interfaces import SpatialIndex

_NODE_BYTES = 2 * 8 + 2 * 8
_POINT_BYTES = 16


class _KDIndexNode:
    __slots__ = ("bbox", "split_dim", "split_value", "left", "right", "points")

    def __init__(self) -> None:
        self.bbox: Optional[Rect] = None
        self.split_dim: int = -1
        self.split_value: float = 0.0
        self.left: Optional["_KDIndexNode"] = None
        self.right: Optional["_KDIndexNode"] = None
        self.points: Optional[List[Point]] = None

    @property
    def is_leaf(self) -> bool:
        return self.points is not None


class KDTreeIndex(SpatialIndex):
    """A median-split k-d tree with leaf buckets, bulk loaded from the data."""

    name = "k-d tree"

    def __init__(self, points: Sequence[Point], leaf_capacity: int = 64) -> None:
        super().__init__()
        if leaf_capacity <= 0:
            raise ValueError(f"leaf_capacity must be positive, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        self._points = list(points)
        self._extent = bounding_box(self._points) if self._points else None
        self._root = self._build(list(self._points), depth=0) if self._points else None

    def _build(self, points: List[Point], depth: int) -> _KDIndexNode:
        node = _KDIndexNode()
        node.bbox = bounding_box(points)
        if len(points) <= self.leaf_capacity:
            node.points = points
            return node
        dim = depth % 2
        points.sort(key=(lambda p: p.x) if dim == 0 else (lambda p: p.y))
        mid = len(points) // 2
        node.split_dim = dim
        node.split_value = points[mid].x if dim == 0 else points[mid].y
        left_points = points[:mid]
        right_points = points[mid:]
        if not left_points or not right_points:
            node.points = points
            node.split_dim = -1
            return node
        node.left = self._build(left_points, depth + 1)
        node.right = self._build(right_points, depth + 1)
        return node

    # ------------------------------------------------------------------
    def _range_query_points(self, query: Rect) -> List[Point]:
        results: List[Point] = []
        if self._root is not None:
            self._range_recursive(self._root, query, results)
        return results

    def _range_recursive(self, node: _KDIndexNode, query: Rect, out: List[Point]) -> None:
        self.counters.nodes_visited += 1
        if node.bbox is None or not node.bbox.overlaps(query):
            return
        if node.is_leaf:
            self.counters.pages_scanned += 1
            self.counters.points_filtered += len(node.points)
            for point in node.points:
                if query.contains_xy(point.x, point.y):
                    out.append(point)
                    self.counters.points_returned += 1
            return
        for child in (node.left, node.right):
            if child is not None:
                self.counters.bbs_checked += 1
                if child.bbox is not None and child.bbox.overlaps(query):
                    self._range_recursive(child, query, out)

    def point_query(self, point: Point) -> bool:
        if self._root is None:
            return False
        return self._point_recursive(self._root, point)

    def _point_recursive(self, node: _KDIndexNode, point: Point) -> bool:
        self.counters.nodes_visited += 1
        if node.bbox is None or not node.bbox.contains_point(point):
            return False
        if node.is_leaf:
            self.counters.pages_scanned += 1
            self.counters.points_filtered += len(node.points)
            found = any(p.x == point.x and p.y == point.y for p in node.points)
            if found:
                self.counters.points_returned += 1
            return found
        for child in (node.left, node.right):
            if child is not None and self._point_recursive(child, point):
                return True
        return False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def extent(self) -> Optional[Rect]:
        return self._extent

    def size_bytes(self) -> int:
        def size(node: Optional[_KDIndexNode]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return _NODE_BYTES + _POINT_BYTES * len(node.points)
            return _NODE_BYTES + size(node.left) + size(node.right)

        return size(self._root)
