"""QUASII: the query-aware spatial incremental (cracking) index, converged.

QUASII (Pavlovic et al.) adapts its layout to the queries it actually
receives: every incoming range query "cracks" the touched data slices along
the query's boundaries, one dimension per level of a small hierarchy, so
that frequently queried regions end up in small, tightly fitting slices.
The paper evaluates the *converged* index — the state reached after the
whole training workload has been processed and no further cracking is
needed — which is what this class builds eagerly in its constructor.

The converged layout mirrors the original system's two-level hierarchy for
2-D data: the x-axis is cracked into column slices at the x-boundaries of
the training queries, and each column is cracked along y at the boundaries
of the queries overlapping that column.  The resulting pieces are uneven
and can be very small in heavily queried regions — which is exactly why the
paper observes a heavily "fractured" layout with fast in-workload range
queries but slow point queries and very high construction cost.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from repro.geometry import Point, Rect, bounding_box
from repro.interfaces import SpatialIndex

_SLICE_OVERHEAD_BYTES = 64
_POINT_BYTES = 16


class _ColumnSlice:
    """One cracked column: an x-interval, its y-boundaries and per-piece points."""

    __slots__ = ("x_low", "x_high", "y_boundaries", "pieces", "piece_bounds")

    def __init__(self, x_low: float, x_high: float) -> None:
        self.x_low = x_low
        self.x_high = x_high
        self.y_boundaries: List[float] = []
        self.pieces: List[List[Point]] = []
        self.piece_bounds: List[Optional[Rect]] = []


class QUASIIIndex(SpatialIndex):
    """The converged QUASII cracking index (the paper's ``QUASII`` baseline)."""

    name = "QUASII"

    def __init__(
        self,
        points: Sequence[Point],
        workload: Sequence[Rect],
        min_piece_size: int = 16,
        max_boundaries: int = 512,
    ) -> None:
        super().__init__()
        if min_piece_size <= 0:
            raise ValueError(f"min_piece_size must be positive, got {min_piece_size}")
        self._points = list(points)
        self._extent = bounding_box(self._points) if self._points else Rect(0, 0, 1, 1)
        self.min_piece_size = min_piece_size
        self.max_boundaries = max_boundaries
        self._columns: List[_ColumnSlice] = []
        self._column_boundaries: List[float] = []
        self._converge(list(workload))

    # ------------------------------------------------------------------
    # convergence (eager cracking on the whole training workload)
    # ------------------------------------------------------------------
    def _converge(self, workload: List[Rect]) -> None:
        x_boundaries = self._crack_boundaries(
            [query.xmin for query in workload] + [query.xmax for query in workload],
            self._extent.xmin,
            self._extent.xmax,
        )
        self._column_boundaries = x_boundaries
        edges = [self._extent.xmin] + x_boundaries + [self._extent.xmax]
        self._columns = [
            _ColumnSlice(edges[i], edges[i + 1]) for i in range(len(edges) - 1)
        ]
        # Distribute points into columns (last column takes the right edge).
        for column in self._columns:
            column.pieces = [[]]
            column.y_boundaries = []
        for point in self._points:
            self._column_of(point.x).pieces[0].append(point)
        # Crack each column along y using the queries that overlap it.
        for column in self._columns:
            column_rect = Rect(column.x_low, self._extent.ymin, column.x_high, self._extent.ymax)
            y_values: List[float] = []
            for query in workload:
                if query.overlaps(column_rect):
                    y_values.extend((query.ymin, query.ymax))
            boundaries = self._crack_boundaries(y_values, self._extent.ymin, self._extent.ymax)
            self._apply_y_cracks(column, boundaries)

    def _crack_boundaries(self, values: List[float], low: float, high: float) -> List[float]:
        """Unique, in-range crack positions, capped at ``max_boundaries``."""
        unique = sorted({v for v in values if low < v < high})
        if len(unique) <= self.max_boundaries:
            return unique
        step = len(unique) / self.max_boundaries
        return [unique[int(i * step)] for i in range(self.max_boundaries)]

    def _apply_y_cracks(self, column: _ColumnSlice, boundaries: List[float]) -> None:
        points = column.pieces[0]
        points.sort(key=lambda p: p.y)
        column.y_boundaries = boundaries
        edges = [self._extent.ymin] + boundaries + [self._extent.ymax]
        pieces: List[List[Point]] = []
        keys = [p.y for p in points]
        for i in range(len(edges) - 1):
            start = bisect.bisect_left(keys, edges[i]) if i > 0 else 0
            stop = bisect.bisect_left(keys, edges[i + 1]) if i + 1 < len(edges) - 1 else len(points)
            pieces.append(points[start:stop])
        # Merge tiny neighbouring pieces so the layout does not fragment below
        # the minimum piece size (the original system's leaf threshold).
        merged: List[List[Point]] = []
        merged_boundaries: List[float] = []
        for index, piece in enumerate(pieces):
            if merged and len(merged[-1]) < self.min_piece_size:
                merged[-1].extend(piece)
            else:
                merged.append(list(piece))
                if index > 0 and index - 1 < len(boundaries):
                    merged_boundaries.append(boundaries[index - 1])
        column.pieces = merged
        column.y_boundaries = merged_boundaries[: max(0, len(merged) - 1)]
        column.piece_bounds = [
            bounding_box(piece) if piece else None for piece in column.pieces
        ]

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def _column_of(self, x: float) -> _ColumnSlice:
        index = bisect.bisect_right(self._column_boundaries, x)
        return self._columns[index]

    def _column_range(self, query: Rect) -> Tuple[int, int]:
        low = bisect.bisect_right(self._column_boundaries, query.xmin)
        high = bisect.bisect_right(self._column_boundaries, query.xmax)
        return low, min(high, len(self._columns) - 1)

    @staticmethod
    def _piece_range(column: _ColumnSlice, query: Rect) -> Tuple[int, int]:
        low = bisect.bisect_right(column.y_boundaries, query.ymin)
        high = bisect.bisect_right(column.y_boundaries, query.ymax)
        return low, min(high, len(column.pieces) - 1)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _range_query_points(self, query: Rect) -> List[Point]:
        results: List[Point] = []
        col_lo, col_hi = self._column_range(query)
        for column_index in range(col_lo, col_hi + 1):
            column = self._columns[column_index]
            self.counters.nodes_visited += 1
            piece_lo, piece_hi = self._piece_range(column, query)
            for piece_index in range(piece_lo, piece_hi + 1):
                piece = column.pieces[piece_index]
                bounds = column.piece_bounds[piece_index]
                self.counters.bbs_checked += 1
                if not piece or bounds is None or not bounds.overlaps(query):
                    continue
                self.counters.pages_scanned += 1
                self.counters.points_filtered += len(piece)
                for point in piece:
                    if query.contains_xy(point.x, point.y):
                        results.append(point)
                        self.counters.points_returned += 1
        return results

    def point_query(self, point: Point) -> bool:
        column = self._column_of(point.x)
        self.counters.nodes_visited += 1
        piece_index = bisect.bisect_right(column.y_boundaries, point.y)
        piece_index = min(piece_index, len(column.pieces) - 1)
        piece = column.pieces[piece_index] if column.pieces else []
        self.counters.pages_scanned += 1
        self.counters.points_filtered += len(piece)
        found = any(p.x == point.x and p.y == point.y for p in piece)
        if found:
            self.counters.points_returned += 1
        return found

    # ------------------------------------------------------------------
    # updates: cracked layouts accept inserts into the owning piece
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        self._points.append(point)
        if not self._extent.contains_point(point):
            self._extent = self._extent.expand_to_point(point)
        column = self._column_of(point.x)
        if not column.pieces:
            column.pieces = [[]]
            column.piece_bounds = [None]
        piece_index = bisect.bisect_right(column.y_boundaries, point.y)
        piece_index = min(piece_index, len(column.pieces) - 1)
        column.pieces[piece_index].append(point)
        bounds = column.piece_bounds[piece_index]
        column.piece_bounds[piece_index] = (
            Rect(point.x, point.y, point.x, point.y)
            if bounds is None
            else bounds.expand_to_point(point)
        )

    def delete(self, point: Point) -> bool:
        column = self._column_of(point.x)
        piece_index = bisect.bisect_right(column.y_boundaries, point.y)
        piece_index = min(piece_index, len(column.pieces) - 1)
        if not column.pieces:
            return False
        piece = column.pieces[piece_index]
        for index, stored in enumerate(piece):
            if stored.x == point.x and stored.y == point.y:
                piece.pop(index)
                self._points.remove(stored)
                column.piece_bounds[piece_index] = bounding_box(piece) if piece else None
                return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def extent(self) -> Optional[Rect]:
        return self._extent

    def size_bytes(self) -> int:
        num_pieces = sum(len(column.pieces) for column in self._columns)
        return (
            num_pieces * _SLICE_OVERHEAD_BYTES
            + len(self._points) * _POINT_BYTES
            + len(self._columns) * _SLICE_OVERHEAD_BYTES
        )

    def num_pieces(self) -> int:
        """Total number of cracked pieces (a measure of layout fragmentation)."""
        return sum(len(column.pieces) for column in self._columns)
