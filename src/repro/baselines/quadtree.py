"""A point-region quad-tree: a classical space-partitioning reference index.

Not one of the paper's headline baselines, but a useful reference point in
tests and sanity benchmarks: it shares the quaternary branching of the
Z-index family while splitting at cell midpoints instead of data medians,
so comparing the two isolates the effect of data-aware split placement.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.geometry import Point, Rect, bounding_box
from repro.interfaces import SpatialIndex

_NODE_BYTES = 4 * 8 + 4 * 8
_POINT_BYTES = 16


class _QuadNode:
    __slots__ = ("cell", "points", "children")

    def __init__(self, cell: Rect) -> None:
        self.cell = cell
        self.points: List[Point] = []
        self.children: Optional[List["_QuadNode"]] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTreeIndex(SpatialIndex):
    """A PR quad-tree with midpoint splits and a fixed leaf capacity."""

    name = "QuadTree"

    def __init__(
        self,
        points: Sequence[Point],
        leaf_capacity: int = 64,
        max_depth: int = 24,
    ) -> None:
        super().__init__()
        if leaf_capacity <= 0:
            raise ValueError(f"leaf_capacity must be positive, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        self._count = 0
        point_list = list(points)
        extent = bounding_box(point_list) if point_list else Rect(0.0, 0.0, 1.0, 1.0)
        self._root = _QuadNode(extent)
        for point in point_list:
            self.insert(point)

    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        if not self._root.cell.contains_point(point):
            self._expand_root(point)
        self._insert_into(self._root, point, depth=0)
        self._count += 1

    def _expand_root(self, point: Point) -> None:
        """Grow the root cell to cover an out-of-bounds insert, rebuilding the tree."""
        all_points = self._collect(self._root)
        new_extent = self._root.cell.expand_to_point(point)
        self._root = _QuadNode(new_extent)
        for existing in all_points:
            self._insert_into(self._root, existing, depth=0)

    def _insert_into(self, node: _QuadNode, point: Point, depth: int) -> None:
        while not node.is_leaf:
            node = self._child_for(node, point)
            depth += 1
        node.points.append(point)
        if len(node.points) > self.leaf_capacity and depth < self.max_depth:
            self._split(node)

    @staticmethod
    def _child_for(node: _QuadNode, point: Point) -> _QuadNode:
        center = node.cell.center
        index = (1 if point.x > center.x else 0) + (2 if point.y > center.y else 0)
        return node.children[index]

    def _split(self, node: _QuadNode) -> None:
        center = node.cell.center
        quadrants = node.cell.split(center.x, center.y)
        node.children = [_QuadNode(cell) for cell in quadrants]
        points = node.points
        node.points = []
        for point in points:
            self._child_for(node, point).points.append(point)

    # ------------------------------------------------------------------
    def _range_query_points(self, query: Rect) -> List[Point]:
        results: List[Point] = []
        self._range_recursive(self._root, query, results)
        return results

    def _range_recursive(self, node: _QuadNode, query: Rect, out: List[Point]) -> None:
        self.counters.nodes_visited += 1
        if not node.cell.overlaps(query):
            return
        if node.is_leaf:
            if node.points:
                self.counters.pages_scanned += 1
                self.counters.points_filtered += len(node.points)
                for point in node.points:
                    if query.contains_xy(point.x, point.y):
                        out.append(point)
                        self.counters.points_returned += 1
            return
        for child in node.children:
            self.counters.bbs_checked += 1
            if child.cell.overlaps(query):
                self._range_recursive(child, query, out)

    def point_query(self, point: Point) -> bool:
        node = self._root
        if not node.cell.contains_point(point):
            return False
        while not node.is_leaf:
            self.counters.nodes_visited += 1
            node = self._child_for(node, point)
        self.counters.pages_scanned += 1
        self.counters.points_filtered += len(node.points)
        found = any(p.x == point.x and p.y == point.y for p in node.points)
        if found:
            self.counters.points_returned += 1
        return found

    def delete(self, point: Point) -> bool:
        node = self._root
        if not node.cell.contains_point(point):
            return False
        while not node.is_leaf:
            node = self._child_for(node, point)
        for index, stored in enumerate(node.points):
            if stored.x == point.x and stored.y == point.y:
                node.points.pop(index)
                self._count -= 1
                return True
        return False

    # ------------------------------------------------------------------
    def _collect(self, node: _QuadNode) -> List[Point]:
        if node.is_leaf:
            return list(node.points)
        collected: List[Point] = []
        for child in node.children:
            collected.extend(self._collect(child))
        return collected

    def __len__(self) -> int:
        return self._count

    def extent(self) -> Optional[Rect]:
        return self._root.cell if self._count else None

    def size_bytes(self) -> int:
        def size(node: _QuadNode) -> int:
            if node.is_leaf:
                return _NODE_BYTES + _POINT_BYTES * len(node.points)
            return _NODE_BYTES + sum(size(child) for child in node.children)

        return size(self._root)
