"""CUR: the cost-based, workload-weighted unbalanced R-tree (Ross et al.).

The paper adapts CUR to point data (Section 6.1) by weighting every data
point with the number of workload queries that fetch it, building a
*weighted* density estimator over those weights, and then selecting the
Sort-Tile-Recursive partitions by weighted quantiles instead of equal point
counts.  Regions the workload touches heavily receive more, smaller leaves
(better isolation → fewer false positives), while cold regions end up in
large, coarse leaves — an unbalanced tree tailored to the expected accesses.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.baselines.rtree import DEFAULT_FANOUT, DEFAULT_LEAF_CAPACITY, RTree, RTreeNode
from repro.baselines.str_rtree import _pack_level
from repro.density.weighted import WeightedPointSet
from repro.geometry import Point, Rect


def _weighted_slices(
    order: np.ndarray, weights: np.ndarray, num_slices: int
) -> List[np.ndarray]:
    """Split an ordering of point indices into runs of (approximately) equal weight."""
    if num_slices <= 1 or order.size == 0:
        return [order]
    cumulative = np.cumsum(weights[order])
    total = cumulative[-1]
    if total <= 0:
        # Degenerate workload: fall back to equal-count slices.
        return [chunk for chunk in np.array_split(order, num_slices) if chunk.size]
    boundaries = [total * (i + 1) / num_slices for i in range(num_slices - 1)]
    cut_positions = np.searchsorted(cumulative, boundaries, side="left") + 1
    slices = np.split(order, cut_positions)
    return [chunk for chunk in slices if chunk.size]


class CURTree(RTree):
    """The ``CUR`` baseline: STR-style packing driven by workload weights."""

    name = "CUR"

    def __init__(
        self,
        points: Sequence[Point],
        workload: Sequence[Rect],
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        fanout: int = DEFAULT_FANOUT,
        weight_epsilon: float = 1.0,
    ) -> None:
        super().__init__((), leaf_capacity=leaf_capacity, fanout=fanout)
        point_list = list(points)
        self._count = len(point_list)
        self.weighted = WeightedPointSet(point_list, list(workload))
        self._weights = self.weighted.smoothed_weights(weight_epsilon)
        self.root = self._bulk_load(point_list)

    # ------------------------------------------------------------------
    def _bulk_load(self, points: List[Point]) -> RTreeNode:
        n = len(points)
        if n == 0:
            return RTreeNode(is_leaf=True)
        xs = np.array([p.x for p in points])
        ys = np.array([p.y for p in points])
        num_leaves = math.ceil(n / self.leaf_capacity)
        num_slices = max(1, math.ceil(math.sqrt(num_leaves)))

        order_by_x = np.argsort(xs, kind="stable")
        leaves: List[RTreeNode] = []
        for slice_indices in _weighted_slices(order_by_x, self._weights, num_slices):
            slice_by_y = slice_indices[np.argsort(ys[slice_indices], kind="stable")]
            slice_weight = float(self._weights[slice_by_y].sum())
            # Hot slices hold more weight and therefore receive more cuts,
            # producing smaller leaves exactly where the workload looks.
            min_chunks = math.ceil(slice_by_y.size / self.leaf_capacity)
            target_chunks = max(min_chunks, self._chunks_for_weight(slice_weight, num_leaves))
            for chunk in _weighted_slices(slice_by_y, self._weights, target_chunks):
                leaves.extend(self._pack_chunk(chunk, points))
        if not leaves:
            return RTreeNode(is_leaf=True)
        if len(leaves) == 1:
            return leaves[0]
        level = leaves
        while len(level) > 1:
            level = _pack_level(level, self.fanout)
        return level[0]

    def _chunks_for_weight(self, slice_weight: float, num_leaves: int) -> int:
        total_weight = float(self._weights.sum())
        if total_weight <= 0:
            return 1
        return max(1, int(round(num_leaves * slice_weight / total_weight)))

    def _pack_chunk(self, chunk: np.ndarray, points: List[Point]) -> List[RTreeNode]:
        """Turn one weighted run of point indices into one or more leaves."""
        leaves = []
        for start in range(0, chunk.size, self.leaf_capacity):
            leaf = RTreeNode(is_leaf=True)
            leaf.points = [points[i] for i in chunk[start:start + self.leaf_capacity]]
            leaf.recompute_bbox()
            leaves.append(leaf)
        return leaves
