"""Incremental adapt: per-leaf cost attribution and scoped subtree re-derive.

Full ``adapt()`` rebuilds the entire layout from scratch — correct, but
stop-the-world and wasteful when only one region of the key space drifted.
This module re-derives *only the subtrees whose observed scan cost
regressed*:

1. **Attribute** the sliding workload window's scan cost to individual
   leaves with the same model workload-aware shard planning uses
   (overlapping windows × rows, :func:`leaf_scan_costs`).
2. **Select** candidate subtrees (the tree cut at ``scope_depth``) whose
   cost *density* is both hot relative to the tree average and regressed
   relative to the density recorded when the subtree was last re-derived.
   Selection is capped to a strict subset of the leaves — when everything
   is hot, the right tool is a full rebuild, not N disguised ones.
3. **Re-derive** each selected subtree with a workload-aware greedy split
   strategy scoped to the windows that overlap it and a page size tuned
   to their result sizes, then splice the rebuilt leaves over the old
   span (:meth:`~repro.zindex.base.ZIndex.rederive_subtree`).

The functions here operate on a plain :class:`~repro.zindex.base.ZIndex`;
locking against concurrent readers/writers is the caller's job (the
online index swaps in a re-derived clone, see
:meth:`repro.online.index.OnlineIndex.incremental_adapt`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.construction import GreedySplitStrategy
from repro.geometry import Rect
from repro.zindex.base import ZIndex
from repro.zindex.node import InternalNode, ZNode, iter_leaves_in_curve_order

__all__ = [
    "IncrementalAdaptReport",
    "SubtreeRef",
    "incremental_adapt",
    "leaf_scan_costs",
    "subtree_candidates",
]

#: Re-derived hot subtrees may use finer pages than the global layout:
#: a drifting hotspot usually means small interactive windows, and the
#: whole point of scoping the rebuild is that the finer granularity is
#: paid only where the workload concentrates.
DEFAULT_MIN_LEAF_CAPACITY = 16

#: Cut depth for candidate enumeration: depth 2 yields at most 16
#: candidate subtrees, coarse enough that selection stays a strict
#: subset and fine enough to isolate a localized hotspot.
DEFAULT_SCOPE_DEPTH = 2


@dataclass(frozen=True)
class SubtreeRef:
    """One candidate subtree: a node, its parent slot, and its leaf span."""

    node: ZNode
    parent: Optional[InternalNode]
    quadrant: int
    depth: int
    low: int
    high: int

    @property
    def num_leaves(self) -> int:
        return self.high - self.low + 1

    @property
    def key(self) -> Tuple[float, float, float, float]:
        """Stable identity across re-derives: the subtree's cell.

        Candidate cells at ``scope_depth`` are fixed by the split
        coordinates of their ancestors, which incremental adapt never
        touches — re-deriving a subtree replaces its *interior* but keeps
        its cell, so the key survives as the baseline dictionary index.
        """
        cell = self.node.cell
        return (cell.xmin, cell.ymin, cell.xmax, cell.ymax)


@dataclass
class IncrementalAdaptReport:
    """What one incremental-adapt pass looked at and what it touched."""

    candidates: int
    selected: int
    leaves_total: int
    leaves_rederived: int
    new_leaves: int
    seconds: float
    subtree_keys: List[Tuple[float, float, float, float]] = field(default_factory=list)

    @property
    def scope(self) -> float:
        """Fraction of the leaf layer that was re-derived (< 1.0 by construction)."""
        if self.leaves_total == 0:
            return 0.0
        return self.leaves_rederived / self.leaves_total


def leaf_scan_costs(index: ZIndex, rects: Sequence[Rect]) -> np.ndarray:
    """Per-leaf scan cost of the window workload over the live index.

    The same cost model as
    :func:`repro.serving.sharding.leaf_scan_weights` — (number of windows
    overlapping the leaf's effective box) × (rows the leaf scans for
    each), plus one row per leaf so untouched leaves keep a nonzero
    floor — but attributed over the live leaf list instead of a snapshot.
    """
    packed = index.leaflist.packed()
    boxes = packed.boxes
    nonempty = packed.nonempty
    sizes = np.array([entry.num_points for entry in index.leaflist], dtype=np.float64)
    hits = np.zeros(len(sizes), dtype=np.float64)
    for query in rects:
        overlap = (
            nonempty
            & (boxes[:, 3] >= query.ymin) & (boxes[:, 1] <= query.ymax)
            & (boxes[:, 2] >= query.xmin) & (boxes[:, 0] <= query.xmax)
        )
        hits += overlap
    return hits * sizes + sizes + 1.0


def subtree_candidates(
    index: ZIndex, scope_depth: int = DEFAULT_SCOPE_DEPTH
) -> List[SubtreeRef]:
    """The tree cut at ``scope_depth``: disjoint subtrees covering every leaf.

    Internal nodes shallower than ``scope_depth`` are descended; leaves
    encountered on the way and nodes at exactly ``scope_depth`` become
    candidates.  Each candidate's leaves occupy one contiguous run of the
    curve-ordered leaf list.
    """
    out: List[SubtreeRef] = []

    def visit(
        node: Optional[ZNode], parent: Optional[InternalNode], quadrant: int, depth: int
    ) -> None:
        if node is None:
            return
        if node.is_leaf or depth >= scope_depth:
            leaves = list(iter_leaves_in_curve_order(node))
            if leaves:
                out.append(
                    SubtreeRef(
                        node=node,
                        parent=parent,
                        quadrant=quadrant,
                        depth=depth,
                        low=leaves[0].leaf_index,
                        high=leaves[-1].leaf_index,
                    )
                )
            return
        for child_quadrant in range(4):
            visit(node.children[child_quadrant], node, child_quadrant, depth + 1)

    visit(index.root, None, -1, 0)
    out.sort(key=lambda ref: ref.low)
    return out


def _overlapping(rects: Sequence[Rect], cell: Rect) -> List[Rect]:
    return [
        r for r in rects
        if r.xmax >= cell.xmin and r.xmin <= cell.xmax
        and r.ymax >= cell.ymin and r.ymin <= cell.ymax
    ]


def _subtree_rows(index: ZIndex, ref: SubtreeRef) -> Tuple[np.ndarray, np.ndarray]:
    """Coordinate columns of every point stored under the candidate.

    Walks the node's *current* leaves rather than the ``low``/``high``
    span captured at enumeration time: re-deriving an earlier selected
    subtree renumbers every later leaf index, so the cached span may
    point at other subtrees' pages (or past the end of the list).
    """
    xs_parts, ys_parts = [], []
    for leaf in iter_leaves_in_curve_order(ref.node):
        page = index.leaflist[leaf.leaf_index].page
        if len(page):
            xs_parts.append(np.asarray(page.xs, dtype=np.float64))
            ys_parts.append(np.asarray(page.ys, dtype=np.float64))
    if not xs_parts:
        return np.empty(0), np.empty(0)
    return np.concatenate(xs_parts), np.concatenate(ys_parts)


def _tuned_capacity(
    xs: np.ndarray,
    ys: np.ndarray,
    relevant: Sequence[Rect],
    *,
    minimum: int,
    maximum: int,
) -> int:
    """Page size matched to the windows' mean result size inside the subtree."""
    from repro.analysis.tuning import tuned_leaf_capacity

    if xs.shape[0] == 0 or not relevant:
        return maximum
    counts = [
        int(np.count_nonzero(
            (xs >= r.xmin) & (xs <= r.xmax) & (ys >= r.ymin) & (ys <= r.ymax)
        ))
        for r in relevant
    ]
    mean_result = float(np.mean(counts)) if counts else 0.0
    return tuned_leaf_capacity(mean_result, minimum=minimum, maximum=maximum)


def incremental_adapt(
    index: ZIndex,
    rects: Sequence[Rect],
    *,
    scope_depth: int = DEFAULT_SCOPE_DEPTH,
    hot_factor: float = 1.5,
    regress_factor: float = 1.1,
    baselines: Optional[Dict[Tuple[float, float, float, float], float]] = None,
    num_candidates: int = 16,
    seed: Optional[int] = 0,
    min_leaf_capacity: int = DEFAULT_MIN_LEAF_CAPACITY,
) -> IncrementalAdaptReport:
    """Re-derive the subtrees whose scan cost regressed under ``rects``.

    ``baselines`` maps subtree keys to the cost density recorded the last
    time the subtree was re-derived; pass the same dictionary across
    calls so a subtree that is hot *because the workload lives there and
    the layout already tracks it* is not rebuilt over and over.  The
    dictionary is updated in place with post-re-derive densities.

    Mutates ``index`` (the caller holds whatever locks protect it) and
    returns a report whose :attr:`~IncrementalAdaptReport.scope` is the
    fraction of leaves touched — strictly less than 1.0, enforced by
    dropping the coolest selected subtree when selection would cover the
    whole leaf layer.
    """
    start = time.perf_counter()
    if baselines is None:
        baselines = {}
    candidates = subtree_candidates(index, scope_depth)
    total_leaves = len(index.leaflist)
    if not candidates or total_leaves == 0 or not rects:
        return IncrementalAdaptReport(
            candidates=len(candidates),
            selected=0,
            leaves_total=total_leaves,
            leaves_rederived=0,
            new_leaves=0,
            seconds=time.perf_counter() - start,
        )
    costs = leaf_scan_costs(index, rects)
    total_points = max(1, index.leaflist.num_points)
    tree_density = float(costs.sum()) / total_points

    def density(ref: SubtreeRef) -> float:
        span_cost = float(costs[ref.low : ref.high + 1].sum())
        span_points = sum(
            index.leaflist[i].num_points for i in range(ref.low, ref.high + 1)
        )
        return span_cost / max(1, span_points)

    densities = {ref.key: density(ref) for ref in candidates}
    selected = [
        ref for ref in candidates
        if densities[ref.key] > hot_factor * tree_density
        and densities[ref.key] > regress_factor * baselines.get(ref.key, 0.0)
    ]
    # Hottest first, then enforce the strict-subset cap.
    selected.sort(key=lambda ref: densities[ref.key], reverse=True)
    while selected and sum(ref.num_leaves for ref in selected) >= total_leaves:
        selected.pop()

    leaves_rederived = 0
    new_leaves = 0
    for ref in selected:
        relevant = _overlapping(rects, ref.node.cell)
        xs, ys = _subtree_rows(index, ref)
        capacity = _tuned_capacity(
            xs, ys, relevant,
            minimum=min_leaf_capacity, maximum=index.leaf_capacity,
        )
        strategy = GreedySplitStrategy(
            relevant, num_candidates=num_candidates, seed=seed, min_queries=1
        )
        leaves_rederived += ref.num_leaves
        new_leaves += index.rederive_subtree(
            ref.node, ref.parent, ref.quadrant,
            split_strategy=strategy, leaf_capacity=capacity,
        )

    if selected:
        # Record post-re-derive densities as the new baselines, so a
        # subtree the layout now tracks is only revisited if it regresses
        # again (the hotspot moved back, or further inserts degraded it).
        fresh_costs = leaf_scan_costs(index, rects)
        for ref in selected:
            replacement = (
                index.root if ref.parent is None else ref.parent.children[ref.quadrant]
            )
            leaves = list(iter_leaves_in_curve_order(replacement))
            low, high = leaves[0].leaf_index, leaves[-1].leaf_index
            span_cost = float(fresh_costs[low : high + 1].sum())
            span_points = sum(
                index.leaflist[i].num_points for i in range(low, high + 1)
            )
            baselines[ref.key] = span_cost / max(1, span_points)

    return IncrementalAdaptReport(
        candidates=len(candidates),
        selected=len(selected),
        leaves_total=total_leaves,
        leaves_rederived=leaves_rederived,
        new_leaves=new_leaves,
        seconds=time.perf_counter() - start,
        subtree_keys=[ref.key for ref in selected],
    )
