"""The LSM write path: a columnar memtable of inserts and tombstones.

Online writes never touch the built Z-index.  They land here, in
preallocated NumPy columns — an insert is two array writes and a counter
bump, a delete either flips an insert's ``alive`` flag (the point was
born in the delta) or records a *tombstone* masking one occurrence in
the base index.  Queries merge the base result with a vectorized scan
over the live delta rows and subtract the in-window tombstones; a
size/age policy eventually triggers compaction, which freezes the buffer
into an immutable :class:`DeltaView` and merges it into the columnar
core (see :mod:`repro.online.index`).

Deletes are validated at record time (a tombstone is only written when a
matching live occurrence exists), which is what makes the merge pure
multiset arithmetic: points carry no identity beyond their coordinates,
so ``merged = base + delta_live − tombstones`` holds row-for-row no
matter which physical occurrence a tombstone is taken to mask.  The
``delta-conservation`` sanitizer invariant re-derives exactly this
equation from the data.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.geometry import Rect

__all__ = ["DeltaBuffer", "DeltaView"]

#: Initial number of preallocated rows per column family.
_INITIAL_CAPACITY = 64


def _grown(array: np.ndarray, used: int, needed: int) -> np.ndarray:
    capacity = array.shape[0]
    if used + needed <= capacity:
        return array
    new_capacity = max(used + needed, capacity * 2, _INITIAL_CAPACITY)
    grown = np.empty((new_capacity,) + array.shape[1:], dtype=array.dtype)
    grown[:used] = array[:used]
    return grown


def window_mask(
    xs: np.ndarray, ys: np.ndarray, query: Rect
) -> np.ndarray:
    """Boolean mask of the rows inside the (closed) query rectangle."""
    mask = xs >= query.xmin
    mask &= xs <= query.xmax
    mask &= ys >= query.ymin
    mask &= ys <= query.ymax
    return mask


class DeltaView:
    """An immutable, compacted snapshot of a :class:`DeltaBuffer`.

    Produced by :meth:`DeltaBuffer.freeze` at the start of a compaction:
    the frozen rows keep serving merged queries while the merge builds the
    replacement index aside, and new writes land in a fresh active buffer.
    """

    __slots__ = ("xs", "ys", "tomb_x", "tomb_y", "bbox")

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        tomb_x: np.ndarray,
        tomb_y: np.ndarray,
        bbox: Optional[Tuple[float, float, float, float]],
    ) -> None:
        for array in (xs, ys, tomb_x, tomb_y):
            array.setflags(write=False)
        self.xs = xs
        self.ys = ys
        self.tomb_x = tomb_x
        self.tomb_y = tomb_y
        self.bbox = bbox

    @property
    def live_count(self) -> int:
        return int(self.xs.shape[0])

    @property
    def tombstone_count(self) -> int:
        return int(self.tomb_x.shape[0])

    def scan(self, query: Rect) -> Tuple[np.ndarray, np.ndarray]:
        """Live rows inside ``query``, in original insertion order."""
        mask = window_mask(self.xs, self.ys, query)
        return self.xs[mask], self.ys[mask]

    def count_in(self, query: Rect) -> int:
        return int(np.count_nonzero(window_mask(self.xs, self.ys, query)))

    def tombstones_in(self, query: Rect) -> Tuple[np.ndarray, np.ndarray]:
        mask = window_mask(self.tomb_x, self.tomb_y, query)
        return self.tomb_x[mask], self.tomb_y[mask]

    def tombstone_count_in(self, query: Rect) -> int:
        return int(np.count_nonzero(window_mask(self.tomb_x, self.tomb_y, query)))

    def exact_live(self, x: float, y: float) -> int:
        return int(np.count_nonzero((self.xs == x) & (self.ys == y)))

    def exact_tombstones(self, x: float, y: float) -> int:
        return int(np.count_nonzero((self.tomb_x == x) & (self.tomb_y == y)))


class DeltaBuffer:
    """Columnar memtable absorbing inserts and deletes (LSM level 0).

    Single-writer semantics: mutations happen under the owning
    :class:`~repro.online.index.OnlineIndex`'s lock.  Readers under the
    same lock always see a consistent prefix.
    """

    __slots__ = (
        "_x", "_y", "_alive", "_n", "_live",
        "_tx", "_ty", "_tn",
        "_bbox", "first_write_monotonic", "version",
    )

    def __init__(self) -> None:
        self._x = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._y = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._alive = np.empty(_INITIAL_CAPACITY, dtype=bool)
        self._n = 0
        self._live = 0
        self._tx = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._ty = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._tn = 0
        self._bbox: Optional[Tuple[float, float, float, float]] = None
        #: Monotonic timestamp of the first buffered write (age trigger).
        self.first_write_monotonic: Optional[float] = None
        #: Bumped by every mutation; composes into the owner's generation.
        self.version = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _touch(self, clock: Optional[float]) -> None:
        if self.first_write_monotonic is None:
            self.first_write_monotonic = clock
        self.version += 1

    def append(self, x: float, y: float, *, clock: Optional[float] = None) -> None:
        """Record one inserted point."""
        n = self._n
        self._x = _grown(self._x, n, 1)
        self._y = _grown(self._y, n, 1)
        self._alive = _grown(self._alive, n, 1)
        self._x[n] = x
        self._y[n] = y
        self._alive[n] = True
        self._n = n + 1
        self._live += 1
        if self._bbox is None:
            self._bbox = (x, y, x, y)
        else:
            b = self._bbox
            self._bbox = (min(b[0], x), min(b[1], y), max(b[2], x), max(b[3], y))
        self._touch(clock)

    def kill_newest(self, x: float, y: float) -> bool:
        """Cancel the most recent live insert of exactly these coordinates."""
        n = self._n
        if n == 0 or self._live == 0:
            return False
        hits = (self._x[:n] == x) & (self._y[:n] == y) & self._alive[:n]
        idx = np.flatnonzero(hits)
        if idx.shape[0] == 0:
            return False
        self._alive[int(idx[-1])] = False
        self._live -= 1
        self._touch(None)
        return True

    def tombstone(self, x: float, y: float, *, clock: Optional[float] = None) -> None:
        """Mask one base-index occurrence of exactly these coordinates.

        The caller (the online index's ``delete``) is responsible for
        having verified a maskable occurrence exists; the buffer itself
        only stores the coordinates.
        """
        n = self._tn
        self._tx = _grown(self._tx, n, 1)
        self._ty = _grown(self._ty, n, 1)
        self._tx[n] = x
        self._ty[n] = y
        self._tn = n + 1
        self._touch(clock)

    # ------------------------------------------------------------------
    # reads (live rows only)
    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        return self._live

    @property
    def tombstone_count(self) -> int:
        return self._tn

    @property
    def rows(self) -> int:
        """Buffered rows driving the size-based compaction trigger."""
        return self._n + self._tn

    @property
    def is_empty(self) -> bool:
        return self._n == 0 and self._tn == 0

    @property
    def bbox(self) -> Optional[Tuple[float, float, float, float]]:
        """Conservative bounding box over every insert ever buffered.

        Dead rows are not subtracted — a superset is always safe for the
        extent-derived search windows that consume it.
        """
        return self._bbox

    def live_xy(self) -> Tuple[np.ndarray, np.ndarray]:
        """Compacted copies of the live rows, in insertion order."""
        n = self._n
        alive = self._alive[:n]
        return self._x[:n][alive], self._y[:n][alive]

    def scan(self, query: Rect) -> Tuple[np.ndarray, np.ndarray]:
        """Live rows inside ``query``, in insertion order."""
        n = self._n
        mask = window_mask(self._x[:n], self._y[:n], query)
        mask &= self._alive[:n]
        return self._x[:n][mask], self._y[:n][mask]

    def count_in(self, query: Rect) -> int:
        n = self._n
        mask = window_mask(self._x[:n], self._y[:n], query)
        mask &= self._alive[:n]
        return int(np.count_nonzero(mask))

    def tombstones_in(self, query: Rect) -> Tuple[np.ndarray, np.ndarray]:
        n = self._tn
        mask = window_mask(self._tx[:n], self._ty[:n], query)
        return self._tx[:n][mask], self._ty[:n][mask]

    def tombstone_count_in(self, query: Rect) -> int:
        n = self._tn
        return int(np.count_nonzero(window_mask(self._tx[:n], self._ty[:n], query)))

    def exact_live(self, x: float, y: float) -> int:
        n = self._n
        hits = (self._x[:n] == x) & (self._y[:n] == y) & self._alive[:n]
        return int(np.count_nonzero(hits))

    def exact_tombstones(self, x: float, y: float) -> int:
        n = self._tn
        return int(np.count_nonzero((self._tx[:n] == x) & (self._ty[:n] == y)))

    def tombstone_xy(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of the recorded tombstone coordinates, in record order."""
        n = self._tn
        return self._tx[:n].copy(), self._ty[:n].copy()

    def nbytes(self) -> int:
        return (
            self._x.nbytes + self._y.nbytes + self._alive.nbytes
            + self._tx.nbytes + self._ty.nbytes
        )

    # ------------------------------------------------------------------
    # freeze
    # ------------------------------------------------------------------
    def freeze(self) -> DeltaView:
        """An immutable compacted snapshot (the compaction input)."""
        xs, ys = self.live_xy()
        return DeltaView(
            xs.copy(), ys.copy(),
            self._tx[:self._tn].copy(), self._ty[:self._tn].copy(),
            self._bbox,
        )

    @classmethod
    def merged(cls, frozen: DeltaView, active: "DeltaBuffer") -> "DeltaBuffer":
        """A buffer holding the frozen rows followed by the active rows.

        Used to roll a failed compaction back: the frozen view becomes
        plain buffered writes again, ahead of everything recorded since
        the freeze, so no acknowledged write is ever lost.
        """
        restored = cls()
        for x, y in zip(frozen.xs, frozen.ys):
            restored.append(float(x), float(y))
        for x, y in zip(frozen.tomb_x, frozen.tomb_y):
            restored.tombstone(float(x), float(y))
        ax, ay = active.live_xy()
        for x, y in zip(ax, ay):
            restored.append(float(x), float(y))
        tx, ty = active.tombstone_xy()
        for x, y in zip(tx, ty):
            restored.tombstone(float(x), float(y))
        restored.first_write_monotonic = (
            active.first_write_monotonic
            if active.first_write_monotonic is not None
            else restored.first_write_monotonic
        )
        return restored

    def __repr__(self) -> str:
        return (
            f"DeltaBuffer({self._live} live of {self._n} inserts, "
            f"{self._tn} tombstones)"
        )
