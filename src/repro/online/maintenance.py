"""The maintenance loop: compaction and incremental adapt on cadence.

The online index absorbs writes into its delta buffer and keeps serving,
but two jobs have to happen *eventually*: the delta must be compacted
into the columnar core (size/age policy), and the layout must follow the
workload (incremental adapt over the sliding window).
:class:`MaintenanceLoop` owns both, either as a daemon thread ticking on
an interval (:meth:`~MaintenanceLoop.start`) or driven explicitly
(:meth:`~MaintenanceLoop.run_once` — what tests and benchmarks use, so
the schedule is deterministic).

Every tick consults :class:`MaintenancePolicy`:

- **compact** when the delta holds at least ``compact_min_rows`` rows, or
  holds anything older than ``compact_max_age_seconds``;
- **incremental adapt** when the sliding workload window has at least
  ``adapt_min_queries`` recorded queries — the window's equivalent
  rectangles drive per-leaf cost attribution and only regressed subtrees
  are re-derived (see :mod:`repro.online.incremental`).

Per-subtree baselines persist across ticks in :attr:`MaintenanceLoop.
baselines`, which is what keeps the loop convergent: a subtree that is
hot because the workload lives there *and the layout already tracks it*
is not rebuilt again until it regresses.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.online.incremental import (
    DEFAULT_MIN_LEAF_CAPACITY,
    DEFAULT_SCOPE_DEPTH,
)
from repro.online.index import OnlineIndex
from repro.workload_log import WorkloadLog

__all__ = ["MaintenanceLoop", "MaintenancePolicy"]


@dataclass
class MaintenancePolicy:
    """When the loop compacts and when it adapts."""

    #: Cadence of the background thread (ignored by :meth:`run_once`).
    interval_seconds: float = 1.0
    #: Compact once the delta buffer holds this many rows (inserts +
    #: tombstones).
    compact_min_rows: int = 4096
    #: ... or once any buffered write is this old, whichever comes first.
    compact_max_age_seconds: float = 30.0
    #: Consider incremental adapt only with at least this many queries in
    #: the sliding window (below it the cost attribution chases noise).
    adapt_min_queries: int = 64
    #: Sliding-window size installed on the engine's workload log by
    #: ``SpatialEngine.online()`` (None leaves the log unbounded).
    window_size: Optional[int] = 2048
    #: Candidate-enumeration cut depth (see repro.online.incremental).
    scope_depth: int = DEFAULT_SCOPE_DEPTH
    #: Subtree cost density must exceed this multiple of the tree average.
    hot_factor: float = 1.5
    #: ... and this multiple of its post-re-derive baseline density.
    regress_factor: float = 1.1
    #: Floor for re-derived subtrees' tuned page size.
    min_leaf_capacity: int = DEFAULT_MIN_LEAF_CAPACITY
    #: Greedy split candidates per node during scoped re-derive.
    num_candidates: int = 16
    #: Seed of the scoped re-derive's candidate sampling.
    seed: Optional[int] = 0


class MaintenanceLoop:
    """Drives compaction and incremental adapt for one online index."""

    def __init__(
        self,
        index: OnlineIndex,
        workload_log: Optional[WorkloadLog] = None,
        policy: Optional[MaintenancePolicy] = None,
        *,
        metrics=None,
    ) -> None:
        self.index = index
        self.workload_log = workload_log
        self.policy = policy or MaintenancePolicy()
        #: Optional :class:`repro.obs.instrument.OnlineMetrics` sink.
        self.metrics = metrics
        #: Per-subtree post-re-derive cost densities, shared across ticks.
        self.baselines: dict = {}
        self.ticks = 0
        self.compactions = 0
        self.incremental_adapts = 0
        self.last_compaction: Optional[dict] = None
        self.last_adapt_report = None
        self.last_error: Optional[BaseException] = None
        self._tick_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # one deterministic tick
    # ------------------------------------------------------------------
    def _should_compact(self) -> bool:
        stats = self.index.delta_stats()
        rows = stats["rows"]
        if rows == 0:
            return False
        if rows >= self.policy.compact_min_rows:
            return True
        return self.index.delta_age_seconds() >= self.policy.compact_max_age_seconds

    def _window_rects(self):
        log = self.workload_log
        if log is None:
            return None
        if (log.num_ranges + log.num_knn + log.num_radius) < self.policy.adapt_min_queries:
            return None
        workload = log.snapshot()
        return workload.equivalent_rects(len(self.index), self.index.extent())

    def run_once(self) -> dict:
        """One maintenance tick: compact if due, adapt if the window says so.

        Deterministic and synchronous — benchmarks and tests call this on
        their own clock instead of racing the background thread.
        """
        with self._tick_lock:
            summary = {"compacted": False, "adapted": False, "scope": 0.0}
            policy = self.policy
            if self._should_compact():
                result = self.index.compact()
                if result is not None:
                    self.compactions += 1
                    self.last_compaction = result
                    summary["compacted"] = True
                    summary["compaction"] = result
                    if self.metrics is not None:
                        self.metrics.observe_compaction(result)
            rects = self._window_rects()
            if rects:
                report = self.index.incremental_adapt(
                    rects,
                    scope_depth=policy.scope_depth,
                    hot_factor=policy.hot_factor,
                    regress_factor=policy.regress_factor,
                    baselines=self.baselines,
                    num_candidates=policy.num_candidates,
                    seed=policy.seed,
                    min_leaf_capacity=policy.min_leaf_capacity,
                )
                self.last_adapt_report = report
                summary["scope"] = report.scope
                if report.selected:
                    self.incremental_adapts += 1
                    summary["adapted"] = True
                if self.metrics is not None:
                    self.metrics.observe_incremental_adapt(report)
            self.ticks += 1
            if self.metrics is not None:
                self.metrics.observe_tick()
                self.metrics.observe_delta(self.index.delta_stats())
            return summary

    # ------------------------------------------------------------------
    # background thread
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MaintenanceLoop":
        """Start the daemon thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-maintenance", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.policy.interval_seconds):
            try:
                self.run_once()
            except Exception as exc:  # keep the loop alive; surface via status()
                self.last_error = exc

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the thread and join it (no-op when not running)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """A JSON-ready snapshot of the loop (the /maintenance route body)."""
        report = self.last_adapt_report
        return {
            "running": self.running,
            "ticks": self.ticks,
            "compactions": self.compactions,
            "incremental_adapts": self.incremental_adapts,
            "delta": self.index.delta_stats(),
            "delta_age_seconds": self.index.delta_age_seconds(),
            "last_compaction": self.last_compaction,
            "last_adapt": None if report is None else {
                "candidates": report.candidates,
                "selected": report.selected,
                "leaves_total": report.leaves_total,
                "leaves_rederived": report.leaves_rederived,
                "new_leaves": report.new_leaves,
                "scope": report.scope,
                "seconds": report.seconds,
            },
            "last_error": None if self.last_error is None else repr(self.last_error),
            "policy": {
                "interval_seconds": self.policy.interval_seconds,
                "compact_min_rows": self.policy.compact_min_rows,
                "compact_max_age_seconds": self.policy.compact_max_age_seconds,
                "adapt_min_queries": self.policy.adapt_min_queries,
                "window_size": self.policy.window_size,
                "scope_depth": self.policy.scope_depth,
            },
        }
