"""Merge-on-read over (base Z-index, delta memtable): the online index.

:class:`OnlineIndex` is a :class:`~repro.interfaces.SpatialIndex` that
wraps a built base index plus an LSM :class:`~repro.online.delta.
DeltaBuffer`.  Writes land in the delta; queries merge the base result
with a vectorized scan over the live delta rows and subtract the
in-window tombstones.  Because deletes are validated at record time and
points carry no identity beyond their coordinates, the merge is exact
multiset arithmetic — ``merged = base + delta_live − tombstones`` — and
query results are identical (up to row order, which canonicalisation
absorbs) to an index eagerly rebuilt from the merged point set.

Compaction follows the freeze → merge-aside → swap protocol:

1. under the lock, the active delta is frozen into an immutable
   :class:`DeltaView` and a fresh buffer starts absorbing new writes;
2. outside the lock, an O(n) copy-on-write clone of the base (the
   snapshot-state round trip — layout preserved, shared pages promote on
   first mutation) absorbs the frozen inserts and tombstones through the
   incremental insert/delete paths;
3. under the lock, the merged clone atomically replaces the base (one
   attribute rebind, exactly the hot-swap adapt() performs) and the
   frozen view is dropped.

Queries concurrent with step 2 keep seeing ``old base + frozen +
active`` — the same multiset — so compaction never blocks or torn-reads
the serving path.  The generation counter the plan cache keys on is
bumped by every mutation and every swap.

Thread safety: one reentrant lock serialises every public method, the
same coarse discipline the HTTP service already applies to its engine.
The freeze/merge/swap split keeps the lock hold times O(delta), never
O(index).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Point, Rect
from repro.interfaces import SpatialIndex
from repro.online.delta import DeltaBuffer, DeltaView
from repro.results import ResultSet
from repro.zindex.base import ZIndex

__all__ = ["OnlineIndex"]


class _State:
    """One immutable (base, frozen, active) triple, swapped atomically.

    Readers grab ``self._state`` once and work off the triple; writers
    install a fresh triple under the lock.  The triple — not three
    separate attributes — is what makes the compaction swap atomic to
    any reader.
    """

    __slots__ = ("base", "frozen", "delta")

    def __init__(
        self, base: SpatialIndex, frozen: Optional[DeltaView], delta: DeltaBuffer
    ) -> None:
        self.base = base
        self.frozen = frozen
        self.delta = delta


def _subtract_tombstones(
    xs: np.ndarray, ys: np.ndarray, tomb_x: np.ndarray, tomb_y: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Remove one row per tombstone occurrence (earliest match first).

    Which physical row a tombstone consumes is immaterial — rows are
    coordinate pairs, identical coordinates are indistinguishable — but
    taking the earliest keeps the output deterministic.
    """
    if tomb_x.shape[0] == 0 or xs.shape[0] == 0:
        return xs, ys
    keep = np.ones(xs.shape[0], dtype=bool)
    coords, counts = np.unique(
        np.stack([tomb_x, tomb_y], axis=1), axis=0, return_counts=True
    )
    for (cx, cy), multiplicity in zip(coords, counts):
        hits = np.flatnonzero((xs == cx) & (ys == cy) & keep)
        keep[hits[: int(multiplicity)]] = False
    return xs[keep], ys[keep]


class OnlineIndex(SpatialIndex):
    """A base index + LSM delta buffer serving a merged, mutable view."""

    name = "Online"

    def __init__(self, base: SpatialIndex) -> None:
        if isinstance(base, OnlineIndex):
            raise TypeError("cannot stack OnlineIndex on top of OnlineIndex")
        self._lock = threading.RLock()
        # Serialises the structural operations (compaction, full rebuild,
        # incremental adapt) against each other for their whole duration;
        # always acquired *before* ``_lock``, never the other way around.
        self._maintenance_lock = threading.Lock()
        self._state = _State(base, None, DeltaBuffer())
        self._flat_generation = 0
        self.name = f"Online[{base.name}]"
        self.compactions = 0
        self.compaction_seconds = 0.0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def base(self) -> SpatialIndex:
        """The current base index (hot-swapped by compaction/adapt)."""
        return self._state.base

    @property
    def counters(self):
        """Cost counters, shared with the current base index.

        Delta-scan work is added onto the same object, so engine metrics
        and advise() replays see the merged path's true scan cost.
        """
        return self._state.base.counters

    @counters.setter
    def counters(self, value) -> None:  # SpatialIndex.__init__ compatibility
        self._state.base.counters = value

    @property
    def leaf_capacity(self) -> Optional[int]:
        return getattr(self._state.base, "leaf_capacity", None)

    def delta_stats(self) -> dict:
        """A point-in-time summary of the write path (stats/metrics)."""
        with self._lock:
            state = self._state
            frozen = state.frozen
            return {
                "live": state.delta.live_count,
                "tombstones": state.delta.tombstone_count,
                "rows": state.delta.rows,
                "frozen_live": 0 if frozen is None else frozen.live_count,
                "frozen_tombstones": 0 if frozen is None else frozen.tombstone_count,
                "compacting": frozen is not None,
                "compactions": self.compactions,
                "generation": self._flat_generation,
            }

    def delta_age_seconds(self) -> float:
        """Seconds since the oldest un-compacted write (0.0 when clean)."""
        with self._lock:
            first = self._state.delta.first_write_monotonic
            if first is None:
                return 0.0
            return max(0.0, time.monotonic() - first)

    def __len__(self) -> int:
        with self._lock:
            state = self._state
            total = len(state.base) + state.delta.live_count - state.delta.tombstone_count
            if state.frozen is not None:
                total += state.frozen.live_count - state.frozen.tombstone_count
            return total

    def extent(self) -> Optional[Rect]:
        with self._lock:
            state = self._state
            extent = state.base.extent()
            boxes = [state.delta.bbox]
            if state.frozen is not None:
                boxes.append(state.frozen.bbox)
            for box in boxes:
                if box is None:
                    continue
                grown = Rect(box[0], box[1], box[2], box[3])
                extent = grown if extent is None else Rect(
                    min(extent.xmin, grown.xmin), min(extent.ymin, grown.ymin),
                    max(extent.xmax, grown.xmax), max(extent.ymax, grown.ymax),
                )
            return extent

    def size_bytes(self) -> int:
        with self._lock:
            state = self._state
            return state.base.size_bytes() + state.delta.nbytes()

    def all_points(self) -> List[Point]:
        """The merged point multiset: base order, tombstones removed, delta appended."""
        with self._lock:
            state = self._state
            xs, ys = self._merged_rows_full(state)
            return [Point(float(x), float(y)) for x, y in zip(xs, ys)]

    def _prime_query_caches(self) -> None:
        prime = getattr(self._state.base, "_prime_query_caches", None)
        if prime is not None:
            prime()

    # ------------------------------------------------------------------
    # merged reads
    # ------------------------------------------------------------------
    def _quiet(self, state: _State) -> bool:
        return state.frozen is None and state.delta.is_empty

    def _merge_result(self, state: _State, query: Rect, base_result: ResultSet) -> ResultSet:
        delta = state.delta
        frozen = state.frozen
        bx, by = base_result.as_arrays()
        parts_x = [np.asarray(bx, dtype=np.float64)]
        parts_y = [np.asarray(by, dtype=np.float64)]
        scanned = delta.live_count
        if frozen is not None:
            scanned += frozen.live_count
            fx, fy = frozen.scan(query)
            parts_x.append(fx)
            parts_y.append(fy)
        ax, ay = delta.scan(query)
        parts_x.append(ax)
        parts_y.append(ay)
        dtx, dty = delta.tombstones_in(query)
        tombs_x = [dtx]
        tombs_y = [dty]
        if frozen is not None:
            ftx, fty = frozen.tombstones_in(query)
            tombs_x.append(ftx)
            tombs_y.append(fty)
        tomb_x = np.concatenate(tombs_x) if len(tombs_x) > 1 else tombs_x[0]
        tomb_y = np.concatenate(tombs_y) if len(tombs_y) > 1 else tombs_y[0]
        extra = sum(p.shape[0] for p in parts_x[1:])
        counters = state.base.counters
        counters.points_filtered += scanned
        if extra == 0 and tomb_x.shape[0] == 0:
            return base_result
        xs = np.concatenate(parts_x)
        ys = np.concatenate(parts_y)
        xs, ys = _subtract_tombstones(xs, ys, tomb_x, tomb_y)
        counters.points_returned += int(xs.shape[0]) - base_result.count()
        return ResultSet.from_arrays(xs, ys)

    def _merged_rows_full(self, state: _State) -> Tuple[np.ndarray, np.ndarray]:
        """Every merged row, for all_points()/conservation checks."""
        base = state.base
        points = base.all_points() if hasattr(base, "all_points") else list(base)
        bx = np.fromiter((p.x for p in points), dtype=np.float64, count=len(points))
        by = np.fromiter((p.y for p in points), dtype=np.float64, count=len(points))
        parts_x, parts_y = [bx], [by]
        tombs_x, tombs_y = [], []
        if state.frozen is not None:
            parts_x.append(state.frozen.xs)
            parts_y.append(state.frozen.ys)
            tombs_x.append(state.frozen.tomb_x)
            tombs_y.append(state.frozen.tomb_y)
        ax, ay = state.delta.live_xy()
        parts_x.append(ax)
        parts_y.append(ay)
        dtx, dty = state.delta.tombstone_xy()
        tombs_x.append(dtx)
        tombs_y.append(dty)
        xs = np.concatenate(parts_x)
        ys = np.concatenate(parts_y)
        tomb_x = np.concatenate(tombs_x) if tombs_x else np.empty(0)
        tomb_y = np.concatenate(tombs_y) if tombs_y else np.empty(0)
        return _subtract_tombstones(xs, ys, tomb_x, tomb_y)

    def range_query(self, query: Rect) -> ResultSet:
        with self._lock:
            state = self._state
            base_result = state.base.range_query(query)
            if self._quiet(state):
                return base_result
            return self._merge_result(state, query, base_result)

    def _range_query_points(self, query: Rect) -> List[Point]:
        return self.range_query(query).points()

    def batch_range_query(self, queries: Sequence[Rect]) -> List[ResultSet]:
        with self._lock:
            state = self._state
            base_results = state.base.batch_range_query(queries)
            if self._quiet(state):
                return base_results
            return [
                self._merge_result(state, query, result)
                for query, result in zip(queries, base_results)
            ]

    def range_count(self, query: Rect) -> int:
        with self._lock:
            state = self._state
            count = state.base.range_count(query)
            if self._quiet(state):
                return count
            delta = state.delta
            state.base.counters.points_filtered += delta.live_count
            count += delta.count_in(query) - delta.tombstone_count_in(query)
            if state.frozen is not None:
                state.base.counters.points_filtered += state.frozen.live_count
                count += state.frozen.count_in(query)
                count -= state.frozen.tombstone_count_in(query)
            return count

    def batch_range_count(self, queries: Sequence[Rect]) -> List[int]:
        with self._lock:
            state = self._state
            counts = state.base.batch_range_count(queries)
            if self._quiet(state):
                return counts
            delta = state.delta
            frozen = state.frozen
            out = []
            for query, count in zip(queries, counts):
                count += delta.count_in(query) - delta.tombstone_count_in(query)
                if frozen is not None:
                    count += frozen.count_in(query) - frozen.tombstone_count_in(query)
                out.append(count)
            state.base.counters.points_filtered += len(queries) * (
                delta.live_count + (0 if frozen is None else frozen.live_count)
            )
            return out

    def point_query(self, point: Point) -> bool:
        with self._lock:
            return self._available(self._state, point.x, point.y) > 0

    def knn(
        self, center: Point, k: int, initial_radius: Optional[float] = None
    ) -> ResultSet:
        with self._lock:
            state = self._state
            if self._quiet(state):
                return state.base.knn(center, k, initial_radius)
            # The generic expanding-window kNN runs on *merged* range
            # queries, so delta inserts and tombstones participate exactly.
            return SpatialIndex.knn(self, center, k, initial_radius)

    def batch_knn(
        self, centers: Sequence[Point], k: int, initial_radius: Optional[float] = None
    ) -> List[ResultSet]:
        with self._lock:
            state = self._state
            if self._quiet(state):
                return state.base.batch_knn(centers, k, initial_radius)
            return [self.knn(center, k, initial_radius) for center in centers]

    def radius_query(self, center: Point, radius: float) -> ResultSet:
        return self.batch_radius_query((center,), radius)[0]

    def batch_radius_query(
        self, centers: Sequence[Point], radius: float
    ) -> List[ResultSet]:
        with self._lock:
            state = self._state
            if self._quiet(state):
                return state.base.batch_radius_query(centers, radius)
            return SpatialIndex.batch_radius_query(self, centers, radius)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _available(self, state: _State, x: float, y: float) -> int:
        """Live occurrences of exactly (x, y) across the merged view."""
        probe = Rect(x, y, x, y)
        count = state.base.range_count(probe)
        count += state.delta.exact_live(x, y) - state.delta.exact_tombstones(x, y)
        if state.frozen is not None:
            count += state.frozen.exact_live(x, y)
            count -= state.frozen.exact_tombstones(x, y)
        return count

    def insert(self, point: Point) -> None:
        """Absorb an insert into the delta; the base index is untouched."""
        x, y = float(point.x), float(point.y)
        if not (math.isfinite(x) and math.isfinite(y)):
            raise ValueError(f"insert requires finite coordinates, got ({x}, {y})")
        with self._lock:
            self._state.delta.append(x, y, clock=time.monotonic())
            self._flat_generation += 1

    def delete(self, point: Point) -> bool:
        """Delete one merged occurrence: cancel a delta insert or tombstone the base."""
        x, y = float(point.x), float(point.y)
        with self._lock:
            state = self._state
            if state.delta.kill_newest(x, y):
                self._flat_generation += 1
                return True
            if self._available(state, x, y) <= 0:
                return False
            state.delta.tombstone(x, y, clock=time.monotonic())
            self._flat_generation += 1
            return True

    # ------------------------------------------------------------------
    # compaction (freeze → merge aside → swap)
    # ------------------------------------------------------------------
    def compact(self) -> Optional[dict]:
        """Merge the buffered delta into the columnar core.

        Returns a stats dict, or ``None`` when there was nothing to do.
        Queries and writes proceed during the merge; only the freeze and
        the swap take the state lock.
        """
        with self._maintenance_lock:
            with self._lock:
                state = self._state
                if state.frozen is not None or state.delta.is_empty:
                    return None
                if not isinstance(state.base, ZIndex):
                    raise TypeError(
                        "online compaction requires a Z-index family base, "
                        f"got {state.base.name}"
                    )
                frozen = state.delta.freeze()
                self._state = _State(state.base, frozen, DeltaBuffer())
                # Snapshot under the lock: taking it may gather the flat
                # scan cache, which must not race a concurrent query doing
                # the same.  The merge itself runs on the clone, unlocked.
                base_state = state.base.snapshot_state()
            start = time.perf_counter()
            try:
                new_base = self._merge_into_clone(base_state, frozen)
            except BaseException:
                # Roll the frozen rows back into visibility as a plain delta
                # so no acknowledged write is lost; a later compaction retries.
                with self._lock:
                    current = self._state
                    self._state = _State(
                        current.base, None, DeltaBuffer.merged(frozen, current.delta)
                    )
                raise
            seconds = time.perf_counter() - start
            with self._lock:
                current = self._state
                # The counters object survives the swap so replay
                # measurements stay monotone across compactions.
                new_base.counters = current.base.counters
                # One attribute rebind — the same atomic hot-swap adapt() uses.
                self._state = _State(new_base, None, current.delta)
                self._flat_generation += 1
                self.compactions += 1
                self.compaction_seconds += seconds
            return {
                "merged_inserts": frozen.live_count,
                "merged_tombstones": frozen.tombstone_count,
                "seconds": seconds,
                "points": len(new_base),
            }

    @staticmethod
    def _merge_into_clone(base_state, frozen: DeltaView) -> SpatialIndex:
        """An O(n) copy-on-write clone of the base absorbing the frozen delta."""
        clone = ZIndex.from_snapshot_state(base_state, validate=False)
        extent = clone.extent()
        inside = extent is not None and bool(
            np.all(
                (frozen.xs >= extent.xmin) & (frozen.xs <= extent.xmax)
                & (frozen.ys >= extent.ymin) & (frozen.ys <= extent.ymax)
            )
        )
        if inside or frozen.live_count == 0:
            for x, y in zip(frozen.xs, frozen.ys):
                clone.insert(Point(float(x), float(y)))
        else:
            # Out-of-extent inserts would each trigger a full rebuild on the
            # incremental path; batch them into one rebuild instead.
            points = clone.all_points()
            points.extend(Point(float(x), float(y)) for x, y in zip(frozen.xs, frozen.ys))
            clone._points = points
            for x, y in zip(frozen.xs, frozen.ys):
                grown = clone._extent
                clone._extent = (
                    Rect(float(x), float(y), float(x), float(y))
                    if grown is None else grown.expand_to_point(Point(float(x), float(y)))
                )
            clone._build()
        for x, y in zip(frozen.tomb_x, frozen.tomb_y):
            clone.delete(Point(float(x), float(y)))
        return clone

    # ------------------------------------------------------------------
    # full rebuild (engine.adapt through the delta machinery)
    # ------------------------------------------------------------------
    def rebuild(self, builder: Callable[[List[Point]], SpatialIndex]) -> SpatialIndex:
        """Full re-derive: freeze, build from the merged points, swap.

        ``builder`` receives the merged point list (base + frozen delta,
        tombstones applied) and returns the replacement base.  Writes
        arriving during the build land in the new active delta and stay
        visible throughout; the swap preserves them.  This is how
        ``SpatialEngine.adapt()`` re-derives the whole layout without
        taking the index offline.
        """
        with self._maintenance_lock:
            with self._lock:
                state = self._state
                frozen = state.delta.freeze()
                self._state = _State(state.base, frozen, DeltaBuffer())
                # Materialise the merged rows under the lock — reading the
                # base may build its boxed-point cache, which must not race
                # a concurrent query doing the same.
                merge_state = _State(state.base, frozen, DeltaBuffer())
                xs, ys = self._merged_rows_full(merge_state)
            points = [Point(float(x), float(y)) for x, y in zip(xs, ys)]
            try:
                new_base = builder(points)
            except BaseException:
                with self._lock:
                    current = self._state
                    self._state = _State(
                        current.base, None, DeltaBuffer.merged(frozen, current.delta)
                    )
                raise
            with self._lock:
                current = self._state
                new_base.counters = current.base.counters
                self._state = _State(new_base, None, current.delta)
                self._flat_generation += 1
            return new_base

    # ------------------------------------------------------------------
    # incremental adapt (scoped subtree re-derive on a clone, then swap)
    # ------------------------------------------------------------------
    def incremental_adapt(self, rects: Sequence[Rect], **kwargs):
        """Re-derive only the base subtrees whose scan cost regressed.

        Runs :func:`repro.online.incremental.incremental_adapt` on a
        copy-on-write clone of the base and swaps the clone in if
        anything was re-derived — queries never observe a half-spliced
        tree.  The delta buffer is untouched: re-derive changes the
        layout, not the contents, so the merged view is unaffected.

        Keyword arguments (``scope_depth``, ``hot_factor``, ``baselines``,
        …) are forwarded; returns the
        :class:`~repro.online.incremental.IncrementalAdaptReport`.
        """
        from repro.online.incremental import incremental_adapt as _incremental_adapt

        with self._maintenance_lock:
            with self._lock:
                base = self._state.base
                if not isinstance(base, ZIndex):
                    raise TypeError(
                        f"incremental adapt requires a Z-index family base, got {base.name}"
                    )
                base_state = base.snapshot_state()
            clone = ZIndex.from_snapshot_state(base_state, validate=False)
            report = _incremental_adapt(clone, rects, **kwargs)
            if report.selected:
                with self._lock:
                    current = self._state
                    clone.counters = current.base.counters
                    self._state = _State(clone, current.frozen, current.delta)
                    self._flat_generation += 1
            return report
