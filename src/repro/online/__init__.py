"""Online ingest and continuous adaptation.

The subsystem splits into three layers:

- :mod:`repro.online.delta` — the LSM write path: a columnar memtable
  (:class:`DeltaBuffer`) absorbing inserts and tombstoned deletes without
  touching the built index, frozen into immutable :class:`DeltaView`
  snapshots at compaction time.
- :mod:`repro.online.index` — :class:`OnlineIndex`, a
  :class:`~repro.interfaces.SpatialIndex` that merges base-index results
  with the delta columns (byte-identical to an eagerly rebuilt index)
  and compacts the buffer into the columnar core under the atomic
  hot-swap + generation-counter machinery.
- :mod:`repro.online.incremental` / :mod:`repro.online.maintenance` —
  per-leaf cost attribution over a sliding workload window, scoped
  subtree re-derive, and the background loop that drives compaction and
  incremental adapt on cadence and thresholds.
"""

from repro.online.delta import DeltaBuffer, DeltaView
from repro.online.incremental import (
    IncrementalAdaptReport,
    SubtreeRef,
    incremental_adapt,
    leaf_scan_costs,
    subtree_candidates,
)
from repro.online.index import OnlineIndex
from repro.online.maintenance import MaintenanceLoop, MaintenancePolicy

__all__ = [
    "DeltaBuffer",
    "DeltaView",
    "IncrementalAdaptReport",
    "MaintenanceLoop",
    "MaintenancePolicy",
    "OnlineIndex",
    "SubtreeRef",
    "incremental_adapt",
    "leaf_scan_costs",
    "subtree_candidates",
]
