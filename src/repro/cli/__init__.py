# repro-lint: public-api
"""``python -m repro`` — build, serve, query, bench, adapt, export.

The command-line face of the library: one command builds a snapshot,
one serves it (optionally sharded across worker processes) over the
HTTP JSON API of :mod:`repro.service`, one fires queries at either a
running server or a snapshot, one replays a drift scenario end-to-end
(observe → advise → adapt) and prints the win, one adapts a snapshot
offline, and one exports observed workloads / metrics for offline
analysis.  ``repro <cmd> --help`` documents each.

Every command is deterministic given its ``--seed`` arguments, exits 0
on success, 1 on failure and 2 on bad usage / unmet preconditions, and
writes machine-parseable JSON to stdout where it makes sense (``serve``
announces ``{"event": "ready", "url": ...}`` so wrappers can find an
ephemeral port).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

__all__ = ["main"]


def _build_engine(args):
    from repro.engine import SpatialEngine
    from repro.workloads import generate_dataset, generate_range_workload

    points = generate_dataset(args.region, args.num_points, seed=args.seed)
    workload = generate_range_workload(
        args.region, args.workload_queries, args.selectivity, seed=args.seed + 1
    )
    engine = SpatialEngine.build(
        args.index, points, workload,
        leaf_capacity=args.leaf_capacity, seed=args.seed,
    )
    return engine, workload


def _require_file(path: Path) -> Path:
    if not path.exists():
        raise FileNotFoundError(f"no such snapshot: {path}")
    return path


def cmd_build(args) -> int:
    from repro.query import RangeQuery

    engine, workload = _build_engine(args)
    # Replay the training workload with recording on so the snapshot
    # embeds an observed history: `repro adapt` / `repro export` work on
    # a freshly built snapshot without a serving session in between.
    engine.start_recording()
    engine.execute_many(
        [RangeQuery(rect) for rect in workload.queries], count_only=True
    )
    engine.stop_recording()
    out = Path(args.out)
    engine.save(out)
    print(json.dumps({
        "event": "built",
        "index": engine.name,
        "num_points": len(engine),
        "size_bytes": engine.size_bytes(),
        "snapshot": str(out),
    }, sort_keys=True))
    if args.shards:
        from repro.serving import build_shards

        shard_dir = Path(args.shard_dir or (str(out) + ".shards"))
        plan = build_shards(engine.index, shard_dir, args.shards)
        print(json.dumps({
            "event": "sharded",
            "num_shards": plan.num_shards,
            "directory": str(shard_dir),
        }, sort_keys=True))
    return 0


def _open_backend(path: Path, *, shards: int, workers: int, mmap: bool,
                  record: bool, plan_cache: Optional[int]):
    """A serving engine for a snapshot file or shard directory."""
    from repro.engine import SpatialEngine

    if not path.exists():
        raise FileNotFoundError(f"no such snapshot or shard directory: {path}")
    cache = plan_cache if plan_cache else None
    if path.is_dir():
        if not (path / "shards.json").exists():
            raise FileNotFoundError(f"{path} is a directory without shards.json")
        from repro.serving import open_sharded

        sharded = open_sharded(path, workers=workers, mmap=mmap)
        return SpatialEngine(sharded, record=record, plan_cache=cache)
    if shards:
        import tempfile

        from repro.serving import build_shards, open_sharded

        shard_dir = Path(tempfile.mkdtemp(prefix="repro-shards-"))
        build_shards(path, shard_dir, shards)
        sharded = open_sharded(shard_dir, workers=workers, mmap=mmap)
        return SpatialEngine(sharded, record=record, plan_cache=cache)
    return SpatialEngine.load(path, record=record, mmap=mmap, plan_cache=cache)


def cmd_serve(args) -> int:
    from repro.service import ServiceServer, SpatialService

    engine = _open_backend(
        Path(args.path), shards=args.shards, workers=args.workers,
        mmap=args.mmap, record=args.record, plan_cache=args.plan_cache,
    )
    service = SpatialService(engine, record=args.record, verbose=not args.quiet)
    if args.online:
        from repro.online import MaintenancePolicy
        from repro.zindex import ZIndex

        if not isinstance(engine.index, ZIndex):
            print(json.dumps({
                "event": "error",
                "message": "--online requires a Z-index-family snapshot "
                           "(sharded backends serve read-only)",
            }, sort_keys=True), file=sys.stderr)
            return 2
        policy = MaintenancePolicy(
            interval_seconds=args.maintenance_interval,
            compact_min_rows=args.compact_min_rows,
            window_size=args.window_size or None,
        )
        engine.online(policy)
    server = ServiceServer(service, host=args.host, port=args.port)
    if not args.quiet:
        mode = " online" if args.online else ""
        print(f"serving{mode} {engine.name} ({len(engine):,} points) at {server.url}",
              file=sys.stderr)
    print(json.dumps({
        "event": "ready", "url": server.url, "online": bool(args.online),
    }, sort_keys=True), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if args.online:
            engine.offline()
        close = getattr(engine.index, "close", None)
        if callable(close):
            close()
    return 0


def _plan_payload(args) -> dict:
    if args.rect is not None:
        payload = {"kind": "range", "rect": args.rect}
    elif args.point is not None:
        payload = {"kind": "point", "point": args.point}
    elif args.center is not None and args.k is not None:
        payload = {"kind": "knn", "center": args.center, "k": args.k}
    elif args.center is not None and args.radius is not None:
        payload = {"kind": "radius", "center": args.center, "radius": args.radius}
    else:
        raise SystemExit(
            "specify a plan: --rect XMIN YMIN XMAX YMAX | --point X Y | "
            "--center X Y with --k K or --radius R"
        )
    if args.count_only:
        payload["count_only"] = True
    if args.limit is not None:
        payload["limit"] = args.limit
    return payload


def _http_post(url: str, path: str, payload: dict) -> dict:
    import urllib.request

    request = urllib.request.Request(
        url.rstrip("/") + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def cmd_query(args) -> int:
    payload = _plan_payload(args)
    if args.url:
        body = _http_post(args.url, "/query", payload)
    else:
        from repro.engine import SpatialEngine
        from repro.service import SpatialService

        engine = SpatialEngine.load(
            _require_file(Path(args.snapshot)), mmap=True, validate=False
        )
        service = SpatialService(engine, record=False)
        body = service.handle_query(payload)
    print(json.dumps(body, sort_keys=True))
    return 0


def cmd_bench(args) -> int:
    from repro.engine import SpatialEngine
    from repro.query import RangeQuery
    from repro.workloads import drift_scenario, generate_dataset

    points = generate_dataset(args.region, args.num_points, seed=args.seed)
    phases = drift_scenario(
        args.scenario, args.region, num_queries=args.num_queries, seed=args.seed + 1
    )
    train, drifted = phases[0].workload, phases[1].workload
    engine = SpatialEngine.build(
        "wazi", points, train.queries, leaf_capacity=64, seed=args.seed,
        record=True,
    )
    plans = [RangeQuery(rect) for rect in drifted.queries]
    engine.batch_range_count(drifted.queries)  # warm flat-scan caches

    start = time.perf_counter()
    engine.execute_many(plans, count_only=True)
    stale_seconds = time.perf_counter() - start

    report = engine.advise()
    engine.adapt()
    engine.batch_range_count(drifted.queries)  # warm the adapted layout too

    start = time.perf_counter()
    engine.execute_many(plans, count_only=True)
    adapted_seconds = time.perf_counter() - start

    summary = {
        "scenario": args.scenario,
        "region": args.region,
        "num_points": args.num_points,
        "num_queries": len(plans),
        "drift_score": report.drift_score,
        "should_adapt": report.should_adapt,
        "stale_seconds": stale_seconds,
        "adapted_seconds": adapted_seconds,
        "speedup": stale_seconds / adapted_seconds if adapted_seconds else None,
    }
    print(json.dumps(summary, sort_keys=True, indent=2))
    if args.min_speedup is not None and (
        summary["speedup"] is None or summary["speedup"] < args.min_speedup
    ):
        print(f"FAIL: speedup below {args.min_speedup}", file=sys.stderr)
        return 1
    return 0


def cmd_adapt(args) -> int:
    from repro.engine import SpatialEngine

    path = _require_file(Path(args.snapshot))
    engine = SpatialEngine.load(path)
    try:
        report = engine.advise(min_improvement=args.min_improvement)
    except ValueError as exc:
        print(f"cannot advise: {exc}", file=sys.stderr)
        return 2
    print(report.render(), file=sys.stderr)
    if not report.should_adapt and not args.force:
        print(json.dumps({"event": "kept", "reason": report.reason}, sort_keys=True))
        return 0
    engine.adapt()
    out = Path(args.out) if args.out else path
    engine.save(out)
    print(json.dumps({
        "event": "adapted",
        "snapshot": str(out),
        "leaf_capacity": getattr(engine.index, "leaf_capacity", None),
    }, sort_keys=True))
    return 0


def cmd_export(args) -> int:
    out_dir = Path(args.out)
    if args.url:
        import urllib.request

        endpoint = "/metrics" if args.what == "metrics" else "/stats"
        with urllib.request.urlopen(args.url.rstrip("/") + endpoint) as response:
            data = response.read()
        out_dir.mkdir(parents=True, exist_ok=True)
        suffix = "prom" if args.what == "metrics" else "json"
        target = out_dir / f"{args.what}.{suffix}"
        target.write_bytes(data)
        print(json.dumps({"event": "exported", "files": [str(target)]},
                         sort_keys=True))
        return 0
    from repro.obs import dump_workload
    from repro.persistence import load_workload_history
    from repro.workload_log import WorkloadLog

    history = load_workload_history(_require_file(Path(args.snapshot)))
    if history is None or not history:
        print(f"no workload history embedded in {args.snapshot}", file=sys.stderr)
        return 2
    log = WorkloadLog.from_workload(history)
    written = dump_workload(log, out_dir, fmt=args.format)
    print(json.dumps({"event": "exported", "files": [str(p) for p in written]},
                     sort_keys=True))
    return 0


def _add_build_parser(sub) -> None:
    p = sub.add_parser("build", help="build an index snapshot from a synthetic dataset")
    p.add_argument("out", help="snapshot path to write")
    p.add_argument("--region", default="newyork")
    p.add_argument("--num-points", type=int, default=100_000)
    p.add_argument("--index", default="wazi")
    p.add_argument("--leaf-capacity", type=int, default=64)
    p.add_argument("--seed", type=int, default=17)
    p.add_argument("--workload-queries", type=int, default=200)
    p.add_argument("--selectivity", type=float, default=0.0256)
    p.add_argument("--shards", type=int, default=0,
                   help="also write an N-shard directory next to the snapshot")
    p.add_argument("--shard-dir", default=None)
    p.set_defaults(func=cmd_build)


def _add_serve_parser(sub) -> None:
    p = sub.add_parser("serve", help="serve a snapshot or shard directory over HTTP")
    p.add_argument("path", help="snapshot file or shard directory (shards.json)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="0 binds an ephemeral port (announced on stdout)")
    p.add_argument("--shards", type=int, default=0,
                   help="shard a snapshot on the fly before serving")
    p.add_argument("--workers", type=int, default=0,
                   help="shard-serving worker processes (0 = in-process)")
    p.add_argument("--mmap", action=argparse.BooleanOptionalAction, default=True)
    p.add_argument("--record", action=argparse.BooleanOptionalAction, default=True,
                   help="record observed traffic (enables /advise, /adapt)")
    p.add_argument("--plan-cache", type=int, default=0,
                   help="attach a query-plan cache with this capacity")
    p.add_argument("--online", action="store_true",
                   help="enable the online lifecycle: /ingest + background "
                        "maintenance (LSM delta buffer, incremental adapt)")
    p.add_argument("--maintenance-interval", type=float, default=1.0,
                   help="background maintenance cadence in seconds (with --online)")
    p.add_argument("--compact-min-rows", type=int, default=4096,
                   help="delta rows that trigger compaction (with --online)")
    p.add_argument("--window-size", type=int, default=2048,
                   help="sliding workload-window size driving incremental "
                        "adapt (0 = unbounded, with --online)")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(func=cmd_serve)


def _add_query_parser(sub) -> None:
    p = sub.add_parser("query", help="run one plan against a server or snapshot")
    target = p.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", help="base URL of a running repro serve")
    target.add_argument("--snapshot", help="query a snapshot in-process instead")
    p.add_argument("--rect", type=float, nargs=4, default=None,
                   metavar=("XMIN", "YMIN", "XMAX", "YMAX"))
    p.add_argument("--point", type=float, nargs=2, default=None, metavar=("X", "Y"))
    p.add_argument("--center", type=float, nargs=2, default=None, metavar=("X", "Y"))
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--radius", type=float, default=None)
    p.add_argument("--count-only", action="store_true")
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(func=cmd_query)


def _add_bench_parser(sub) -> None:
    p = sub.add_parser("bench", help="replay a drift scenario: observe, advise, adapt")
    p.add_argument("--region", default="newyork")
    p.add_argument("--num-points", type=int, default=100_000)
    p.add_argument("--num-queries", type=int, default=400)
    p.add_argument("--scenario", default="scan_heavy")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--min-speedup", type=float, default=None,
                   help="exit non-zero when the adapt win is below this")
    p.set_defaults(func=cmd_bench)


def _add_adapt_parser(sub) -> None:
    p = sub.add_parser("adapt", help="adapt a snapshot from its embedded history")
    p.add_argument("snapshot")
    p.add_argument("--out", default=None, help="write here instead of in place")
    p.add_argument("--min-improvement", type=float, default=1.2)
    p.add_argument("--force", action="store_true",
                   help="adapt even when the advisor says keep")
    p.set_defaults(func=cmd_adapt)


def _add_export_parser(sub) -> None:
    p = sub.add_parser("export", help="export observed workload / metrics")
    source = p.add_mutually_exclusive_group(required=True)
    source.add_argument("--snapshot", help="dump the embedded workload history")
    source.add_argument("--url", help="scrape a running server instead")
    p.add_argument("--what", choices=("history", "metrics", "stats"),
                   default="history")
    p.add_argument("--out", required=True, help="output directory")
    p.add_argument("--format", choices=("npy", "csv", "both"), default="both",
                   help="history dump format")
    p.set_defaults(func=cmd_export)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WaZI reproduction: build, serve and adapt learned Z-indexes",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_build_parser(sub)
    _add_serve_parser(sub)
    _add_query_parser(sub)
    _add_bench_parser(sub)
    _add_adapt_parser(sub)
    _add_export_parser(sub)
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130
