"""Query-plan cache: exact-repeat plans served from a keyed LRU.

Production range workloads are dominated by exact repeats (the
:class:`~repro.workload_log.WorkloadLog` records show the same rects and
centers arriving again and again), yet the engine re-ran every repeat
through projection and scan.  :class:`PlanCache` closes that gap: the
:class:`~repro.engine.SpatialEngine` keys each executed plan — kind,
parameters, ``count_only`` and ``limit`` — and serves an exact repeat
straight from the cache.

Correctness rides entirely on the flat-cache generation counter the
indexes already maintain (``_flat_generation``, bumped by every
mutation, adapt and rebuild): an entry remembers the *identity* of the
index it was computed on (a weak reference, so the cache can never
resurrect or pin a replaced index) and the generation at compute time,
and :meth:`PlanCache.lookup` refuses the entry the instant either
changed.  Mutation, :meth:`~repro.engine.SpatialEngine.adapt` and
hot-swap invalidation therefore need no hooks at all — stale entries
die on their next lookup and age out of the LRU.  Indexes that do not
expose the generation counter (the non-columnar baselines) are simply
never cached.

Cached values are whatever the engine returned to the caller —
:class:`~repro.results.ResultSet` objects are immutable columnar views,
safe to hand out repeatedly; counts are ints.  Cost counters are *not*
replayed on a hit: a cache hit does no index work, and the counters
keep their meaning of "work the index performed".
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

__all__ = ["MISS", "CacheStats", "PlanCache"]

#: Sentinel returned by :meth:`PlanCache.lookup` when no live entry exists
#: (``None`` is a legitimate cached value).
MISS: Any = object()


@dataclass
class CacheStats:
    """Running counters of cache behaviour (monotone, never reset by clear)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class PlanCache:
    """A bounded LRU of executed plans, invalidated by index generation.

    ``capacity`` bounds the number of live entries; the least recently
    *used* (looked up or stored) entry is evicted first.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Tuple[Any, int, Any]]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def generation_of(index: Any) -> Optional[int]:
        """The index's flat-cache generation, or ``None`` when uncachable."""
        return getattr(index, "_flat_generation", None)

    def lookup(self, key: Hashable, index: Any) -> Any:
        """The cached value for ``key`` computed on this exact ``index``
        at its current generation, or :data:`MISS`.

        Every call counts exactly one hit or one miss, so engine-level
        hit-rate accounting is exact.
        """
        generation = self.generation_of(index)
        if generation is None:
            self.stats.misses += 1
            return MISS
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return MISS
        index_ref, entry_generation, value = entry
        if index_ref() is not index or entry_generation != generation:
            # Computed on a replaced index or a superseded generation:
            # drop it now rather than waiting for LRU pressure.
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return MISS
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def store(self, key: Hashable, index: Any, value: Any) -> bool:
        """Remember ``value`` for ``key`` at the index's current generation.

        Returns ``False`` (and stores nothing) for uncachable indexes.
        """
        generation = self.generation_of(index)
        if generation is None:
            return False
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (weakref.ref(index), generation, value)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return True

    def clear(self) -> None:
        """Drop every entry (stats are preserved — they count lifetime totals)."""
        self._entries.clear()

    def keys(self):
        """Live keys in LRU order (oldest first) — for tests and inspection."""
        return list(self._entries.keys())
