"""Nodes of the quaternary Z-index tree.

An internal node stores the split point at which its cell is divided into
four quadrants (A lower-left, B lower-right, C upper-left, D upper-right)
and the ordering of those quadrants along the space-filling curve.  The
paper allows two orderings, both of which preserve the domination
monotonicity required by the range-query algorithm:

* ``"abcd"`` — A, B, C, D (the classic Z / N-shaped curve),
* ``"acbd"`` — A, C, B, D (the transposed curve).

Leaf nodes simply remember their position in the
:class:`~repro.storage.LeafList`, which owns the pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.geometry import Rect
from repro.geometry.rect import QUADRANT_A, QUADRANT_B, QUADRANT_C, QUADRANT_D

ORDER_ABCD = "abcd"
ORDER_ACBD = "acbd"
ORDERINGS = (ORDER_ABCD, ORDER_ACBD)

# A deliberately *non-monotone* ordering (B before A, D before C).  The two
# paper orderings above always visit A first and D last, which is what makes
# the two-corner interval projection of Algorithm 2 sound.  Custom split
# strategies are free to emit this ordering; the Z-index remains correct
# because its projection descends all four query corners (see
# ``ZIndex._project``).  It is registered primarily so regression tests can
# build adversarial trees that would silently drop results under a
# corner-pair-only projection.
ORDER_BADC = "badc"

# For each ordering, the sequence of quadrant ids visited along the curve.
_VISIT_SEQUENCES = {
    ORDER_ABCD: (QUADRANT_A, QUADRANT_B, QUADRANT_C, QUADRANT_D),
    ORDER_ACBD: (QUADRANT_A, QUADRANT_C, QUADRANT_B, QUADRANT_D),
    ORDER_BADC: (QUADRANT_B, QUADRANT_A, QUADRANT_D, QUADRANT_C),
}

# Per-node overhead used by size accounting: split point (2 doubles), the
# ordering flag, four child pointers and the cell bounding box.
_INTERNAL_NODE_BYTES = 2 * 8 + 1 + 4 * 8 + 4 * 8
_LEAF_NODE_BYTES = 8 + 4 * 8


def visit_sequence(ordering: str) -> Tuple[int, int, int, int]:
    """Quadrant ids in curve order for the given ordering string."""
    try:
        return _VISIT_SEQUENCES[ordering]
    except KeyError:
        raise ValueError(
            f"Unknown ordering {ordering!r}; expected one of {tuple(_VISIT_SEQUENCES)}"
        ) from None


def curve_rank(ordering: str, quadrant: int) -> int:
    """Position of ``quadrant`` along the curve under ``ordering`` (0..3)."""
    return visit_sequence(ordering).index(quadrant)


@dataclass
class LeafNode:
    """A leaf of the Z-index tree.

    The leaf's data (page, bounding box, skip pointers) lives in the
    :class:`~repro.storage.LeafList`; the tree node only records the cell it
    covers and its position (``Ord``) in that list.
    """

    cell: Rect
    leaf_index: int = -1

    @property
    def is_leaf(self) -> bool:
        return True

    def size_bytes(self) -> int:
        return _LEAF_NODE_BYTES


@dataclass
class InternalNode:
    """An internal node: split point, ordering and four children.

    ``children`` is indexed by *quadrant id* (A=0, B=1, C=2, D=3), not by
    curve position; use :func:`visit_sequence` to iterate children in curve
    order.  Children may be ``None`` transiently during construction only.
    """

    cell: Rect
    split_x: float
    split_y: float
    ordering: str = ORDER_ABCD
    children: List[Optional[Union["InternalNode", LeafNode]]] = field(
        default_factory=lambda: [None, None, None, None]
    )

    def __post_init__(self) -> None:
        if self.ordering not in _VISIT_SEQUENCES:
            raise ValueError(
                f"Unknown ordering {self.ordering!r}; expected one of "
                f"{tuple(_VISIT_SEQUENCES)}"
            )

    @property
    def is_leaf(self) -> bool:
        return False

    def quadrant_of(self, x: float, y: float) -> int:
        """Quadrant id of a point relative to this node's split (Algorithm 1).

        Points exactly on a split line fall on the lower/left side, matching
        the strict ``>`` comparisons of the paper's pseudocode.
        """
        bit_x = 1 if x > self.split_x else 0
        bit_y = 1 if y > self.split_y else 0
        return 2 * bit_y + bit_x

    def child_for_point(self, x: float, y: float):
        """The child covering the given point."""
        return self.children[self.quadrant_of(x, y)]

    def children_in_curve_order(self):
        """Children ordered along the space-filling curve."""
        return [self.children[q] for q in visit_sequence(self.ordering)]

    def child_cells(self) -> Tuple[Rect, Rect, Rect, Rect]:
        """The four quadrant rectangles (indexed by quadrant id)."""
        return self.cell.split(self.split_x, self.split_y)

    def size_bytes(self) -> int:
        return _INTERNAL_NODE_BYTES


ZNode = Union[InternalNode, LeafNode]


def count_nodes(root: Optional[ZNode]) -> Tuple[int, int]:
    """Count ``(internal, leaf)`` nodes in the subtree rooted at ``root``."""
    if root is None:
        return (0, 0)
    if root.is_leaf:
        return (0, 1)
    internal, leaves = 1, 0
    for child in root.children:
        child_internal, child_leaves = count_nodes(child)
        internal += child_internal
        leaves += child_leaves
    return (internal, leaves)


def tree_depth(root: Optional[ZNode]) -> int:
    """Height of the subtree rooted at ``root`` (leaves have height 1)."""
    if root is None:
        return 0
    if root.is_leaf:
        return 1
    return 1 + max(tree_depth(child) for child in root.children)


def iter_leaves_in_curve_order(root: Optional[ZNode]):
    """Yield the leaf nodes of the subtree in space-filling-curve order."""
    if root is None:
        return
    if root.is_leaf:
        yield root
        return
    for child in root.children_in_curve_order():
        yield from iter_leaves_in_curve_order(child)


def structure_size_bytes(root: Optional[ZNode]) -> int:
    """Approximate footprint of the tree structure (excluding the leaf list)."""
    if root is None:
        return 0
    if root.is_leaf:
        return root.size_bytes()
    return root.size_bytes() + sum(structure_size_bytes(child) for child in root.children)


# ----------------------------------------------------------------------
# flat tree tables (snapshot persistence)
# ----------------------------------------------------------------------
#: Sentinel child / leaf-index value in the packed tree tables.
NO_NODE = -1


def pack_tree(root: Optional[ZNode]) -> Tuple[Dict[str, np.ndarray], List[str]]:
    """Flatten a tree into columnar tables suitable for binary persistence.

    Nodes are numbered in preorder (a parent always precedes its children),
    and every per-node attribute becomes one column:

    * ``tree_kind`` — ``uint8``, 0 for internal nodes, 1 for leaves;
    * ``tree_cells`` — ``(n, 4)`` float64 cell rectangles;
    * ``tree_splits`` — ``(n, 2)`` float64 split points (NaN for leaves);
    * ``tree_orderings`` — ``int16`` index into the returned ordering
      vocabulary (:data:`NO_NODE` for leaves);
    * ``tree_children`` — ``(n, 4)`` int64 child node ids by quadrant
      (:data:`NO_NODE` for leaves);
    * ``tree_leaf_index`` — ``int64`` LeafList position (:data:`NO_NODE`
      for internal nodes).

    Returns ``(tables, orderings)`` where ``orderings`` is the list of
    ordering strings the ``tree_orderings`` column indexes into.  An empty
    tree packs to zero-length tables.
    """
    nodes: List[ZNode] = []
    ids: Dict[int, int] = {}
    stack = [root] if root is not None else []
    while stack:
        node = stack.pop()
        ids[id(node)] = len(nodes)
        nodes.append(node)
        if not node.is_leaf:
            # Reversed so children pop in quadrant order (cosmetic only;
            # any parent-before-child numbering round-trips).
            for child in reversed(node.children):
                stack.append(child)
    n = len(nodes)
    kinds = np.zeros(n, dtype=np.uint8)
    cells = np.empty((n, 4), dtype=np.float64)
    splits = np.full((n, 2), np.nan, dtype=np.float64)
    ordering_ids = np.full(n, NO_NODE, dtype=np.int16)
    children = np.full((n, 4), NO_NODE, dtype=np.int64)
    leaf_index = np.full(n, NO_NODE, dtype=np.int64)
    orderings: List[str] = []
    ordering_lookup: Dict[str, int] = {}
    for position, node in enumerate(nodes):
        cell = node.cell
        cells[position] = (cell.xmin, cell.ymin, cell.xmax, cell.ymax)
        if node.is_leaf:
            kinds[position] = 1
            leaf_index[position] = node.leaf_index
            continue
        splits[position] = (node.split_x, node.split_y)
        slot = ordering_lookup.get(node.ordering)
        if slot is None:
            slot = len(orderings)
            ordering_lookup[node.ordering] = slot
            orderings.append(node.ordering)
        ordering_ids[position] = slot
        for quadrant in range(4):
            children[position, quadrant] = ids[id(node.children[quadrant])]
    tables = {
        "tree_kind": kinds,
        "tree_cells": cells,
        "tree_splits": splits,
        "tree_orderings": ordering_ids,
        "tree_children": children,
        "tree_leaf_index": leaf_index,
    }
    return tables, orderings


def unpack_tree(
    tables: Dict[str, np.ndarray], orderings: List[str]
) -> Tuple[Optional[ZNode], List[LeafNode]]:
    """Rebuild a tree from :func:`pack_tree` tables.

    Returns ``(root, leaves)`` where ``leaves`` holds every leaf node (in
    table order).  Because parents precede children in the numbering, a
    single reverse pass materialises each node after all of its children.
    Raises :class:`ValueError` on malformed tables (dangling child ids,
    unknown ordering slots) — callers translate that into their own
    friendly error types.
    """
    kinds = np.asarray(tables["tree_kind"])
    cells = np.asarray(tables["tree_cells"], dtype=np.float64).reshape(-1, 4)
    splits = np.asarray(tables["tree_splits"], dtype=np.float64).reshape(-1, 2)
    ordering_ids = np.asarray(tables["tree_orderings"])
    children = np.asarray(tables["tree_children"]).reshape(-1, 4)
    leaf_index = np.asarray(tables["tree_leaf_index"])
    n = int(kinds.shape[0])
    for name, table in (("tree_cells", cells), ("tree_splits", splits),
                        ("tree_orderings", ordering_ids), ("tree_children", children),
                        ("tree_leaf_index", leaf_index)):
        if table.shape[0] != n:
            raise ValueError(
                f"tree table {name!r} has {table.shape[0]} rows, expected {n}"
            )
    if n == 0:
        return None, []
    nodes: List[Optional[ZNode]] = [None] * n
    leaves: List[LeafNode] = []
    cell_rows = cells.tolist()
    split_rows = splits.tolist()
    children_rows = children.tolist()
    kind_list = kinds.tolist()
    ordering_list = ordering_ids.tolist()
    leaf_index_list = leaf_index.tolist()
    for position in range(n - 1, -1, -1):
        cell = Rect(*cell_rows[position])
        if kind_list[position] == 1:
            node: ZNode = LeafNode(cell, leaf_index=int(leaf_index_list[position]))
            leaves.append(node)
        else:
            slot = int(ordering_list[position])
            if not 0 <= slot < len(orderings):
                raise ValueError(f"node {position} references unknown ordering slot {slot}")
            child_nodes: List[Optional[ZNode]] = []
            for child_id in children_rows[position]:
                child_id = int(child_id)
                if not position < child_id < n or nodes[child_id] is None:
                    raise ValueError(
                        f"node {position} has out-of-order child id {child_id}"
                    )
                child_nodes.append(nodes[child_id])
            split_x, split_y = split_rows[position]
            node = InternalNode(
                cell, float(split_x), float(split_y), orderings[slot], child_nodes
            )
        nodes[position] = node
    leaves.reverse()
    return nodes[0], leaves
