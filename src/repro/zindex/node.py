"""Nodes of the quaternary Z-index tree.

An internal node stores the split point at which its cell is divided into
four quadrants (A lower-left, B lower-right, C upper-left, D upper-right)
and the ordering of those quadrants along the space-filling curve.  The
paper allows two orderings, both of which preserve the domination
monotonicity required by the range-query algorithm:

* ``"abcd"`` — A, B, C, D (the classic Z / N-shaped curve),
* ``"acbd"`` — A, C, B, D (the transposed curve).

Leaf nodes simply remember their position in the
:class:`~repro.storage.LeafList`, which owns the pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.geometry import Rect
from repro.geometry.rect import QUADRANT_A, QUADRANT_B, QUADRANT_C, QUADRANT_D

ORDER_ABCD = "abcd"
ORDER_ACBD = "acbd"
ORDERINGS = (ORDER_ABCD, ORDER_ACBD)

# A deliberately *non-monotone* ordering (B before A, D before C).  The two
# paper orderings above always visit A first and D last, which is what makes
# the two-corner interval projection of Algorithm 2 sound.  Custom split
# strategies are free to emit this ordering; the Z-index remains correct
# because its projection descends all four query corners (see
# ``ZIndex._project``).  It is registered primarily so regression tests can
# build adversarial trees that would silently drop results under a
# corner-pair-only projection.
ORDER_BADC = "badc"

# For each ordering, the sequence of quadrant ids visited along the curve.
_VISIT_SEQUENCES = {
    ORDER_ABCD: (QUADRANT_A, QUADRANT_B, QUADRANT_C, QUADRANT_D),
    ORDER_ACBD: (QUADRANT_A, QUADRANT_C, QUADRANT_B, QUADRANT_D),
    ORDER_BADC: (QUADRANT_B, QUADRANT_A, QUADRANT_D, QUADRANT_C),
}

# Per-node overhead used by size accounting: split point (2 doubles), the
# ordering flag, four child pointers and the cell bounding box.
_INTERNAL_NODE_BYTES = 2 * 8 + 1 + 4 * 8 + 4 * 8
_LEAF_NODE_BYTES = 8 + 4 * 8


def visit_sequence(ordering: str) -> Tuple[int, int, int, int]:
    """Quadrant ids in curve order for the given ordering string."""
    try:
        return _VISIT_SEQUENCES[ordering]
    except KeyError:
        raise ValueError(
            f"Unknown ordering {ordering!r}; expected one of {tuple(_VISIT_SEQUENCES)}"
        ) from None


def curve_rank(ordering: str, quadrant: int) -> int:
    """Position of ``quadrant`` along the curve under ``ordering`` (0..3)."""
    return visit_sequence(ordering).index(quadrant)


@dataclass
class LeafNode:
    """A leaf of the Z-index tree.

    The leaf's data (page, bounding box, skip pointers) lives in the
    :class:`~repro.storage.LeafList`; the tree node only records the cell it
    covers and its position (``Ord``) in that list.
    """

    cell: Rect
    leaf_index: int = -1

    @property
    def is_leaf(self) -> bool:
        return True

    def size_bytes(self) -> int:
        return _LEAF_NODE_BYTES


@dataclass
class InternalNode:
    """An internal node: split point, ordering and four children.

    ``children`` is indexed by *quadrant id* (A=0, B=1, C=2, D=3), not by
    curve position; use :func:`visit_sequence` to iterate children in curve
    order.  Children may be ``None`` transiently during construction only.
    """

    cell: Rect
    split_x: float
    split_y: float
    ordering: str = ORDER_ABCD
    children: List[Optional[Union["InternalNode", LeafNode]]] = field(
        default_factory=lambda: [None, None, None, None]
    )

    def __post_init__(self) -> None:
        if self.ordering not in _VISIT_SEQUENCES:
            raise ValueError(
                f"Unknown ordering {self.ordering!r}; expected one of "
                f"{tuple(_VISIT_SEQUENCES)}"
            )

    @property
    def is_leaf(self) -> bool:
        return False

    def quadrant_of(self, x: float, y: float) -> int:
        """Quadrant id of a point relative to this node's split (Algorithm 1).

        Points exactly on a split line fall on the lower/left side, matching
        the strict ``>`` comparisons of the paper's pseudocode.
        """
        bit_x = 1 if x > self.split_x else 0
        bit_y = 1 if y > self.split_y else 0
        return 2 * bit_y + bit_x

    def child_for_point(self, x: float, y: float):
        """The child covering the given point."""
        return self.children[self.quadrant_of(x, y)]

    def children_in_curve_order(self):
        """Children ordered along the space-filling curve."""
        return [self.children[q] for q in visit_sequence(self.ordering)]

    def child_cells(self) -> Tuple[Rect, Rect, Rect, Rect]:
        """The four quadrant rectangles (indexed by quadrant id)."""
        return self.cell.split(self.split_x, self.split_y)

    def size_bytes(self) -> int:
        return _INTERNAL_NODE_BYTES


ZNode = Union[InternalNode, LeafNode]


def count_nodes(root: Optional[ZNode]) -> Tuple[int, int]:
    """Count ``(internal, leaf)`` nodes in the subtree rooted at ``root``."""
    if root is None:
        return (0, 0)
    if root.is_leaf:
        return (0, 1)
    internal, leaves = 1, 0
    for child in root.children:
        child_internal, child_leaves = count_nodes(child)
        internal += child_internal
        leaves += child_leaves
    return (internal, leaves)


def tree_depth(root: Optional[ZNode]) -> int:
    """Height of the subtree rooted at ``root`` (leaves have height 1)."""
    if root is None:
        return 0
    if root.is_leaf:
        return 1
    return 1 + max(tree_depth(child) for child in root.children)


def iter_leaves_in_curve_order(root: Optional[ZNode]):
    """Yield the leaf nodes of the subtree in space-filling-curve order."""
    if root is None:
        return
    if root.is_leaf:
        yield root
        return
    for child in root.children_in_curve_order():
        yield from iter_leaves_in_curve_order(child)


def structure_size_bytes(root: Optional[ZNode]) -> int:
    """Approximate footprint of the tree structure (excluding the leaf list)."""
    if root is None:
        return 0
    if root.is_leaf:
        return root.size_bytes()
    return root.size_bytes() + sum(structure_size_bytes(child) for child in root.children)
