"""Look-ahead pointers: construction and use during range-query scans.

This module implements the skipping mechanism of Section 5 of the paper.

A leaf is irrelevant to a range query ``R`` for one of four reasons — it lies
entirely *below*, *above*, *left of* or *right of* ``R``.  For each reason,
every leaf stores a look-ahead pointer to the earliest later leaf that
"improves" the corresponding coordinate bound; any leaf between the two is
guaranteed to be irrelevant for the same reason, so the scan can jump
directly to the pointer's target (Figure 3 of the paper).

``build_lookahead_pointers`` is Algorithm 4: it walks the LeafList backwards
and, for each criterion, starts from the next pointer and follows already
computed pointers of that same criterion until the bound improves.
``choose_skip_target`` is the query-time rule: among the criteria that
disqualify the current leaf, follow the pointer that jumps farthest.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.geometry import Rect
from repro.storage.leaflist import (
    END_OF_LIST,
    LeafEntry,
    LeafList,
    SKIP_ABOVE,
    SKIP_BELOW,
    SKIP_CRITERIA,
    SKIP_LEFT,
    SKIP_RIGHT,
)


def leaf_box(entry: LeafEntry) -> Rect:
    """The rectangle a leaf is compared with: its data bounding box.

    Empty leaves (possible under WaZI's arbitrary split points) fall back to
    their cell so the skipping criteria remain well defined; an empty leaf
    never overlaps a query anyway.
    """
    return entry.bbox if entry.bbox is not None else entry.cell


def _criterion_value(entry: LeafEntry, criterion: str) -> float:
    """The coordinate bound a criterion compares (Section 5.2 "improvement").

    * ``below``: the leaf's top edge — a later leaf improves if it is higher;
    * ``above``: the leaf's bottom edge — improves if it is lower;
    * ``left``:  the leaf's right edge — improves if it is further right;
    * ``right``: the leaf's left edge — improves if it is further left.
    """
    box = leaf_box(entry)
    if criterion == SKIP_BELOW:
        return box.ymax
    if criterion == SKIP_ABOVE:
        return box.ymin
    if criterion == SKIP_LEFT:
        return box.xmax
    if criterion == SKIP_RIGHT:
        return box.xmin
    raise ValueError(f"Unknown skip criterion: {criterion!r}")


def _improves(criterion: str, candidate_value: float, reference_value: float) -> bool:
    """Whether a candidate leaf's bound improves on the reference leaf's bound."""
    if criterion in (SKIP_BELOW, SKIP_LEFT):
        return candidate_value > reference_value
    return candidate_value < reference_value


def build_lookahead_pointers(leaflist: LeafList) -> None:
    """Populate the four look-ahead pointers of every leaf (Algorithm 4).

    The construction iterates the LeafList backwards.  For the last leaf all
    pointers refer to the end-of-list sentinel.  For every earlier leaf the
    pointer starts at the next leaf and repeatedly follows the *same
    criterion's* pointer of the pointed-to leaf until the criterion's bound
    improves (or the end of the list is reached).
    """
    entries = leaflist.entries
    n = len(entries)
    for position in range(n - 1, -1, -1):
        entry = entries[position]
        reference_values = {
            criterion: _criterion_value(entry, criterion) for criterion in SKIP_CRITERIA
        }
        for criterion in SKIP_CRITERIA:
            target = position + 1 if position + 1 < n else END_OF_LIST
            reference = reference_values[criterion]
            while target != END_OF_LIST:
                candidate = entries[target]
                if _improves(criterion, _criterion_value(candidate, criterion), reference):
                    break
                target = candidate.skip_pointer(criterion)
            entry.set_skip_pointer(criterion, target)


def disqualifying_criteria(entry: LeafEntry, query: Rect) -> Tuple[str, ...]:
    """The criteria under which ``entry`` is irrelevant to ``query``.

    Returns an empty tuple when the leaf overlaps the query (and hence must
    be scanned).  A leaf can satisfy several criteria at once, e.g. lie both
    below and to the right of the query (leaf ``f`` in Figure 3a).
    """
    box = leaf_box(entry)
    criteria = []
    if box.is_below(query):
        criteria.append(SKIP_BELOW)
    if box.is_above(query):
        criteria.append(SKIP_ABOVE)
    if box.is_left_of(query):
        criteria.append(SKIP_LEFT)
    if box.is_right_of(query):
        criteria.append(SKIP_RIGHT)
    return tuple(criteria)


def choose_skip_target(entry: LeafEntry, query: Rect) -> Optional[int]:
    """The LeafList index the scan should jump to after an irrelevant leaf.

    Among the look-ahead pointers of the criteria that disqualify the leaf,
    the one skipping over the greatest number of leaves is chosen (the paper's
    tie-breaking rule).  Returns ``None`` when the leaf is *not* disqualified
    (the caller must scan it) and :data:`END_OF_LIST` (-1 mapped to ``None``
    by the caller's loop bound) semantics are preserved by returning the raw
    pointer value, which may be ``END_OF_LIST``.
    """
    criteria = disqualifying_criteria(entry, query)
    if not criteria:
        return None
    best_target = entry.order + 1
    found = False
    for criterion in criteria:
        target = entry.skip_pointer(criterion)
        if target == END_OF_LIST:
            return END_OF_LIST
        if not found or target > best_target:
            best_target = target
            found = True
    return best_target if found else entry.order + 1
