"""Look-ahead pointers: construction and use during range-query scans.

This module implements the skipping mechanism of Section 5 of the paper.

A leaf is irrelevant to a range query ``R`` for one of four reasons — it lies
entirely *below*, *above*, *left of* or *right of* ``R``.  For each reason,
every leaf stores a look-ahead pointer to the earliest later leaf that
"improves" the corresponding coordinate bound; any leaf between the two is
guaranteed to be irrelevant for the same reason, so the scan can jump
directly to the pointer's target (Figure 3 of the paper).

``build_lookahead_pointers`` is Algorithm 4: it walks the LeafList backwards
and, for each criterion, starts from the next pointer and follows already
computed pointers of that same criterion until the bound improves.
``choose_skip_target`` is the query-time rule: among the criteria that
disqualify the current leaf, follow the pointer that jumps farthest.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.geometry import Rect
from repro.storage.leaflist import (
    END_OF_LIST,
    LeafEntry,
    LeafList,
    SKIP_ABOVE,
    SKIP_BELOW,
    SKIP_CRITERIA,
    SKIP_LEFT,
    SKIP_RIGHT,
)


def leaf_box(entry: LeafEntry) -> Rect:
    """The rectangle a leaf is compared with: its data bounding box.

    Empty leaves (possible under WaZI's arbitrary split points) fall back to
    their cell so the skipping criteria remain well defined; an empty leaf
    never overlaps a query anyway.
    """
    return entry.bbox if entry.bbox is not None else entry.cell


def _criterion_value(entry: LeafEntry, criterion: str) -> float:
    """The coordinate bound a criterion compares (Section 5.2 "improvement").

    * ``below``: the leaf's top edge — a later leaf improves if it is higher;
    * ``above``: the leaf's bottom edge — improves if it is lower;
    * ``left``:  the leaf's right edge — improves if it is further right;
    * ``right``: the leaf's left edge — improves if it is further left.
    """
    box = leaf_box(entry)
    if criterion == SKIP_BELOW:
        return box.ymax
    if criterion == SKIP_ABOVE:
        return box.ymin
    if criterion == SKIP_LEFT:
        return box.xmax
    if criterion == SKIP_RIGHT:
        return box.xmin
    raise ValueError(f"Unknown skip criterion: {criterion!r}")


def _improves(criterion: str, candidate_value: float, reference_value: float) -> bool:
    """Whether a candidate leaf's bound improves on the reference leaf's bound."""
    if criterion in (SKIP_BELOW, SKIP_LEFT):
        return candidate_value > reference_value
    return candidate_value < reference_value


def _first_improver(entries, begin: int, criterion: str, reference: float) -> int:
    """First position at or after ``begin`` whose bound improves ``reference``.

    Walks the criterion's own pointer chain, so later pointers must already
    be final.  ``begin`` past the end of the list yields :data:`END_OF_LIST`.
    """
    target = begin if begin < len(entries) else END_OF_LIST
    while target != END_OF_LIST:
        candidate = entries[target]
        if _improves(criterion, _criterion_value(candidate, criterion), reference):
            break
        target = candidate.skip_pointer(criterion)
    return target


def build_lookahead_pointers(leaflist: LeafList) -> None:
    """Populate the four look-ahead pointers of every leaf (Algorithm 4).

    The construction iterates the LeafList backwards.  For the last leaf all
    pointers refer to the end-of-list sentinel.  For every earlier leaf the
    pointer starts at the next leaf and repeatedly follows the *same
    criterion's* pointer of the pointed-to leaf until the criterion's bound
    improves (or the end of the list is reached).
    """
    entries = leaflist.entries
    n = len(entries)
    for position in range(n - 1, -1, -1):
        entry = entries[position]
        reference_values = {
            criterion: _criterion_value(entry, criterion) for criterion in SKIP_CRITERIA
        }
        for criterion in SKIP_CRITERIA:
            target = position + 1 if position + 1 < n else END_OF_LIST
            reference = reference_values[criterion]
            while target != END_OF_LIST:
                candidate = entries[target]
                if _improves(criterion, _criterion_value(candidate, criterion), reference):
                    break
                target = candidate.skip_pointer(criterion)
            entry.set_skip_pointer(criterion, target)
    leaflist.invalidate_packed()


def repair_lookahead_pointers(leaflist: LeafList, start: int, num_new: int) -> None:
    """Repair look-ahead pointers after a splice replaced one leaf.

    :meth:`~repro.storage.LeafList.splice` substituted the single entry at
    ``start`` with ``num_new`` entries and already shifted the pointer
    *targets* of the unchanged suffix.  This repairs the rest incrementally:

    1. pointers of the ``num_new`` new entries are built with the backward
       pass of Algorithm 4 (their chains run into the already-final suffix);
    2. for every earlier leaf ``q``, a criterion pointer is left untouched
       when its old target lies *before* the replaced region — the leaves
       between ``q`` and the region did not change, so the first improving
       leaf did not either.  Only pointers that aimed at or past the region
       (where bounds did change) are resolved again, by chain-walking from
       ``start`` through the now-final later pointers.

    The common case therefore costs four integer comparisons per earlier
    leaf plus a few short chain walks, instead of the full Algorithm 4 pass
    (let alone the seed's rebuild of the entire LeafList per overflow).
    """
    entries = leaflist.entries
    n = len(entries)

    # Pass 1: the new entries themselves (backwards, chains hit final state).
    end = min(start + num_new - 1, n - 1)
    for position in range(end, start - 1, -1):
        entry = entries[position]
        for criterion in SKIP_CRITERIA:
            reference = _criterion_value(entry, criterion)
            entry.set_skip_pointer(
                criterion, _first_improver(entries, position + 1, criterion, reference)
            )

    # Pass 2: earlier leaves.  Old targets < start are still the first
    # improvers; everything else is re-resolved starting at the region.
    for position in range(start - 1, -1, -1):
        entry = entries[position]
        for criterion in SKIP_CRITERIA:
            old_target = entry.skip_pointer(criterion)
            if old_target != END_OF_LIST and old_target < start:
                continue
            reference = _criterion_value(entry, criterion)
            entry.set_skip_pointer(
                criterion, _first_improver(entries, start, criterion, reference)
            )
    leaflist.invalidate_packed()


def refresh_lookahead_for_leaf(leaflist: LeafList, position: int) -> None:
    """Restore pointer exactness after a leaf's effective box changed in place.

    A non-overflow insert expands the bounding box of one page without
    touching the list structure (and inserting into a previously *empty*
    leaf switches its effective box from the cell to the data bbox, which
    can move bounds in either direction).  That invalidates (a) the leaf's
    own look-ahead pointers (its reference bounds moved) and (b) pointers
    of *earlier* leaves aimed at or past this leaf.  Leaving those stale is
    not merely suboptimal: a later scan could skip this leaf even though
    its grown box overlaps the query, silently dropping results (a latent
    bug in the pre-columnar implementation, which only rebuilt pointers on
    leaf splits).

    Earlier leaves are repaired with a handful of comparisons each: a
    pointer targeting *before* ``position`` is still the first improver
    (nothing between changed); one targeting ``position`` stays only if the
    new bounds still improve, otherwise it is re-resolved past the leaf;
    and one aiming beyond moves back to ``position`` exactly when the new
    bounds now improve on that leaf's reference.
    """
    entries = leaflist.entries
    entry = entries[position]
    for criterion in SKIP_CRITERIA:
        reference = _criterion_value(entry, criterion)
        entry.set_skip_pointer(
            criterion, _first_improver(entries, position + 1, criterion, reference)
        )
    for criterion in SKIP_CRITERIA:
        new_value = _criterion_value(entry, criterion)
        for earlier in range(position - 1, -1, -1):
            earlier_entry = entries[earlier]
            target = earlier_entry.skip_pointer(criterion)
            if target != END_OF_LIST and target < position:
                continue
            reference = _criterion_value(earlier_entry, criterion)
            if _improves(criterion, new_value, reference):
                if target != position:
                    earlier_entry.set_skip_pointer(criterion, position)
            elif target == position:
                earlier_entry.set_skip_pointer(
                    criterion,
                    _first_improver(entries, position + 1, criterion, reference),
                )
    leaflist.invalidate_packed()


def disqualifying_criteria(entry: LeafEntry, query: Rect) -> Tuple[str, ...]:
    """The criteria under which ``entry`` is irrelevant to ``query``.

    Returns an empty tuple when the leaf overlaps the query (and hence must
    be scanned).  A leaf can satisfy several criteria at once, e.g. lie both
    below and to the right of the query (leaf ``f`` in Figure 3a).
    """
    box = leaf_box(entry)
    criteria = []
    if box.is_below(query):
        criteria.append(SKIP_BELOW)
    if box.is_above(query):
        criteria.append(SKIP_ABOVE)
    if box.is_left_of(query):
        criteria.append(SKIP_LEFT)
    if box.is_right_of(query):
        criteria.append(SKIP_RIGHT)
    return tuple(criteria)


def choose_skip_target(entry: LeafEntry, query: Rect) -> Optional[int]:
    """The LeafList index the scan should jump to after an irrelevant leaf.

    Among the look-ahead pointers of the criteria that disqualify the leaf,
    the one skipping over the greatest number of leaves is chosen (the paper's
    tie-breaking rule).  Returns ``None`` when the leaf is *not* disqualified
    (the caller must scan it) and :data:`END_OF_LIST` (-1 mapped to ``None``
    by the caller's loop bound) semantics are preserved by returning the raw
    pointer value, which may be ``END_OF_LIST``.
    """
    criteria = disqualifying_criteria(entry, query)
    if not criteria:
        return None
    best_target = entry.order + 1
    found = False
    for criterion in criteria:
        target = entry.skip_pointer(criterion)
        if target == END_OF_LIST:
            return END_OF_LIST
        if not found or target > best_target:
            best_target = target
            found = True
    return best_target if found else entry.order + 1
