"""The generalized Z-index: construction, queries and updates.

:class:`ZIndex` is the shared structure behind both the base Z-index of
Section 3 and WaZI (Section 4): a quaternary tree over the data space, a
clustered :class:`~repro.storage.LeafList`, Algorithm 1 tree traversal for
point queries, Algorithm 2 interval scanning for range queries, and the
optional look-ahead skipping of Section 5.  The strategy that picks each
node's split point and ordering is pluggable, which is exactly the degree of
freedom WaZI exploits.

:class:`BaseZIndex` is the paper's ``Base`` baseline: median splits,
"abcd" ordering everywhere, no skipping pointers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.evaluation.metrics import PhaseTimer
from repro.geometry import Point, Rect, bounding_box
from repro.interfaces import SpatialIndex
from repro.storage import LeafEntry, LeafList, Page
from repro.storage.leaflist import END_OF_LIST
from repro.zindex.node import (
    InternalNode,
    LeafNode,
    ZNode,
    count_nodes,
    iter_leaves_in_curve_order,
    structure_size_bytes,
    tree_depth,
)
from repro.zindex.skipping import build_lookahead_pointers
from repro.zindex.splitters import (
    MedianSplitStrategy,
    SplitStrategy,
    partition_by_quadrant,
)

DEFAULT_LEAF_CAPACITY = 64
DEFAULT_MAX_DEPTH = 32


class ZIndex(SpatialIndex):
    """A Z-index with pluggable split strategy and optional skipping.

    Parameters
    ----------
    points:
        The dataset to index.  The index is clustered: points are stored in
        pages following the curve order induced by the tree.
    leaf_capacity:
        Maximum number of points per leaf page (``L`` in the paper; the
        authors use 256 on multi-million-point data, the default here is 64
        to keep laptop-scale trees comparably deep).
    split_strategy:
        How each node's split point and child ordering are chosen.  Defaults
        to the base Z-index's median strategy.
    use_skipping:
        Whether to build and use the look-ahead pointers of Section 5 during
        range-query processing.
    max_depth:
        Safety bound on tree depth; a cell that still exceeds the leaf
        capacity at this depth becomes an oversized leaf (this only happens
        with heavily duplicated coordinates).
    """

    name = "ZIndex"

    def __init__(
        self,
        points: Sequence[Point],
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        split_strategy: Optional[SplitStrategy] = None,
        use_skipping: bool = False,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        super().__init__()
        if leaf_capacity <= 0:
            raise ValueError(f"leaf_capacity must be positive, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        self.use_skipping = use_skipping
        self.split_strategy = split_strategy or MedianSplitStrategy()
        self.phase_timer: Optional[PhaseTimer] = None
        self._points = [Point(float(p.x), float(p.y)) if not isinstance(p, Point) else p
                        for p in points]
        self._extent = bounding_box(self._points) if self._points else None
        self.leaflist = LeafList()
        self.root: Optional[ZNode] = None
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        if not self._points:
            self.root = None
            return
        array = np.array([(p.x, p.y) for p in self._points], dtype=np.float64)
        self.root = self._build_node(self._extent, array, depth=0)
        self._rebuild_leaflist()

    def _build_node(self, cell: Rect, array: np.ndarray, depth: int) -> ZNode:
        n = array.shape[0]
        if n <= self.leaf_capacity or depth >= self.max_depth or self._all_identical(array):
            return self._make_leaf(cell, array)
        decision = self.split_strategy.choose(cell, array, depth)
        split_x = min(max(decision.split_x, cell.xmin), cell.xmax)
        split_y = min(max(decision.split_y, cell.ymin), cell.ymax)
        node = InternalNode(cell, split_x, split_y, decision.ordering)
        child_cells = node.child_cells()
        quadrant_arrays = partition_by_quadrant(array, split_x, split_y)
        # A split that fails to separate the points (all land in one quadrant
        # whose cell equals the parent) would recurse forever; fall back to a
        # leaf in that degenerate case.
        largest = max(quad.shape[0] for quad in quadrant_arrays)
        if largest == n and any(
            quadrant_arrays[q].shape[0] == n and child_cells[q] == cell for q in range(4)
        ):
            return self._make_leaf(cell, array)
        for quadrant in range(4):
            node.children[quadrant] = self._build_node(
                child_cells[quadrant], quadrant_arrays[quadrant], depth + 1
            )
        return node

    @staticmethod
    def _all_identical(array: np.ndarray) -> bool:
        if array.shape[0] <= 1:
            return True
        return bool((array == array[0]).all())

    def _make_leaf(self, cell: Rect, array: np.ndarray) -> LeafNode:
        leaf = LeafNode(cell)
        capacity = max(self.leaf_capacity, array.shape[0])
        page = Page(capacity)
        for x, y in array:
            page.add(Point(float(x), float(y)))
        # The page is attached later when the leaf list is rebuilt; stash it
        # on the node temporarily.
        leaf._pending_page = page  # type: ignore[attr-defined]
        return leaf

    def _rebuild_leaflist(self) -> None:
        """Recreate the LeafList (and skip pointers) from the current tree."""
        self.leaflist = LeafList()
        for leaf in iter_leaves_in_curve_order(self.root):
            page = getattr(leaf, "_pending_page", None)
            if page is None:
                # Leaf already had an entry in a previous list: reuse its page.
                page = self._page_of_existing_leaf(leaf)
            entry = LeafEntry(cell=leaf.cell, page=page)
            leaf.leaf_index = self.leaflist.append(entry)
            if hasattr(leaf, "_pending_page"):
                del leaf._pending_page
            leaf._entry = entry  # type: ignore[attr-defined]
        if self.use_skipping:
            build_lookahead_pointers(self.leaflist)

    @staticmethod
    def _page_of_existing_leaf(leaf: LeafNode) -> Page:
        entry = getattr(leaf, "_entry", None)
        if entry is None:
            raise RuntimeError("Leaf node has neither a pending page nor an existing entry")
        return entry.page

    # ------------------------------------------------------------------
    # point queries (Algorithm 1)
    # ------------------------------------------------------------------
    def _leaf_for(self, x: float, y: float) -> Optional[LeafNode]:
        node = self.root
        if node is None:
            return None
        while not node.is_leaf:
            self.counters.nodes_visited += 1
            node = node.children[node.quadrant_of(x, y)]
        return node  # type: ignore[return-value]

    def point_query(self, point: Point) -> bool:
        leaf = self._leaf_for(point.x, point.y)
        if leaf is None:
            return False
        entry = self.leaflist[leaf.leaf_index]
        self.counters.pages_scanned += 1
        self.counters.points_filtered += len(entry.page)
        found = entry.page.contains_exact(point)
        if found:
            self.counters.points_returned += 1
        return found

    # ------------------------------------------------------------------
    # range queries (Algorithm 2 + Section 5 skipping)
    # ------------------------------------------------------------------
    def range_query(self, query: Rect) -> List[Point]:
        if self.root is None:
            return []
        timer = self.phase_timer
        if timer is not None:
            with timer.phase("projection"):
                low, high, relevant = self._project(query)
            with timer.phase("scan"):
                return self._scan_pages(relevant, query)
        low, high, relevant = self._project(query)
        return self._scan_pages(relevant, query)

    def _project(self, query: Rect):
        """Projection phase: find the leaf interval and the overlapping leaves.

        Returns ``(low, high, relevant_entries)`` where ``relevant_entries``
        are the leaves whose bounding box overlaps the query.  Separating the
        projection from the page scan mirrors the split reported in Figure 9
        of the paper.
        """
        low_leaf = self._leaf_for(query.xmin, query.ymin)
        high_leaf = self._leaf_for(query.xmax, query.ymax)
        low = low_leaf.leaf_index if low_leaf is not None else 0
        high = high_leaf.leaf_index if high_leaf is not None else len(self.leaflist) - 1
        if low > high:
            low, high = high, low
        relevant: List[LeafEntry] = []
        entries = self.leaflist.entries
        counters = self.counters
        use_skipping = self.use_skipping
        bbs_checked = 0
        index = low
        while 0 <= index <= high:
            entry = entries[index]
            bbs_checked += 1
            box = entry.page.bbox
            if box is None:
                # Empty leaf: nothing to scan and no data bounding box to skip
                # from; fall back to the cell for the skip decision.
                box = entry.cell
                overlaps = False
            else:
                overlaps = box.overlaps(query)
            if overlaps:
                relevant.append(entry)
                index += 1
                continue
            if not use_skipping:
                index += 1
                continue
            # Inline equivalent of choose_skip_target: among the criteria that
            # disqualify this leaf, follow the look-ahead pointer that jumps
            # farthest (END_OF_LIST terminates the scan outright).
            target = index + 1
            disqualified = False
            ends = False
            if box.ymax < query.ymin:            # Below
                pointer = entry.below
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if box.ymin > query.ymax:            # Above
                pointer = entry.above
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if box.xmax < query.xmin:            # Left
                pointer = entry.left
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if box.xmin > query.xmax:            # Right
                pointer = entry.right
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if not disqualified:
                index += 1
                continue
            if ends:
                counters.leaves_skipped += max(0, high - index)
                break
            counters.leaves_skipped += target - index - 1
            index = target
        counters.bbs_checked += bbs_checked
        return low, high, relevant

    def _scan_pages(self, entries: List[LeafEntry], query: Rect) -> List[Point]:
        """Scanning phase: filter the points of every relevant page."""
        results: List[Point] = []
        for entry in entries:
            self.counters.pages_scanned += 1
            self.counters.points_filtered += len(entry.page)
            matches = entry.page.filter_range(query)
            self.counters.points_returned += len(matches)
            results.extend(matches)
        return results

    # ------------------------------------------------------------------
    # updates (Section 6.7)
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert a point, splitting the enclosing leaf when its page overflows."""
        if self.root is None:
            self._points = [point]
            self._extent = Rect(point.x, point.y, point.x, point.y)
            self._build()
            return
        self._points.append(point)
        if self._extent is not None:
            self._extent = self._extent.expand_to_point(point)
        leaf, parent, quadrant = self._descend_with_parent(point.x, point.y)
        entry = self.leaflist[leaf.leaf_index]
        if not entry.page.is_full:
            entry.page.add(point)
            return
        self._split_leaf(leaf, parent, quadrant, point)

    def _descend_with_parent(self, x: float, y: float):
        node = self.root
        parent: Optional[InternalNode] = None
        quadrant = -1
        while node is not None and not node.is_leaf:
            parent = node
            quadrant = node.quadrant_of(x, y)
            node = node.children[quadrant]
        return node, parent, quadrant

    def _split_leaf(
        self, leaf: LeafNode, parent: Optional[InternalNode], quadrant: int, new_point: Point
    ) -> None:
        entry = self.leaflist[leaf.leaf_index]
        points = list(entry.page.points) + [new_point]
        array = np.array([(p.x, p.y) for p in points], dtype=np.float64)
        replacement = self._build_node(leaf.cell, array, depth=0)
        if parent is None:
            self.root = replacement
        else:
            parent.children[quadrant] = replacement
        self._rebuild_leaflist()

    def delete(self, point: Point) -> bool:
        """Delete one occurrence of ``point``; merges underfull sibling leaves."""
        leaf = self._leaf_for(point.x, point.y)
        if leaf is None:
            return False
        entry = self.leaflist[leaf.leaf_index]
        removed = entry.page.remove(point)
        if removed:
            try:
                self._points.remove(point)
            except ValueError:
                pass
            self._maybe_merge()
        return removed

    def _maybe_merge(self) -> None:
        """Merge groups of four sibling leaves that jointly fit in one page."""
        merged = self._merge_recursive(self.root, None, -1)
        if merged:
            self._rebuild_leaflist()

    def _merge_recursive(
        self, node: Optional[ZNode], parent: Optional[InternalNode], quadrant: int
    ) -> bool:
        if node is None or node.is_leaf:
            return False
        changed = False
        for child_quadrant, child in enumerate(node.children):
            if self._merge_recursive(child, node, child_quadrant):
                changed = True
        if all(child is not None and child.is_leaf for child in node.children):
            total = sum(
                len(self.leaflist[child.leaf_index].page) for child in node.children
            )
            if total <= self.leaf_capacity:
                merged_leaf = LeafNode(node.cell)
                page = Page(max(self.leaf_capacity, total))
                for child in node.children_in_curve_order():
                    for stored in self.leaflist[child.leaf_index].page:
                        page.add(stored)
                merged_leaf._pending_page = page  # type: ignore[attr-defined]
                if parent is None:
                    self.root = merged_leaf
                else:
                    parent.children[quadrant] = merged_leaf
                changed = True
        return changed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.leaflist.num_points

    def extent(self) -> Optional[Rect]:
        return self._extent

    def size_bytes(self) -> int:
        """Tree structure plus leaf list plus pages (the paper's Table 5 metric)."""
        return structure_size_bytes(self.root) + self.leaflist.size_bytes()

    def depth(self) -> int:
        """Height of the quaternary tree."""
        return tree_depth(self.root)

    def node_counts(self):
        """``(internal_nodes, leaf_nodes)`` of the tree."""
        return count_nodes(self.root)

    def leaf_sizes(self) -> List[int]:
        """Number of points per leaf, in curve order."""
        return [len(entry.page) for entry in self.leaflist]

    def all_points(self) -> List[Point]:
        """Every indexed point in curve (storage) order."""
        return self.leaflist.all_points()


class BaseZIndex(ZIndex):
    """The paper's ``Base`` index: median splits, "abcd" order, no skipping."""

    name = "Base"

    def __init__(
        self,
        points: Sequence[Point],
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        super().__init__(
            points,
            leaf_capacity=leaf_capacity,
            split_strategy=MedianSplitStrategy(),
            use_skipping=False,
            max_depth=max_depth,
        )
