"""The generalized Z-index: construction, queries and updates.

:class:`ZIndex` is the shared structure behind both the base Z-index of
Section 3 and WaZI (Section 4): a quaternary tree over the data space, a
clustered :class:`~repro.storage.LeafList`, Algorithm 1 tree traversal for
point queries, Algorithm 2 interval scanning for range queries, and the
optional look-ahead skipping of Section 5.  The strategy that picks each
node's split point and ordering is pluggable, which is exactly the degree of
freedom WaZI exploits.

:class:`BaseZIndex` is the paper's ``Base`` baseline: median splits,
"abcd" ordering everywhere, no skipping pointers.

Vectorized query engine
-----------------------
Query processing is columnar throughout:

* the projection phase tests leaf bounding boxes against the query with
  NumPy expressions over the :class:`~repro.storage.leaflist.PackedLeaves`
  arrays (one ``(n_leaves, 4)`` bbox array plus one int64 array per
  look-ahead criterion) instead of attribute-chasing ``LeafEntry`` objects;
* the scanning phase filters candidate pages against a lazily maintained
  *flat store* — the concatenation of every page's coordinate columns in
  curve order, with per-leaf offsets — so one query performs a single
  vectorized gather-and-mask over contiguous ``float64`` arrays;
* :meth:`ZIndex.batch_range_query` answers a whole workload through the
  same machinery, amortising cache construction and per-query dispatch.

Logical cost counters (``bbs_checked``, ``pages_scanned``,
``points_filtered`` …) are maintained with exactly the same semantics as
the scalar reference implementation, so the paper's Figure 13 metrics are
unchanged by the vectorization.
"""

# repro-lint: hot-path
# repro-lint: kernel-parity
from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.evaluation.metrics import PhaseTimer
from repro.geometry import Point, Rect, bounding_box, points_from_arrays, points_to_arrays
from repro.interfaces import SpatialIndex, require_finite_center, require_valid_radius
from repro.kernels import get_kernels
from repro.results import ResultSet
from repro.storage import LeafEntry, LeafList, PackedLeaves, Page
from repro.storage.buffers import MemoryColumnStore
from repro.storage.leaflist import END_OF_LIST
from repro.zindex.node import (
    InternalNode,
    LeafNode,
    ORDERINGS,
    ZNode,
    count_nodes,
    iter_leaves_in_curve_order,
    pack_tree,
    structure_size_bytes,
    tree_depth,
    unpack_tree,
)
from repro.zindex.skipping import (
    build_lookahead_pointers,
    refresh_lookahead_for_leaf,
    repair_lookahead_pointers,
)
from repro.zindex.splitters import (
    MedianSplitStrategy,
    SplitStrategy,
    partition_by_quadrant,
)

DEFAULT_LEAF_CAPACITY = 64
DEFAULT_MAX_DEPTH = 32


@dataclass
class ZIndexSnapshotState:
    """Everything needed to rebuild a :class:`ZIndex` without re-running construction.

    Produced by :meth:`ZIndex.snapshot_state` and consumed by
    :meth:`ZIndex.from_snapshot_state`; the persistence layer
    (:mod:`repro.persistence.snapshot`) maps the scalar fields onto the
    container manifest and the ``arrays`` dict onto binary NPY members.

    ``arrays`` holds the flat coordinate columns in curve order (``flat_x``,
    ``flat_y``), the per-leaf row offsets (``leaf_starts``), the packed
    ``(n_leaves, 4)`` effective-bbox table with its non-empty mask
    (``leaf_boxes``/``leaf_nonempty``), the four look-ahead skip-pointer
    columns (``skip_below``/``skip_above``/``skip_left``/``skip_right``) and
    the tree-structure tables of :func:`repro.zindex.node.pack_tree`.
    """

    index_name: str
    class_path: str
    leaf_capacity: int
    max_depth: int
    use_skipping: bool
    has_nonmonotone_ordering: bool
    extent: Optional[Tuple[float, float, float, float]]
    num_points: int
    orderings: List[str]
    arrays: Dict[str, np.ndarray]


class ZIndex(SpatialIndex):
    """A Z-index with pluggable split strategy and optional skipping.

    Parameters
    ----------
    points:
        The dataset to index.  The index is clustered: points are stored in
        pages following the curve order induced by the tree.
    leaf_capacity:
        Maximum number of points per leaf page (``L`` in the paper; the
        authors use 256 on multi-million-point data, the default here is 64
        to keep laptop-scale trees comparably deep).
    split_strategy:
        How each node's split point and child ordering are chosen.  Defaults
        to the base Z-index's median strategy.
    use_skipping:
        Whether to build and use the look-ahead pointers of Section 5 during
        range-query processing.
    max_depth:
        Safety bound on tree depth; a cell that still exceeds the leaf
        capacity at this depth becomes an oversized leaf (this only happens
        with heavily duplicated coordinates).
    """

    name = "ZIndex"

    def __init__(
        self,
        points: Sequence[Point],
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        split_strategy: Optional[SplitStrategy] = None,
        use_skipping: bool = False,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        super().__init__()
        if leaf_capacity <= 0:
            raise ValueError(f"leaf_capacity must be positive, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        self.use_skipping = use_skipping
        self.split_strategy = split_strategy or MedianSplitStrategy()
        self.phase_timer: Optional[PhaseTimer] = None
        self._points = [Point(float(p.x), float(p.y)) if not isinstance(p, Point) else p
                        for p in points]
        self._extent = bounding_box(self._points) if self._points else None
        self.leaflist = LeafList()
        self.root: Optional[ZNode] = None
        # Flat columnar scan cache: every page's coordinate columns
        # concatenated in curve order, plus per-leaf offsets and the boxed
        # Point for each row (so query results hand back existing objects
        # instead of re-boxing coordinates).  Rebuilt lazily after any
        # structural or page mutation.
        self._store = None
        self._flat_x: Optional[np.ndarray] = None
        self._flat_y: Optional[np.ndarray] = None
        self._flat_starts: Optional[np.ndarray] = None
        self._flat_points: Optional[np.ndarray] = None
        self._flat_starts_list: Optional[List[int]] = None
        self._mask_a: Optional[np.ndarray] = None
        self._mask_b: Optional[np.ndarray] = None
        self._stale_scan_budget = 0
        self._has_nonmonotone_ordering = False
        self._build()

    # The dataset as a boxed Point list, used by the update/rebuild paths.
    # Stored lazily: a snapshot load leaves it unmaterialised and the first
    # accessor rebuilds it from the pages, so loading never pays a Python
    # boxing loop up front.  The class-level default keeps instances whose
    # __dict__ predates the `_points_list` storage attribute (raw pickles
    # from earlier revisions) working: their first access materialises from
    # the pages instead of raising AttributeError.
    _points_list: Optional[List[Point]] = None

    @property
    def _points(self) -> List[Point]:
        if self._points_list is None:
            self._points_list = self.leaflist.all_points()
        return self._points_list

    @_points.setter
    def _points(self, value: List[Point]) -> None:
        self._points_list = value

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        self._invalidate_flat()
        self._has_nonmonotone_ordering = False
        if not self._points:
            self.root = None
            self.leaflist = LeafList()
            return
        xs, ys = points_to_arrays(self._points)
        array = np.empty((len(self._points), 2), dtype=np.float64)
        array[:, 0] = xs
        array[:, 1] = ys
        self.root = self._build_node(self._extent, array, depth=0)
        self._rebuild_leaflist()

    def _build_node(self, cell: Rect, array: np.ndarray, depth: int) -> ZNode:
        n = array.shape[0]
        if n <= self.leaf_capacity or depth >= self.max_depth or self._all_identical(array):
            return self._make_leaf(cell, array)
        decision = self.split_strategy.choose(cell, array, depth)
        if decision.ordering not in ORDERINGS:
            # A non-monotone ordering (e.g. ORDER_BADC) voids the guarantee
            # that the BL/TR corner leaves bound the scan interval; the
            # projection then descends all four corners.
            self._has_nonmonotone_ordering = True
        split_x = min(max(decision.split_x, cell.xmin), cell.xmax)
        split_y = min(max(decision.split_y, cell.ymin), cell.ymax)
        node = InternalNode(cell, split_x, split_y, decision.ordering)
        child_cells = node.child_cells()
        quadrant_arrays = partition_by_quadrant(array, split_x, split_y)
        # A split that fails to separate the points (all land in one quadrant
        # whose cell equals the parent) would recurse forever; fall back to a
        # leaf in that degenerate case.
        largest = max(quad.shape[0] for quad in quadrant_arrays)
        if largest == n and any(
            quadrant_arrays[q].shape[0] == n and child_cells[q] == cell for q in range(4)
        ):
            return self._make_leaf(cell, array)
        for quadrant in range(4):
            node.children[quadrant] = self._build_node(
                child_cells[quadrant], quadrant_arrays[quadrant], depth + 1
            )
        return node

    @staticmethod
    def _all_identical(array: np.ndarray) -> bool:
        if array.shape[0] <= 1:
            return True
        return bool((array == array[0]).all())

    def _make_leaf(self, cell: Rect, array: np.ndarray) -> LeafNode:
        leaf = LeafNode(cell)
        page = Page.from_arrays(self.leaf_capacity, array[:, 0], array[:, 1])
        # The page is attached later when the leaf list is rebuilt; stash it
        # on the node temporarily.
        leaf._pending_page = page  # type: ignore[attr-defined]
        return leaf

    def _rebuild_leaflist(self) -> None:
        """Recreate the LeafList (and skip pointers) from the current tree."""
        self.leaflist = LeafList()
        for leaf in iter_leaves_in_curve_order(self.root):
            page = getattr(leaf, "_pending_page", None)
            if page is None:
                # Leaf already had an entry in a previous list: reuse its page.
                page = self._page_of_existing_leaf(leaf)
            entry = LeafEntry(cell=leaf.cell, page=page, node=leaf)
            leaf.leaf_index = self.leaflist.append(entry)
            if hasattr(leaf, "_pending_page"):
                del leaf._pending_page
            leaf._entry = entry  # type: ignore[attr-defined]
        if self.use_skipping:
            build_lookahead_pointers(self.leaflist)
        self._invalidate_flat()

    @staticmethod
    def _page_of_existing_leaf(leaf: LeafNode) -> Page:
        entry = getattr(leaf, "_entry", None)
        if entry is None:
            raise RuntimeError("Leaf node has neither a pending page nor an existing entry")
        return entry.page

    # ------------------------------------------------------------------
    # flat scan cache
    # ------------------------------------------------------------------
    #: Number of range queries served through the per-page fallback after a
    #: mutation before the flat cache is rebuilt.  Keeps alternating
    #: insert/query workloads from paying an O(N) rebuild per query while
    #: query bursts still amortise one rebuild.
    _STALE_SCAN_BUDGET = 8

    #: Monotone counter identifying the current flat-column generation.
    #: Result-set boxers compare it (instead of holding the arrays) to
    #: decide whether the shared object cache still matches their rows.
    #: Class-level default keeps pre-counter pickles working.
    _flat_generation: int = 0

    #: The column store backing the flat scan cache, when one is installed
    #: (a gather on a live index, or the store a snapshot load handed us —
    #: possibly mmap-backed).  Class-level default keeps pre-store pickles
    #: working.
    _store = None

    def _invalidate_flat(self, stale_budget: int = 0) -> None:
        self._flat_generation += 1
        store = self._store
        if store is not None:
            # The columns no longer reflect the index: advance the store's
            # generation for any out-of-index consumers and drop our
            # reference.  Pages that were re-pointed at store slices keep
            # the arrays alive and copy-on-write before mutating them.
            store.bump()
            self._store = None
        self._flat_x = None
        self._flat_y = None
        self._flat_starts = None
        self._flat_starts_list = None
        self._flat_points = None
        self._mask_a = None
        self._mask_b = None
        self._stale_scan_budget = stale_budget

    def _flat_columns(self):
        """``(flat_x, flat_y, starts)`` — concatenated page columns in curve order.

        Returns the live scan cache when it is current; otherwise gathers
        the columns into a fresh :class:`MemoryColumnStore` and installs
        views of it (the boxed-point side of the cache stays lazy, so
        saving a snapshot of a recently mutated index pays the O(n) column
        gather at most once — a following query reuses it instead of
        regathering).  The pages are re-pointed at their slices of the
        gathered columns, so the gather *moves* the coordinates into the
        store rather than duplicating them; a later page mutation promotes
        that page back to private buffers (copy-on-write).
        """
        if self._flat_starts is not None:
            return self._flat_x, self._flat_y, self._flat_starts
        store = MemoryColumnStore.gather(self.leaflist)
        self._adopt_store(store)
        return self._flat_x, self._flat_y, self._flat_starts

    def _adopt_store(self, store) -> None:
        """Install a column store as the flat scan cache, re-pointing pages.

        ``store`` must hold ``flat_x`` / ``flat_y`` / ``leaf_starts``
        columns consistent with the current LeafList (same curve order,
        same per-leaf counts).
        """
        flat_x = store["flat_x"]
        flat_y = store["flat_y"]
        starts = store["leaf_starts"]
        starts_list = starts.tolist()
        entries = self.leaflist.entries
        for index, entry in enumerate(entries):
            lo, hi = starts_list[index], starts_list[index + 1]
            entry.page.adopt_view(flat_x[lo:hi], flat_y[lo:hi])
        self._store = store
        self._flat_x = flat_x
        self._flat_y = flat_y
        self._flat_starts = starts
        self._flat_starts_list = starts_list

    def adopt_coord_dtype(self, dtype) -> None:
        """Re-serve the flat scan cache at a narrower coordinate width.

        The float32 storage mode for memory-bound read-mostly serving:
        the column store is re-materialised via
        :meth:`~repro.storage.buffers.ColumnStore.astype_coords` and the
        pages re-pointed at the narrowed slices, halving the resident
        coordinate footprint.  Matching then evaluates the *rounded*
        values — results are no longer byte-identical to the float64
        tier (see ``docs/KERNELS.md`` for the tradeoff), which is why
        this is a method you call, never a default.  The flat generation
        advances so retained result sets and cached plans computed at
        full width are never served for the narrowed index.

        Narrowing is **one-way**: the pages themselves are re-pointed at
        the narrowed columns (that is what halves the resident
        footprint), so widening back — explicitly, or via the float64
        rebuild a later mutation triggers — restores the *dtype*, not
        the original values.  Reload the pre-narrowing snapshot to
        recover full precision.
        """
        self._prime_query_caches()
        store = self._store
        narrowed = store.astype_coords(dtype)
        if narrowed["flat_x"] is store["flat_x"]:
            return  # already served at this width
        self._invalidate_flat()
        self._adopt_store(narrowed)

    def _ensure_flat(self) -> None:
        """(Re)build the concatenated coordinate columns when stale.

        Installs only the *array* side of the scan cache — the coordinate
        columns plus the reusable mask buffers the filter chain writes into
        instead of allocating four fresh boolean temporaries per query.
        Boxed ``Point`` objects are NOT materialised here: count-only and
        array-consuming workloads run entirely on the columns, and the
        boxed cache (:meth:`_ensure_boxed`) is built lazily the first time
        a caller actually asks a :class:`ResultSet` for point objects.
        """
        if self._mask_a is not None and self._flat_starts is not None:
            return
        self._flat_columns()  # installs the columns when they are stale
        total = int(self._flat_starts[-1])
        self._mask_a = np.empty(total, dtype=bool)
        self._mask_b = np.empty(total, dtype=bool)

    def _ensure_boxed(self) -> np.ndarray:
        """The boxed ``Point`` column, built on first demand.

        Boxed points live in an object ndarray so query results can be
        materialised with one C-level fancy gather instead of a Python
        indexing loop.  Only result sets whose ``.points()`` / iteration
        surface is used ever trigger this; the columnar query paths
        themselves never do.
        """
        if self._flat_points is None:
            self._ensure_flat()
            total = int(self._flat_starts[-1])
            boxed = np.empty(total, dtype=object)
            boxed[:] = [
                Point(x, y)
                for x, y in zip(self._flat_x.tolist(), self._flat_y.tolist())
            ]
            self._flat_points = boxed
        return self._flat_points

    def _result_from_selection(self, sel: np.ndarray) -> ResultSet:
        """A lazy :class:`ResultSet` over the flat rows selected by ``sel``.

        The coordinate columns are gathered eagerly (two vectorized float
        gathers); boxing is deferred to a callback that hands back the
        cached ``Point`` objects while the flat cache that produced the
        selection is still live, and re-boxes from the captured coordinate
        copies otherwise (the index may have been mutated since — the old
        column arrays are replaced, never written in place, so the captured
        values stay correct for the query that produced them).  The
        callback holds only a weak index reference and a generation
        number, so retained result sets pin neither the index nor a
        superseded flat-column generation.
        """
        if sel.size == 0:
            return ResultSet.empty()
        xs = self._flat_x[sel]
        ys = self._flat_y[sel]
        index_ref = weakref.ref(self)
        generation = self._flat_generation

        def boxer() -> List[Point]:
            index = index_ref()
            if (
                index is not None
                and index._flat_generation == generation
                and index._flat_starts is not None
            ):
                return index._ensure_boxed()[sel].tolist()
            return points_from_arrays(xs, ys)

        return ResultSet.from_arrays(xs, ys, boxer=boxer)

    # ------------------------------------------------------------------
    # point queries (Algorithm 1)
    # ------------------------------------------------------------------
    def _leaf_for(self, x: float, y: float) -> Optional[LeafNode]:
        node = self.root
        if node is None:
            return None
        while not node.is_leaf:
            self.counters.nodes_visited += 1
            node = node.children[node.quadrant_of(x, y)]
        return node  # type: ignore[return-value]

    def point_query(self, point: Point) -> bool:
        leaf = self._leaf_for(point.x, point.y)
        if leaf is None:
            return False
        entry = self.leaflist[leaf.leaf_index]
        self.counters.pages_scanned += 1
        self.counters.points_filtered += len(entry.page)
        found = entry.page.contains_exact(point)
        if found:
            self.counters.points_returned += 1
        return found

    # ------------------------------------------------------------------
    # range queries (Algorithm 2 + Section 5 skipping)
    # ------------------------------------------------------------------
    def range_query(self, query: Rect) -> ResultSet:
        if self.root is None:
            return ResultSet.empty()
        timer = self.phase_timer
        if timer is not None:
            with timer.phase("projection"):
                low, high, relevant = self._project(query)
            with timer.phase("scan"):
                return self._scan_pages(relevant, query)
        return self._scan_pages(self._project(query)[2], query)

    def _range_query_points(self, query: Rect) -> List[Point]:
        # The protocol's boxed hook; the columnar override above is the
        # real entry point, so this only serves direct protocol callers.
        return self.range_query(query).points()

    def batch_range_query(self, queries: Sequence[Rect]) -> List[ResultSet]:
        """Answer a workload of range queries through the columnar engine.

        Equivalent to ``[self.range_query(q) for q in queries]`` (identical
        result sets and cost counters) but primes the packed leaf arrays
        and the flat scan cache once up front and bypasses the per-query
        phase-timer plumbing, which benchmark workloads otherwise pay per
        call.
        """
        if self.root is None:
            return [ResultSet.empty() for _ in queries]
        self._prime_query_caches()
        counters = self.counters
        project = self._project
        results: List[Optional[ResultSet]] = [None] * len(queries)
        slots: List[int] = []
        los: List[int] = []
        his: List[int] = []
        bounds: List[Tuple[float, float, float, float]] = []
        for slot, query in enumerate(queries):
            relevant = project(query)[2]
            if not relevant:
                results[slot] = ResultSet.empty()
                continue
            lo, hi, total = self._flat_span(relevant)
            counters.pages_scanned += len(relevant)
            counters.points_filtered += total
            slots.append(slot)
            los.append(lo)
            his.append(hi)
            bounds.append((query.xmin, query.ymin, query.xmax, query.ymax))
        if slots:
            sel, offsets = get_kernels().batch_range_select(
                self._flat_x,
                self._flat_y,
                np.asarray(los, dtype=np.int64),
                np.asarray(his, dtype=np.int64),
                np.asarray(bounds, dtype=np.float64),
                self._mask_a,
                self._mask_b,
            )
            offsets_list = offsets.tolist()
            for position, slot in enumerate(slots):
                part = sel[offsets_list[position]:offsets_list[position + 1]]
                counters.points_returned += int(part.size)
                results[slot] = self._result_from_selection(part)
        return results  # type: ignore[return-value]

    def range_count(self, query: Rect) -> int:
        """Count-only range query evaluated purely on the flat columns.

        Identical count and cost counters to ``range_query(query).count()``
        but skips even the result-row selection and the :class:`ResultSet`
        construction: the window mask is reduced with one vectorized
        ``count_nonzero``.  Not a single ``Point`` is boxed.
        """
        if self.root is None:
            return 0
        if self._flat_starts is None and self._stale_scan_budget > 0:
            # Recently mutated: reuse the stale-budget per-page scan.
            return self.range_query(query).count()
        self._prime_query_caches()
        return self._count_pages(self._project(query)[2], query)

    def batch_range_count(self, queries: Sequence[Rect]) -> List[int]:
        """Count-only range workload on the columnar engine (no boxing)."""
        if self.root is None:
            return [0 for _ in queries]
        if self._flat_starts is None and self._stale_scan_budget > 0:
            # Recently mutated: count per query so each goes through the
            # budget-honouring per-page scan instead of forcing the O(N)
            # flat rebuild the budget exists to defer.
            return [self.range_count(query) for query in queries]
        self._prime_query_caches()
        counters = self.counters
        project = self._project
        counts = [0] * len(queries)
        slots: List[int] = []
        los: List[int] = []
        his: List[int] = []
        bounds: List[Tuple[float, float, float, float]] = []
        for slot, query in enumerate(queries):
            relevant = project(query)[2]
            if not relevant:
                continue
            lo, hi, total = self._flat_span(relevant)
            counters.pages_scanned += len(relevant)
            counters.points_filtered += total
            slots.append(slot)
            los.append(lo)
            his.append(hi)
            bounds.append((query.xmin, query.ymin, query.xmax, query.ymax))
        if not slots:
            return counts
        matched = get_kernels().batch_range_count(
            self._flat_x,
            self._flat_y,
            np.asarray(los, dtype=np.int64),
            np.asarray(his, dtype=np.int64),
            np.asarray(bounds, dtype=np.float64),
            self._mask_a,
            self._mask_b,
        )
        for slot, count in zip(slots, matched.tolist()):
            counters.points_returned += count
            counts[slot] = count
        return counts

    def _count_pages(self, indices: Sequence[int], query: Rect) -> int:
        """Counting twin of :meth:`_scan_pages` (same counter accounting)."""
        counters = self.counters
        if not indices:
            return 0
        lo, hi, total = self._flat_span(indices)
        counters.pages_scanned += len(indices)
        counters.points_filtered += total
        matched = get_kernels().range_count(
            self._flat_x, self._flat_y, lo, hi,
            query.xmin, query.ymin, query.xmax, query.ymax,
            self._mask_a, self._mask_b,
        )
        counters.points_returned += matched
        return matched

    # ------------------------------------------------------------------
    # kNN queries (Section 6.3 remark: decomposed into range queries)
    # ------------------------------------------------------------------
    def knn(self, center: Point, k: int, initial_radius: Optional[float] = None) -> ResultSet:
        """k nearest neighbours through the vectorized columnar kernel.

        Same expanding-window decomposition as the
        :meth:`~repro.interfaces.SpatialIndex.knn` default — and identical
        results, result ordering and cost counters — but each window is
        answered with NumPy distance arithmetic over the flat coordinate
        columns: candidate points are never boxed, squared distances are
        computed in one array expression, and the neighbour ordering is a
        stable ``argsort`` instead of a Python sort of ``Point`` objects.
        """
        require_finite_center(center)
        if k <= 0 or self.root is None or len(self) == 0:
            return ResultSet.empty()
        if self._flat_starts is None and self._stale_scan_budget > 0:
            # Recently mutated: fall back to the scalar decomposition, whose
            # range queries honour the stale-scan budget — mixed insert/kNN
            # workloads keep the per-page scan instead of paying an O(N)
            # flat-cache rebuild per probe (mirrors range_query).
            return SpatialIndex.knn(self, center, k, initial_radius)
        self._prime_query_caches()
        radius = initial_radius if initial_radius and initial_radius > 0 else self._default_radius()
        return self._knn_columnar(center, min(k, len(self)), radius)

    def batch_knn(
        self, centers: Sequence[Point], k: int, initial_radius: Optional[float] = None
    ) -> List[ResultSet]:
        """Answer a workload of kNN queries through the columnar kernel.

        Equivalent to ``[self.knn(c, k, initial_radius) for c in centers]``
        (identical neighbour sets and cost counters) but primes the packed
        leaf arrays and the flat scan cache once up front and resolves the
        default search radius once for the whole batch.
        """
        for center in centers:
            require_finite_center(center)
        if k <= 0 or self.root is None or len(self) == 0:
            return [ResultSet.empty() for _ in centers]
        self._prime_query_caches()
        radius = initial_radius if initial_radius and initial_radius > 0 else self._default_radius()
        kernel = self._knn_columnar
        capped = min(k, len(self))
        return [kernel(center, capped, radius) for center in centers]

    def batch_radius_query(
        self, centers: Sequence[Point], radius: float
    ) -> List[ResultSet]:
        """Euclidean within-radius queries evaluated on the flat columns.

        Same results, ordering and cost counters as the filter-and-refine
        default (window query + exact distance filter), but the distance
        refinement happens on the flat coordinate columns *before* any
        candidate point is boxed: each returned :class:`ResultSet` selects
        exactly the rows that survive both predicates, and boxing stays
        deferred until a caller asks for point objects.
        """
        require_valid_radius(radius)
        for center in centers:
            require_finite_center(center)
        if self.root is None:
            return [ResultSet.empty() for _ in centers]
        self._prime_query_caches()
        counters = self.counters
        kernels = get_kernels()
        radius_squared = radius * radius
        results: List[ResultSet] = []
        for center in centers:
            cx = float(center.x)
            cy = float(center.y)
            window = Rect(cx - radius, cy - radius, cx + radius, cy + radius)
            relevant = self._project(window)[2]
            if not relevant:
                results.append(ResultSet.empty())
                continue
            lo, hi, total = self._flat_span(relevant)
            counters.pages_scanned += len(relevant)
            counters.points_filtered += total
            window_matches, sel = kernels.radius_select(
                self._flat_x, self._flat_y, lo, hi,
                window.xmin, window.ymin, window.xmax, window.ymax,
                cx, cy, radius_squared, self._mask_a, self._mask_b,
            )
            counters.points_returned += window_matches
            if not window_matches:
                results.append(ResultSet.empty())
                continue
            results.append(self._result_from_selection(sel))
        return results

    def _prime_query_caches(self) -> None:
        """Build the packed-leaf and flat-scan caches ahead of a query burst."""
        if not self.use_skipping:
            self.leaflist.packed()
        self._ensure_flat()

    def _knn_columnar(self, center: Point, k: int, radius: float) -> ResultSet:
        """Expanding-window kNN over the flat columns (``k`` pre-capped).

        Mirrors the scalar decomposition iteration for iteration, including
        the per-window counter accounting of :meth:`_scan_pages`, so the
        kernel is byte-compatible with ``SpatialIndex.knn`` on both results
        and Figure 13 metrics.  Returns a lazy :class:`ResultSet` over the
        chosen rows in neighbour order: the kernel itself never boxes a
        candidate *or* a result point.
        """
        cx = float(center.x)
        cy = float(center.y)
        counters = self.counters
        kernels = get_kernels()
        while True:
            window = Rect(cx - radius, cy - radius, cx + radius, cy + radius)
            covers = self._window_covers_everything(window)
            relevant = self._project(window)[2]
            if relevant:
                lo, hi, total = self._flat_span(relevant)
                counters.pages_scanned += len(relevant)
                counters.points_filtered += total
                sel, d2 = kernels.knn_candidates(
                    self._flat_x, self._flat_y, lo, hi,
                    window.xmin, window.ymin, window.xmax, window.ymax,
                    cx, cy, self._mask_a, self._mask_b,
                )
                num_candidates = int(sel.size)
                counters.points_returned += num_candidates
                if num_candidates >= k or covers:
                    # Stable sort ⇒ ties keep candidate (curve) order, the
                    # exact tie-break of the scalar ``list.sort``.  The
                    # scalar path returns the distance-sorted candidate
                    # prefix in both of its branches (``within`` is itself a
                    # sorted prefix), so one argsort covers both.
                    order = np.argsort(d2, kind="stable")
                    within = int(np.searchsorted(d2[order], radius * radius, side="right"))
                    if within >= k or covers:
                        return self._result_from_selection(sel[order[:k]])
            elif covers:
                return ResultSet.empty()
            radius *= 2.0

    def _project(self, query: Rect):
        """Projection phase: find the leaf interval and the overlapping leaves.

        Returns ``(low, high, relevant_indices)`` where ``relevant_indices``
        are the LeafList positions whose data bounding box overlaps the
        query.  Separating the projection from the page scan mirrors the
        split reported in Figure 9 of the paper.

        The scan interval is derived by descending the corners of the query
        rectangle and taking the min/max of the reached leaves.  Under the
        paper's two monotone orderings ("abcd"/"acbd") the bottom-left and
        top-right corners alone provably bound the interval (every other
        corner dominates BL and is dominated by TR), but custom split
        strategies may emit non-monotone orderings (e.g. ``ORDER_BADC``)
        under which the other two corners can land outside that two-corner
        interval — silently dropping results.  Trees containing such an
        ordering therefore descend *all four* corners.
        """
        if self._has_nonmonotone_ordering:
            corners = (
                (query.xmin, query.ymin),
                (query.xmax, query.ymax),
                (query.xmax, query.ymin),
                (query.xmin, query.ymax),
            )
        else:
            corners = (
                (query.xmin, query.ymin),
                (query.xmax, query.ymax),
            )
        low = high = None
        root = self.root
        if root is not None:
            nodes_visited = 0
            for cx, cy in corners:
                node = root
                while type(node) is InternalNode:
                    nodes_visited += 1
                    quadrant = 1 if cx > node.split_x else 0
                    if cy > node.split_y:
                        quadrant += 2
                    node = node.children[quadrant]
                index = node.leaf_index
                if low is None or index < low:
                    low = index
                if high is None or index > high:
                    high = index
            self.counters.nodes_visited += nodes_visited
        if low is None:
            low, high = 0, len(self.leaflist) - 1
        # Clamp to the live (non-empty) leaf interval: leaves outside it
        # cannot contribute, and for a Z-range shard they are the vast
        # majority of the list.
        span = self.leaflist.packed().live_span()
        if span is None:
            return low, high, []
        if low < span[0]:
            low = span[0]
        if high > span[1]:
            high = span[1]
        if low > high:
            return low, high, []
        counters = self.counters
        if not self.use_skipping:
            # Vectorized overlap test over the packed bbox array: a leaf is
            # relevant when it stores points and its data bounding box is not
            # strictly below / above / left of / right of the query.
            packed = self.leaflist.packed()
            window = slice(low, high + 1)
            boxes = packed.boxes[window]
            overlap_m = (
                packed.nonempty[window]
                & (boxes[:, 3] >= query.ymin)
                & (boxes[:, 1] <= query.ymax)
                & (boxes[:, 2] >= query.xmin)
                & (boxes[:, 0] <= query.xmax)
            )
            counters.bbs_checked += max(0, high - low + 1)
            return low, high, (low + np.flatnonzero(overlap_m)).tolist()
        # With look-ahead pointers the walk touches only a small fraction of
        # the interval, so a scalar walk beats materialising criteria arrays
        # for the whole window.  It reads the packed metadata as plain
        # Python lists (cheapest scalar access).
        (
            boxes_l, nonempty_l, below_l, above_l, left_l, right_l
        ) = self.leaflist.packed().lists()
        relevant: List[int] = []
        qxmin = query.xmin
        qymin = query.ymin
        qxmax = query.xmax
        qymax = query.ymax
        visited = 0
        skipped = 0
        index = low
        while index <= high:
            visited += 1
            bxmin, bymin, bxmax, bymax = boxes_l[index]
            if (
                nonempty_l[index]
                and bxmin <= qxmax and bxmax >= qxmin
                and bymin <= qymax and bymax >= qymin
            ):
                relevant.append(index)
                index += 1
                continue
            # Among the criteria that disqualify this leaf (an empty leaf's
            # box is its cell), follow the look-ahead pointer that jumps
            # farthest (END_OF_LIST terminates the scan outright).
            target = index + 1
            disqualified = False
            ends = False
            if bymax < qymin:                    # Below
                pointer = below_l[index]
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if bymin > qymax:                    # Above
                pointer = above_l[index]
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if bxmax < qxmin:                    # Left
                pointer = left_l[index]
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if bxmin > qxmax:                    # Right
                pointer = right_l[index]
                disqualified = True
                ends = ends or pointer == END_OF_LIST
                if pointer > target:
                    target = pointer
            if not disqualified:
                # Empty leaf whose cell overlaps the query: nothing to scan,
                # nothing to skip from.
                index += 1
                continue
            if ends:
                skipped += max(0, high - index)
                break
            skipped += target - index - 1
            index = target
        counters.bbs_checked += visited
        counters.leaves_skipped += skipped
        return low, high, relevant

    def _scan_pages(self, indices: Sequence[int], query: Rect) -> ResultSet:
        """Scanning phase: filter the points of every relevant page.

        One vectorized gather-and-mask over the flat coordinate columns
        replaces the per-page, per-point filtering loop.  The result is a
        lazy :class:`ResultSet` over the matching coordinate rows — no
        ``Point`` is boxed unless the caller asks for objects.
        """
        counters = self.counters
        if not indices:
            return ResultSet.empty()
        if self._flat_starts is None and self._stale_scan_budget > 0:
            # Recently mutated: a handful of queries go through the per-page
            # path rather than paying an O(N) flat-cache rebuild each —
            # alternating insert/query workloads never rebuild, while query
            # bursts rebuild once after the budget runs out.
            self._stale_scan_budget -= 1
            return ResultSet.from_points(self._scan_pages_direct(indices, query), own=True)
        self._ensure_flat()
        lo, hi, total = self._flat_span(indices)
        counters.pages_scanned += len(indices)
        counters.points_filtered += total
        # A point matching the query necessarily lives in a leaf whose data
        # bounding box overlaps the query, i.e. in one of the relevant
        # leaves, so masking the whole contiguous span [first, last] returns
        # exactly the points of the relevant pages that fall in the query —
        # without a per-leaf gather.  (points_filtered above still counts
        # only the relevant pages, preserving the Figure 13 metric.)
        sel = get_kernels().range_select(
            self._flat_x, self._flat_y, lo, hi,
            query.xmin, query.ymin, query.xmax, query.ymax,
            self._mask_a, self._mask_b,
        )
        counters.points_returned += int(sel.size)
        return self._result_from_selection(sel)

    def _flat_span(self, indices: Sequence[int]):
        """``(lo, hi, total)`` of the flat rows covered by the given leaves.

        ``[lo, hi)`` is the contiguous flat-column span from the first to
        the last leaf; ``total`` counts only the rows belonging to the
        listed leaves themselves (the Figure 13 ``points_filtered`` metric).
        """
        starts_l = self._flat_starts_list
        first = indices[0]
        last = indices[-1]
        num_pages = len(indices)
        lo = starts_l[first]
        hi = starts_l[last + 1]
        if last - first + 1 == num_pages:
            total = hi - lo
        elif num_pages <= 64:
            total = sum(starts_l[i + 1] - starts_l[i] for i in indices)
        else:
            starts = self._flat_starts
            idx = np.asarray(indices, dtype=np.int64)
            total = int((starts[idx + 1] - starts[idx]).sum())
        return lo, hi, total

    def _scan_pages_direct(self, indices: Sequence[int], query: Rect) -> List[Point]:
        """Per-page scan used while the flat cache is stale after updates.

        Same results and counter accounting as the flat path, filtering each
        relevant page's own coordinate columns instead of the concatenated
        cache.
        """
        counters = self.counters
        entries = self.leaflist.entries
        results: List[Point] = []
        counters.pages_scanned += len(indices)
        for index in indices:
            page = entries[index].page
            counters.points_filtered += len(page)
            matches = page.filter_range(query)
            counters.points_returned += len(matches)
            results.extend(matches)
        return results

    # ------------------------------------------------------------------
    # updates (Section 6.7)
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert a point, splitting the enclosing leaf when its page overflows.

        A point outside the root cell triggers a rebuild over the expanded
        extent: simply growing ``self._extent`` would leave the point in a
        leaf whose cell does not contain it, where no query descent could
        ever find it again.
        """
        if self.root is None:
            self._points = [point]
            self._extent = Rect(point.x, point.y, point.x, point.y)
            self._build()
            return
        if not self.root.cell.contains_xy(point.x, point.y):
            self._points.append(point)
            self._extent = (
                self._extent.expand_to_point(point)
                if self._extent is not None
                else Rect(point.x, point.y, point.x, point.y)
            )
            self._build()
            return
        self._points.append(point)
        if self._extent is not None:
            self._extent = self._extent.expand_to_point(point)
        leaf, parent, quadrant = self._descend_with_parent(point.x, point.y)
        entry = self.leaflist[leaf.leaf_index]
        if not entry.page.is_full:
            bbox_before = entry.page.bbox_tuple()
            entry.page.add(point)
            self.leaflist.refresh_entry(leaf.leaf_index)
            if self.use_skipping and entry.page.bbox_tuple() != bbox_before:
                refresh_lookahead_for_leaf(self.leaflist, leaf.leaf_index)
            self._invalidate_flat(stale_budget=self._STALE_SCAN_BUDGET)
            return
        self._split_leaf(leaf, parent, quadrant, point)

    def _descend_with_parent(self, x: float, y: float):
        node = self.root
        parent: Optional[InternalNode] = None
        quadrant = -1
        while node is not None and not node.is_leaf:
            parent = node
            quadrant = node.quadrant_of(x, y)
            node = node.children[quadrant]
        return node, parent, quadrant

    def _split_leaf(
        self, leaf: LeafNode, parent: Optional[InternalNode], quadrant: int, new_point: Point
    ) -> None:
        """Split an overflowing leaf and repair the LeafList incrementally.

        Only the replaced subtree's entries are rebuilt; the rest of the
        list is renumbered/spliced in place and the look-ahead pointers are
        recomputed for the prefix only (the suffix pointers survive the
        splice unchanged modulo an index shift).  The seed implementation
        rebuilt the entire LeafList per overflow, making N inserts O(N^2).
        """
        index = leaf.leaf_index
        entry = self.leaflist[index]
        page = entry.page
        n = len(page)
        array = np.empty((n + 1, 2), dtype=np.float64)
        array[:n, 0] = page.xs
        array[:n, 1] = page.ys
        array[n, 0] = float(new_point.x)
        array[n, 1] = float(new_point.y)
        replacement = self._build_node(leaf.cell, array, depth=0)
        if parent is None:
            self.root = replacement
        else:
            parent.children[quadrant] = replacement
        new_entries: List[LeafEntry] = []
        for new_leaf in iter_leaves_in_curve_order(replacement):
            new_page = new_leaf._pending_page  # type: ignore[attr-defined]
            del new_leaf._pending_page  # type: ignore[attr-defined]
            new_entry = LeafEntry(cell=new_leaf.cell, page=new_page, node=new_leaf)
            new_leaf._entry = new_entry  # type: ignore[attr-defined]
            new_entries.append(new_entry)
        self.leaflist.splice(index, new_entries)
        if self.use_skipping:
            repair_lookahead_pointers(self.leaflist, index, len(new_entries))
        self._invalidate_flat(stale_budget=self._STALE_SCAN_BUDGET)

    def rederive_subtree(
        self,
        node: ZNode,
        parent: Optional[InternalNode],
        quadrant: int,
        *,
        split_strategy: Optional[SplitStrategy] = None,
        leaf_capacity: Optional[int] = None,
    ) -> int:
        """Rebuild one subtree under a (possibly different) split policy and splice it in.

        The incremental-adapt primitive: instead of rebuilding the whole
        layout when the workload drifts, only the subtree whose observed
        scan cost regressed is re-derived — its points are gathered from
        the contiguous run of curve-ordered leaves it owns, rebuilt with
        ``split_strategy``/``leaf_capacity`` scoped to this call, and the
        new leaves replace the old run via
        :meth:`~repro.storage.LeafList.splice_span`.  ``parent`` is the
        subtree's parent node (``None`` when ``node`` is the root) and
        ``quadrant`` its child slot in ``parent``.

        Returns the number of leaves in the re-derived subtree.
        """
        leaves = list(iter_leaves_in_curve_order(node))
        if not leaves:
            return 0
        low = leaves[0].leaf_index
        high = leaves[-1].leaf_index
        if [leaf.leaf_index for leaf in leaves] != list(range(low, high + 1)):
            raise AssertionError("subtree leaves are not a contiguous curve-order span")
        total = sum(self.leaflist[i].num_points for i in range(low, high + 1))
        array = np.empty((total, 2), dtype=np.float64)
        offset = 0
        for i in range(low, high + 1):
            page = self.leaflist[i].page
            n = len(page)
            array[offset : offset + n, 0] = page.xs
            array[offset : offset + n, 1] = page.ys
            offset += n
        saved_strategy = self.split_strategy
        saved_capacity = self.leaf_capacity
        try:
            if split_strategy is not None:
                self.split_strategy = split_strategy
            if leaf_capacity is not None:
                self.leaf_capacity = leaf_capacity
            replacement = self._build_node(node.cell, array, depth=0)
        finally:
            self.split_strategy = saved_strategy
            self.leaf_capacity = saved_capacity
        if parent is None:
            self.root = replacement
        else:
            parent.children[quadrant] = replacement
        new_entries: List[LeafEntry] = []
        for new_leaf in iter_leaves_in_curve_order(replacement):
            new_page = new_leaf._pending_page  # type: ignore[attr-defined]
            del new_leaf._pending_page  # type: ignore[attr-defined]
            new_entry = LeafEntry(cell=new_leaf.cell, page=new_page, node=new_leaf)
            new_leaf._entry = new_entry  # type: ignore[attr-defined]
            new_entries.append(new_entry)
        self.leaflist.splice_span(low, high, new_entries)
        if self.use_skipping:
            repair_lookahead_pointers(self.leaflist, low, len(new_entries))
        self._invalidate_flat()
        return len(new_entries)

    def delete(self, point: Point) -> bool:
        """Delete one occurrence of ``point``; merges underfull sibling leaves.

        A removal can shrink the leaf's bounding box, which (symmetrically
        to the insert case) stales the look-ahead pointers: the leaf's own
        pointers were resolved against its old, larger bounds, so a later
        scan could jump past a leaf that still overlaps the query.  The
        pointers are therefore refreshed whenever the box changed.
        """
        leaf = self._leaf_for(point.x, point.y)
        if leaf is None:
            return False
        entry = self.leaflist[leaf.leaf_index]
        bbox_before = entry.page.bbox_tuple()
        removed = entry.page.remove(point)
        if removed:
            try:
                self._points.remove(point)
            except ValueError:
                pass
            self.leaflist.refresh_entry(leaf.leaf_index)
            if self.use_skipping and entry.page.bbox_tuple() != bbox_before:
                refresh_lookahead_for_leaf(self.leaflist, leaf.leaf_index)
            self._invalidate_flat(stale_budget=self._STALE_SCAN_BUDGET)
            self._maybe_merge()
        return removed

    def _maybe_merge(self) -> None:
        """Merge groups of four sibling leaves that jointly fit in one page."""
        merged = self._merge_recursive(self.root, None, -1)
        if merged:
            self._rebuild_leaflist()

    def _page_of_leaf(self, leaf: LeafNode) -> Page:
        """The page of a leaf node, whether or not it is in the LeafList yet.

        A leaf created during the current merge pass carries a pending page
        and has no valid ``leaf_index``; resolving through ``leaf_index``
        alone would silently read some other leaf's page and lose points
        when merges nest.
        """
        page = getattr(leaf, "_pending_page", None)
        if page is not None:
            return page
        return self.leaflist[leaf.leaf_index].page

    def _merge_recursive(
        self, node: Optional[ZNode], parent: Optional[InternalNode], quadrant: int
    ) -> bool:
        if node is None or node.is_leaf:
            return False
        changed = False
        for child_quadrant, child in enumerate(node.children):
            if self._merge_recursive(child, node, child_quadrant):
                changed = True
        if all(child is not None and child.is_leaf for child in node.children):
            total = sum(len(self._page_of_leaf(child)) for child in node.children)
            if total <= self.leaf_capacity:
                merged_leaf = LeafNode(node.cell)
                page = Page(max(self.leaf_capacity, total))
                for child in node.children_in_curve_order():
                    for stored in self._page_of_leaf(child):
                        page.add(stored)
                merged_leaf._pending_page = page  # type: ignore[attr-defined]
                if parent is None:
                    self.root = merged_leaf  # repro-lint: disable=mutation-must-invalidate -- sole caller _maybe_merge runs _rebuild_leaflist over every merge
                else:
                    parent.children[quadrant] = merged_leaf
                changed = True
        return changed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.leaflist.num_points

    def extent(self) -> Optional[Rect]:
        return self._extent

    def size_bytes(self) -> int:
        """Tree structure plus leaf list plus pages (the paper's Table 5 metric)."""
        return structure_size_bytes(self.root) + self.leaflist.size_bytes()

    def depth(self) -> int:
        """Height of the quaternary tree."""
        return tree_depth(self.root)

    def node_counts(self):
        """``(internal_nodes, leaf_nodes)`` of the tree."""
        return count_nodes(self.root)

    def leaf_sizes(self) -> List[int]:
        """Number of points per leaf, in curve order."""
        return [len(entry.page) for entry in self.leaflist]

    def all_points(self) -> List[Point]:
        """Every indexed point in curve (storage) order."""
        return self.leaflist.all_points()

    # ------------------------------------------------------------------
    # snapshot state (offline build / online serve)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> ZIndexSnapshotState:
        """Capture the built structure as flat arrays plus a few scalars.

        The capture is read-only: it reuses the flat scan cache when
        current, gathers the columns fresh otherwise, and never mutates the
        index.  Together with :meth:`from_snapshot_state` this gives an
        O(n) save/load cycle — no split strategy, density estimator or
        workload is ever re-evaluated.
        """
        tables, orderings = pack_tree(self.root)
        flat_x, flat_y, starts = self._flat_columns()
        packed = self.leaflist.packed()
        arrays: Dict[str, np.ndarray] = dict(tables)
        arrays["flat_x"] = flat_x
        arrays["flat_y"] = flat_y
        arrays["leaf_starts"] = starts
        arrays["leaf_boxes"] = packed.boxes
        arrays["leaf_nonempty"] = packed.nonempty
        arrays["skip_below"] = packed.below
        arrays["skip_above"] = packed.above
        arrays["skip_left"] = packed.left
        arrays["skip_right"] = packed.right
        extent = self._extent
        cls = type(self)
        return ZIndexSnapshotState(
            index_name=self.name,
            class_path=f"{cls.__module__}.{cls.__qualname__}",
            leaf_capacity=self.leaf_capacity,
            max_depth=self.max_depth,
            use_skipping=self.use_skipping,
            has_nonmonotone_ordering=self._has_nonmonotone_ordering,
            extent=None if extent is None else (
                extent.xmin, extent.ymin, extent.xmax, extent.ymax
            ),
            num_points=int(starts[-1]),
            orderings=list(orderings),
            arrays=arrays,
        )

    @classmethod
    def from_snapshot_state(
        cls,
        state: ZIndexSnapshotState,
        *,
        validate: bool = True,
        store=None,
    ) -> "ZIndex":
        """Rebuild a queryable index from :meth:`snapshot_state` output.

        The load is zero-copy: tree nodes are rematerialised from the
        packed tables, pages become *views* over their slice of the flat
        columns with the stored bounding boxes (no per-page copy, no
        min/max recomputation), and both derived caches — the packed leaf
        metadata and the flat scan cache — are installed as views of the
        stored arrays instead of being rebuilt from the structure.  Query
        results, result ordering and cost counters are identical to the
        index that was saved.  The first mutation of a page or packed row
        promotes it to a private buffer (copy-on-write), so the stored
        arrays — possibly read-only memmaps — are never written through.

        ``store`` optionally supplies the :class:`~repro.storage.buffers.
        ColumnStore` that owns the arrays (an mmap-backed store for
        zero-copy serving); when omitted, a :class:`MemoryColumnStore`
        adopting the snapshot columns is installed.  ``validate=False``
        skips the O(n) bounding-box cross-check (the one validation that
        touches every coordinate — and hence faults in every page of an
        mmap'd snapshot); structural invariants (offsets, shapes, pointer
        ranges, the nonempty mask) are always enforced.

        The restored object is a plain :class:`ZIndex` whose ``name``
        reports the saved index's name; construction-time artefacts (split
        strategy, density estimator, anticipated workload) are not part of
        the snapshot, so later :meth:`insert` overflows split with the
        median rule.  Raises :class:`ValueError` on inconsistent state.
        """
        arrays = state.arrays
        index = object.__new__(ZIndex)
        SpatialIndex.__init__(index)
        index.name = str(state.index_name)
        index.leaf_capacity = int(state.leaf_capacity)
        index.max_depth = int(state.max_depth)
        index.use_skipping = bool(state.use_skipping)
        index.split_strategy = MedianSplitStrategy()
        index.phase_timer = None
        index._has_nonmonotone_ordering = bool(state.has_nonmonotone_ordering)
        index._extent = None if state.extent is None else Rect(*state.extent)

        root, leaves = unpack_tree(arrays, list(state.orderings))
        index.root = root

        starts = np.ascontiguousarray(arrays["leaf_starts"], dtype=np.int64)
        flat_x = np.ascontiguousarray(arrays["flat_x"], dtype=np.float64)
        flat_y = np.ascontiguousarray(arrays["flat_y"], dtype=np.float64)
        n_leaves = int(starts.shape[0]) - 1
        if n_leaves < 0:
            raise ValueError("leaf_starts must hold at least the terminating offset")
        if len(leaves) != n_leaves:
            raise ValueError(
                f"tree stores {len(leaves)} leaves but leaf_starts describes {n_leaves}"
            )
        starts_list = starts.tolist()
        if starts_list[0] != 0:
            # A non-zero base would silently drop (or, negative, wrap) the
            # leading flat rows — the row count checks below cannot see it.
            raise ValueError(f"leaf_starts must begin at 0, got {starts_list[0]}")
        if any(starts_list[i] > starts_list[i + 1] for i in range(n_leaves)):
            raise ValueError("leaf_starts offsets must be non-decreasing")
        total = starts_list[-1] if starts_list else 0
        if total != flat_x.shape[0] or total != flat_y.shape[0]:
            raise ValueError(
                f"flat columns hold {flat_x.shape[0]}/{flat_y.shape[0]} rows, "
                f"leaf_starts describes {total}"
            )

        packed = PackedLeaves.from_arrays(
            arrays["leaf_boxes"], arrays["leaf_nonempty"],
            arrays["skip_below"], arrays["skip_above"],
            arrays["skip_left"], arrays["skip_right"],
            copy=False,
        )
        if packed.boxes.shape[0] != n_leaves:
            raise ValueError(
                f"packed leaf tables hold {packed.boxes.shape[0]} rows, expected {n_leaves}"
            )
        # The nonempty mask gates leaf relevance in the vectorized
        # projection; a mask inconsistent with the slice lengths would
        # silently hide (or resurrect) whole pages from every query.
        derived_nonempty = starts[1:] > starts[:-1]
        if not np.array_equal(packed.nonempty, derived_nonempty):
            position = int(np.flatnonzero(packed.nonempty != derived_nonempty)[0])
            raise ValueError(
                f"leaf_nonempty[{position}] contradicts the leaf_starts slice "
                f"({int(starts[position + 1] - starts[position])} stored rows)"
            )
        # The stored boxes must be the exact data bounding boxes of their
        # slices: the projection prunes leaves by these rows, so a shrunken
        # box would silently hide matching points from every query.  Empty
        # leaves store their cell instead and are skipped by the mask.
        # This is the one check that reads every coordinate, which is why
        # ``validate=False`` (trusted snapshots served over mmap) skips it.
        if validate and total and packed.nonempty.any():
            # Reduce over the nonempty leaves' start offsets only: empty
            # leaves occupy zero rows, so each nonempty leaf's reduceat
            # segment (to the next nonempty start, or the array end) is
            # exactly its own slice — and every index is < total, which
            # reduceat requires.
            bounds = starts[:-1][packed.nonempty]
            rows = np.flatnonzero(packed.nonempty)
            stored = packed.boxes[packed.nonempty]
            derived = np.empty_like(stored)
            derived[:, 0] = np.minimum.reduceat(flat_x, bounds)
            derived[:, 1] = np.minimum.reduceat(flat_y, bounds)
            derived[:, 2] = np.maximum.reduceat(flat_x, bounds)
            derived[:, 3] = np.maximum.reduceat(flat_y, bounds)
            mismatched = (stored != derived).any(axis=1)
            if mismatched.any():
                position = int(rows[np.flatnonzero(mismatched)[0]])
                raise ValueError(
                    f"leaf_boxes[{position}] does not match the bounding box of "
                    f"its stored points"
                )
        # Skip pointers must be END_OF_LIST or aim at a strictly later leaf;
        # anything else would make a scan silently jump past (or into)
        # relevant leaves and drop results without any error.
        positions = np.arange(n_leaves, dtype=np.int64)
        for criterion, column in (
            ("below", packed.below), ("above", packed.above),
            ("left", packed.left), ("right", packed.right),
        ):
            bad = (column != END_OF_LIST) & (
                (column <= positions) | (column >= n_leaves)
            )
            if bad.any():
                position = int(np.flatnonzero(bad)[0])
                raise ValueError(
                    f"skip pointer {criterion!r} of leaf {position} targets "
                    f"{int(column[position])}, outside ({position}, {n_leaves})"
                )
        boxes_list = packed.boxes.tolist()
        nonempty_list = packed.nonempty.tolist()
        below_l = packed.below.tolist()
        above_l = packed.above.tolist()
        left_l = packed.left.tolist()
        right_l = packed.right.tolist()

        entries: List[Optional[LeafEntry]] = [None] * n_leaves
        for leaf in leaves:
            position = leaf.leaf_index
            if not 0 <= position < n_leaves or entries[position] is not None:
                raise ValueError(f"leaf node carries invalid LeafList position {position}")
            lo = starts_list[position]
            hi = starts_list[position + 1]
            bbox = boxes_list[position] if nonempty_list[position] else None
            page = Page.from_view(
                index.leaf_capacity, flat_x[lo:hi], flat_y[lo:hi], bbox=bbox
            )
            entry = LeafEntry(
                cell=leaf.cell,
                page=page,
                node=leaf,
                below=int(below_l[position]),
                above=int(above_l[position]),
                left=int(left_l[position]),
                right=int(right_l[position]),
            )
            leaf._entry = entry  # type: ignore[attr-defined]
            entries[position] = entry
        index.leaflist = LeafList.from_entries(entries)  # type: ignore[arg-type]
        index.leaflist._packed = packed

        # Install the coordinate columns as the live scan cache, owned by a
        # column store (the caller's — e.g. mmap-backed — or a fresh
        # in-memory store adopting the snapshot arrays); the boxed Point
        # objects (result materialisation, the `_points` dataset list) stay
        # lazy so the load itself is pure array bookkeeping.
        if store is None:
            store = MemoryColumnStore.from_arrays({
                "flat_x": flat_x,
                "flat_y": flat_y,
                "leaf_starts": starts,
                "leaf_boxes": packed.boxes,
                "leaf_nonempty": packed.nonempty,
                "skip_below": packed.below,
                "skip_above": packed.above,
                "skip_left": packed.left,
                "skip_right": packed.right,
            })
        index._store = store
        index._flat_x = flat_x
        index._flat_y = flat_y
        index._flat_starts = starts
        index._flat_starts_list = starts_list
        index._flat_points = None
        index._mask_a = None
        index._mask_b = None
        index._stale_scan_budget = 0
        index._flat_generation = 0
        index._points_list = None
        if state.num_points not in (None, total):
            raise ValueError(
                f"snapshot manifest claims {state.num_points} points, arrays hold {total}"
            )
        return index


class BaseZIndex(ZIndex):
    """The paper's ``Base`` index: median splits, "abcd" order, no skipping."""

    name = "Base"

    def __init__(
        self,
        points: Sequence[Point],
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        super().__init__(
            points,
            leaf_capacity=leaf_capacity,
            split_strategy=MedianSplitStrategy(),
            use_skipping=False,
            max_depth=max_depth,
        )
