"""Split strategies: how a Z-index chooses each node's partition and ordering.

The recursive construction in :mod:`repro.zindex.base` is agnostic to how
the split point and child ordering of a node are picked; it delegates that
decision to a :class:`SplitStrategy`.  The base Z-index of Section 3 uses
:class:`MedianSplitStrategy` (medians along both axes, always "abcd");
WaZI plugs in the greedy cost-minimising strategy from
:mod:`repro.core.construction`.  A midpoint strategy is included as a
simple space-partitioning reference used in tests.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry import Rect
from repro.zindex.node import ORDER_ABCD


@dataclass(frozen=True)
class SplitDecision:
    """The outcome of a split decision for one node.

    ``split_x``/``split_y`` locate the partition point inside the node's
    cell and ``ordering`` is either ``"abcd"`` or ``"acbd"``.
    """

    split_x: float
    split_y: float
    ordering: str = ORDER_ABCD


class SplitStrategy(abc.ABC):
    """Chooses the partition point and child ordering for a cell."""

    @abc.abstractmethod
    def choose(self, cell: Rect, points: np.ndarray, depth: int) -> SplitDecision:
        """Decide how to split ``cell`` containing ``points`` at tree ``depth``.

        ``points`` is an ``(n, 2)`` array of the points inside the cell;
        implementations must return a split point lying within ``cell``.
        """


class MedianSplitStrategy(SplitStrategy):
    """The base Z-index rule: split at the medians, always order "abcd"."""

    def choose(self, cell: Rect, points: np.ndarray, depth: int) -> SplitDecision:
        if points.shape[0] == 0:
            center = cell.center
            return SplitDecision(center.x, center.y, ORDER_ABCD)
        split_x = float(np.median(points[:, 0]))
        split_y = float(np.median(points[:, 1]))
        # Clamp into the cell: with duplicated coordinates the median can sit
        # exactly on the boundary, which Rect.split rejects.
        split_x = min(max(split_x, cell.xmin), cell.xmax)
        split_y = min(max(split_y, cell.ymin), cell.ymax)
        return SplitDecision(split_x, split_y, ORDER_ABCD)


class MidpointSplitStrategy(SplitStrategy):
    """Split every cell at its geometric center (a regular quad-tree layout)."""

    def choose(self, cell: Rect, points: np.ndarray, depth: int) -> SplitDecision:
        center = cell.center
        return SplitDecision(center.x, center.y, ORDER_ABCD)


class FixedDecisionStrategy(SplitStrategy):
    """Always return the same decision — a deterministic stub for unit tests."""

    def __init__(self, decision: SplitDecision) -> None:
        self._decision = decision

    def choose(self, cell: Rect, points: np.ndarray, depth: int) -> SplitDecision:
        return self._decision


def points_in_cell(points: np.ndarray, cell: Rect) -> np.ndarray:
    """Rows of ``points`` lying inside ``cell`` (closed on all sides)."""
    if points.shape[0] == 0:
        return points
    xs = points[:, 0]
    ys = points[:, 1]
    mask = (xs >= cell.xmin) & (xs <= cell.xmax) & (ys >= cell.ymin) & (ys <= cell.ymax)
    return points[mask]


def partition_by_quadrant(
    points: np.ndarray, split_x: float, split_y: float
) -> Sequence[np.ndarray]:
    """Partition point rows into the four quadrants (A, B, C, D) of a split.

    Points exactly on a split line go to the lower/left quadrant, matching
    the strict ``>`` comparisons of the paper's Algorithm 1, so that tree
    descent and construction agree on which child owns a boundary point.
    """
    xs = points[:, 0]
    ys = points[:, 1]
    right = xs > split_x
    up = ys > split_y
    quadrant_a = points[~right & ~up]
    quadrant_b = points[right & ~up]
    quadrant_c = points[~right & up]
    quadrant_d = points[right & up]
    return (quadrant_a, quadrant_b, quadrant_c, quadrant_d)
