"""The generalized Z-index structure (quaternary tree + clustered leaf list).

This subpackage contains the index *structure* shared by the base Z-index
of Section 3 and by WaZI: a quaternary tree whose internal nodes store a
split point and a child ordering ("abcd" or "acbd"), and whose leaves form
a clustered, linked :class:`~repro.storage.LeafList`.  What distinguishes
the base variant from WaZI is *how* the split point and ordering of each
node are chosen (median + "abcd" versus the greedy cost-minimising search
of Section 4.3) and whether range queries use the look-ahead skipping
pointers of Section 5 — both of which are pluggable here.
"""

from repro.zindex.node import (
    InternalNode,
    LeafNode,
    ORDER_ABCD,
    ORDER_ACBD,
    ORDERINGS,
    visit_sequence,
)
from repro.zindex.splitters import (
    MedianSplitStrategy,
    MidpointSplitStrategy,
    SplitDecision,
    SplitStrategy,
)
from repro.zindex.base import BaseZIndex, ZIndex

__all__ = [
    "InternalNode",
    "LeafNode",
    "ORDER_ABCD",
    "ORDER_ACBD",
    "ORDERINGS",
    "visit_sequence",
    "SplitDecision",
    "SplitStrategy",
    "MedianSplitStrategy",
    "MidpointSplitStrategy",
    "ZIndex",
    "BaseZIndex",
]
