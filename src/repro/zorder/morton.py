"""Morton (Z-order) encoding of two-dimensional integer coordinates.

The Z-address of a cell ``(x, y)`` is obtained by interleaving the bits of
``y`` and ``x`` (with ``y`` occupying the higher bit of each pair, matching
the ``cid = 2*bit_y + bit_x`` convention of Algorithm 1 in the paper).  The
encoding is exact for arbitrary-precision Python integers; the default
resolution used elsewhere in the library is 21 bits per dimension so that a
full Z-address fits comfortably in a 64-bit machine word, as a C++
implementation would require.

Two interfaces are provided:

* the scalar functions (:func:`interleave`, :func:`deinterleave`, …) work
  on plain Python ints of any width and keep the original API;
* the array functions (:func:`interleave_array`,
  :func:`deinterleave_array`) vectorise the encoding over NumPy ``uint64``
  arrays with the classic parallel-bit-spread ("magic masks") technique,
  encoding millions of cells per second for bulk loading and rank-space
  baselines.  They support up to 32 bits per dimension (a 64-bit address).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

DEFAULT_BITS = 21

# Magic masks spreading the low 32 bits of a word into the even bit
# positions of a 64-bit word (x | x<<16 … pattern), used by the vectorized
# encoder.  See "Bit Twiddling Hacks" / Morton code literature.
_SPREAD_SHIFTS = (16, 8, 4, 2, 1)
_SPREAD_MASKS = (
    np.uint64(0x0000FFFF0000FFFF),
    np.uint64(0x00FF00FF00FF00FF),
    np.uint64(0x0F0F0F0F0F0F0F0F),
    np.uint64(0x3333333333333333),
    np.uint64(0x5555555555555555),
)


def _check_coordinate(value: int, bits: int, name: str) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    if value >= (1 << bits):
        raise ValueError(f"{name}={value} does not fit in {bits} bits")


def interleave(x: int, y: int, bits: int = DEFAULT_BITS) -> int:
    """Interleave the bits of ``x`` and ``y`` into a single Z-address.

    Bit ``i`` of ``x`` lands on bit ``2*i`` of the result and bit ``i`` of
    ``y`` on bit ``2*i + 1``, so ``y`` is the more significant dimension
    within each bit pair.
    """
    _check_coordinate(x, bits, "x")
    _check_coordinate(y, bits, "y")
    result = 0
    for i in range(bits):
        result |= ((x >> i) & 1) << (2 * i)
        result |= ((y >> i) & 1) << (2 * i + 1)
    return result


def deinterleave(z: int, bits: int = DEFAULT_BITS) -> Tuple[int, int]:
    """Invert :func:`interleave`, recovering ``(x, y)`` from a Z-address."""
    if z < 0:
        raise ValueError(f"Z-address must be non-negative, got {z}")
    x = 0
    y = 0
    for i in range(bits):
        x |= ((z >> (2 * i)) & 1) << i
        y |= ((z >> (2 * i + 1)) & 1) << i
    return (x, y)


def _spread_bits(values: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of each ``uint64`` into the even positions."""
    result = values & np.uint64(0xFFFFFFFF)
    for shift, mask in zip(_SPREAD_SHIFTS, _SPREAD_MASKS):
        result = (result | (result << np.uint64(shift))) & mask
    return result


_COMPACT_STEPS = (
    (1, np.uint64(0x3333333333333333)),
    (2, np.uint64(0x0F0F0F0F0F0F0F0F)),
    (4, np.uint64(0x00FF00FF00FF00FF)),
    (8, np.uint64(0x0000FFFF0000FFFF)),
    (16, np.uint64(0x00000000FFFFFFFF)),
)


def _compact_bits(values: np.ndarray) -> np.ndarray:
    """Invert :func:`_spread_bits`: gather the even bits back into the low half."""
    result = values & _SPREAD_MASKS[-1]
    for shift, mask in _COMPACT_STEPS:
        result = (result | (result >> np.uint64(shift))) & mask
    return result


def _check_coordinate_array(values: np.ndarray, bits: int, name: str) -> np.ndarray:
    if bits <= 0 or bits > 32:
        raise ValueError(f"bits must be in 1..32 for array encoding, got {bits}")
    values = np.asarray(values)
    if values.size and (values.min() < 0 or int(values.max()) >= (1 << bits)):
        raise ValueError(f"{name} values must lie in [0, 2^{bits})")
    return values.astype(np.uint64, copy=False)


def interleave_array(
    xs: np.ndarray, ys: np.ndarray, bits: int = DEFAULT_BITS
) -> np.ndarray:
    """Vectorized :func:`interleave` over coordinate arrays.

    Returns a ``uint64`` array of Z-addresses; element ``i`` equals
    ``interleave(xs[i], ys[i], bits)``.
    """
    xs = _check_coordinate_array(xs, bits, "x")
    ys = _check_coordinate_array(ys, bits, "y")
    if xs.shape != ys.shape:
        raise ValueError(f"Shape mismatch: {xs.shape} vs {ys.shape}")
    return _spread_bits(xs) | (_spread_bits(ys) << np.uint64(1))


def deinterleave_array(
    z: np.ndarray, bits: int = DEFAULT_BITS
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`deinterleave`: recover ``(xs, ys)`` arrays from Z-addresses.

    Matches the scalar function bit-for-bit: only the low ``2 * bits`` bits
    of each address are decoded, so out-of-range high bits are ignored
    rather than leaking into the coordinates.
    """
    if bits <= 0 or bits > 32:
        raise ValueError(f"bits must be in 1..32 for array encoding, got {bits}")
    z = np.asarray(z)
    if z.size and int(z.min()) < 0:
        raise ValueError("Z-addresses must be non-negative")
    z = z.astype(np.uint64, copy=False)
    if bits < 32:
        z = z & np.uint64((1 << (2 * bits)) - 1)
    return _compact_bits(z), _compact_bits(z >> np.uint64(1))


def morton_encode(x: int, y: int, bits: int = DEFAULT_BITS) -> int:
    """Alias of :func:`interleave`, named after the Morton code literature."""
    return interleave(x, y, bits)


def morton_decode(z: int, bits: int = DEFAULT_BITS) -> Tuple[int, int]:
    """Alias of :func:`deinterleave`."""
    return deinterleave(z, bits)


def z_less(a: Tuple[int, int], b: Tuple[int, int], bits: int = DEFAULT_BITS) -> bool:
    """Compare two integer cells by Z-order without materialising addresses.

    Equivalent to ``morton_encode(*a) < morton_encode(*b)`` but implemented
    with the "most significant differing bit" trick, which is how production
    systems compare Z-order keys stored as separate columns.
    """
    (ax, ay) = a
    (bx, by) = b
    _check_coordinate(ax, bits, "a.x")
    _check_coordinate(ay, bits, "a.y")
    _check_coordinate(bx, bits, "b.x")
    _check_coordinate(by, bits, "b.y")
    # The dimension whose XOR has the highest set bit decides the order;
    # y is the more significant dimension when the bit positions tie.
    xor_x = ax ^ bx
    xor_y = ay ^ by
    if _less_msb(xor_y, xor_x):
        return ax < bx
    return ay < by


def _less_msb(a: int, b: int) -> bool:
    """Whether the most significant set bit of ``a`` is below that of ``b``."""
    return a < b and a < (a ^ b)
