"""Morton (Z-order) encoding of two-dimensional integer coordinates.

The Z-address of a cell ``(x, y)`` is obtained by interleaving the bits of
``y`` and ``x`` (with ``y`` occupying the higher bit of each pair, matching
the ``cid = 2*bit_y + bit_x`` convention of Algorithm 1 in the paper).  The
encoding is exact for arbitrary-precision Python integers; the default
resolution used elsewhere in the library is 21 bits per dimension so that a
full Z-address fits comfortably in a 64-bit machine word, as a C++
implementation would require.
"""

from __future__ import annotations

from typing import Tuple

DEFAULT_BITS = 21


def _check_coordinate(value: int, bits: int, name: str) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    if value >= (1 << bits):
        raise ValueError(f"{name}={value} does not fit in {bits} bits")


def interleave(x: int, y: int, bits: int = DEFAULT_BITS) -> int:
    """Interleave the bits of ``x`` and ``y`` into a single Z-address.

    Bit ``i`` of ``x`` lands on bit ``2*i`` of the result and bit ``i`` of
    ``y`` on bit ``2*i + 1``, so ``y`` is the more significant dimension
    within each bit pair.
    """
    _check_coordinate(x, bits, "x")
    _check_coordinate(y, bits, "y")
    result = 0
    for i in range(bits):
        result |= ((x >> i) & 1) << (2 * i)
        result |= ((y >> i) & 1) << (2 * i + 1)
    return result


def deinterleave(z: int, bits: int = DEFAULT_BITS) -> Tuple[int, int]:
    """Invert :func:`interleave`, recovering ``(x, y)`` from a Z-address."""
    if z < 0:
        raise ValueError(f"Z-address must be non-negative, got {z}")
    x = 0
    y = 0
    for i in range(bits):
        x |= ((z >> (2 * i)) & 1) << i
        y |= ((z >> (2 * i + 1)) & 1) << i
    return (x, y)


def morton_encode(x: int, y: int, bits: int = DEFAULT_BITS) -> int:
    """Alias of :func:`interleave`, named after the Morton code literature."""
    return interleave(x, y, bits)


def morton_decode(z: int, bits: int = DEFAULT_BITS) -> Tuple[int, int]:
    """Alias of :func:`deinterleave`."""
    return deinterleave(z, bits)


def z_less(a: Tuple[int, int], b: Tuple[int, int], bits: int = DEFAULT_BITS) -> bool:
    """Compare two integer cells by Z-order without materialising addresses.

    Equivalent to ``morton_encode(*a) < morton_encode(*b)`` but implemented
    with the "most significant differing bit" trick, which is how production
    systems compare Z-order keys stored as separate columns.
    """
    (ax, ay) = a
    (bx, by) = b
    _check_coordinate(ax, bits, "a.x")
    _check_coordinate(ay, bits, "a.y")
    _check_coordinate(bx, bits, "b.x")
    _check_coordinate(by, bits, "b.y")
    # The dimension whose XOR has the highest set bit decides the order;
    # y is the more significant dimension when the bit positions tie.
    xor_x = ax ^ bx
    xor_y = ay ^ by
    if _less_msb(xor_y, xor_x):
        return ax < bx
    return ay < by


def _less_msb(a: int, b: int) -> bool:
    """Whether the most significant set bit of ``a`` is below that of ``b``."""
    return a < b and a < (a ^ b)
