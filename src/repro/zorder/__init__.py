"""Z-order (Morton) curve utilities.

These routines back the classical, grid-based view of the Z-curve: points
are mapped to integer cell coordinates, the coordinates are bit-interleaved
into a one-dimensional *Z-address*, and range queries on the resulting
sorted order are accelerated with the BIGMIN computation of Tropf and
Herzog.  The base Z-index and WaZI operate directly in the data space
(they never materialise Z-addresses), but the Z-address machinery is needed
for the rank-space baselines the paper discards in Figure 4 (Zpgm) and is a
useful reference implementation for tests of the monotonicity property.
"""

from repro.zorder.morton import (
    deinterleave,
    deinterleave_array,
    interleave,
    interleave_array,
    morton_decode,
    morton_encode,
    z_less,
)
from repro.zorder.bigmin import bigmin, litmax, z_range_overlaps
from repro.zorder.mapper import ZOrderMapper

__all__ = [
    "interleave",
    "interleave_array",
    "deinterleave",
    "deinterleave_array",
    "morton_encode",
    "morton_decode",
    "z_less",
    "bigmin",
    "litmax",
    "z_range_overlaps",
    "ZOrderMapper",
]
