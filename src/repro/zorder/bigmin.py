"""BIGMIN / LITMAX computation for Z-order range queries.

When a range query ``[min_z, max_z]`` (the Z-addresses of its bottom-left
and top-right corners) is scanned in Z-order, large runs of the scanned
interval can lie entirely outside the query rectangle.  Tropf and Herzog's
BIGMIN algorithm computes, for a Z-address ``z`` known to lie outside the
rectangle, the smallest Z-address greater than ``z`` that can lie inside it
— allowing the scan to jump ahead.  LITMAX is the symmetric "largest
address below ``z`` still inside" value.

These routines are used by the rank-space baseline (``Zpgm``) and by tests
that validate the geometric skipping machinery of WaZI against the
classical bit-level machinery.
"""

from __future__ import annotations

from typing import Tuple

from repro.zorder.morton import DEFAULT_BITS, deinterleave, interleave


def bigmin(z_current: int, z_min: int, z_max: int, bits: int = DEFAULT_BITS) -> int:
    """Smallest Z-address in ``[z_min, z_max]``'s rectangle greater than ``z_current``.

    ``z_min`` and ``z_max`` are the Z-addresses of the query rectangle's
    bottom-left and top-right corners.  The returned address is the next
    candidate position a Z-order scan should jump to after encountering
    ``z_current`` outside the rectangle.  The implementation follows the
    standard bit-by-bit case analysis of Tropf and Herzog (1981).
    """
    if not (z_min <= z_max):
        raise ValueError("z_min must not exceed z_max")
    bigmin_value = 0
    total_bits = 2 * bits
    for position in range(total_bits - 1, -1, -1):
        bit_current = (z_current >> position) & 1
        bit_min = (z_min >> position) & 1
        bit_max = (z_max >> position) & 1
        key = (bit_current, bit_min, bit_max)
        if key == (0, 0, 0):
            continue
        if key == (0, 0, 1):
            bigmin_value = _with_dimension_pattern(z_min, position, high_one=True)
            z_max = _with_dimension_pattern(z_max, position, high_one=False)
        elif key == (0, 1, 0):
            raise ValueError("Inconsistent Z-range: min bit above max bit")
        elif key == (0, 1, 1):
            return z_min
        elif key == (1, 0, 0):
            return bigmin_value
        elif key == (1, 0, 1):
            z_min = _with_dimension_pattern(z_min, position, high_one=True)
        elif key == (1, 1, 0):
            raise ValueError("Inconsistent Z-range: min bit above max bit")
        elif key == (1, 1, 1):
            continue
    return bigmin_value


def litmax(z_current: int, z_min: int, z_max: int, bits: int = DEFAULT_BITS) -> int:
    """Largest Z-address in the query rectangle smaller than ``z_current``.

    Symmetric counterpart of :func:`bigmin`, used when scanning backwards.
    """
    if not (z_min <= z_max):
        raise ValueError("z_min must not exceed z_max")
    litmax_value = 0
    total_bits = 2 * bits
    for position in range(total_bits - 1, -1, -1):
        bit_current = (z_current >> position) & 1
        bit_min = (z_min >> position) & 1
        bit_max = (z_max >> position) & 1
        key = (bit_current, bit_min, bit_max)
        if key == (1, 1, 1):
            continue
        if key == (1, 0, 1):
            litmax_value = _with_dimension_pattern(z_max, position, high_one=False)
            z_min = _with_dimension_pattern(z_min, position, high_one=True)
        elif key == (1, 0, 0):
            return z_max
        elif key == (0, 1, 1):
            return litmax_value
        elif key == (0, 0, 1):
            z_max = _with_dimension_pattern(z_max, position, high_one=False)
        elif key == (0, 0, 0):
            continue
        else:
            raise ValueError("Inconsistent Z-range: min bit above max bit")
    return litmax_value


def _with_dimension_pattern(value: int, position: int, high_one: bool) -> int:
    """Rewrite the bits of one dimension at and below ``position``.

    With ``high_one=True`` the bit at ``position`` becomes 1 and the lower
    bits of the same dimension become 0 ("1000..." pattern); otherwise the
    bit at ``position`` becomes 0 and the lower bits become 1 ("0111...").
    Bits of the other dimension are untouched.
    """
    dimension_mask = 0
    bit = position
    while bit >= 0:
        dimension_mask |= 1 << bit
        bit -= 2
    lower_mask = dimension_mask & ((1 << position) - 1)
    value &= ~dimension_mask
    if high_one:
        value |= 1 << position
    else:
        value |= lower_mask
    return value


def z_range_overlaps(z: int, query_min: Tuple[int, int], query_max: Tuple[int, int],
                     bits: int = DEFAULT_BITS) -> bool:
    """Whether the cell with Z-address ``z`` lies inside the integer query box."""
    x, y = deinterleave(z, bits)
    return query_min[0] <= x <= query_max[0] and query_min[1] <= y <= query_max[1]


def z_range_of_rect(query_min: Tuple[int, int], query_max: Tuple[int, int],
                    bits: int = DEFAULT_BITS) -> Tuple[int, int]:
    """Z-addresses of the bottom-left and top-right corners of an integer box."""
    return (
        interleave(query_min[0], query_min[1], bits),
        interleave(query_max[0], query_max[1], bits),
    )
