"""Mapping between continuous data space and the integer Z-order grid.

The classical Z-curve machinery (Morton codes, BIGMIN) operates on integer
grid cells.  Real datasets live in a continuous bounding box, so the
rank-space baselines first quantise coordinates onto a ``2^bits`` per-side
grid.  :class:`ZOrderMapper` packages the quantisation together with the
encoding so callers never juggle scale factors by hand.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry import Point, Rect, points_to_arrays
from repro.zorder.morton import (
    DEFAULT_BITS,
    deinterleave,
    interleave,
    interleave_array,
)


class ZOrderMapper:
    """Quantises points in a bounding box onto a Z-ordered integer grid."""

    def __init__(self, extent: Rect, bits: int = DEFAULT_BITS) -> None:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        self.extent = extent
        self.bits = bits
        self.grid_size = 1 << bits
        # Degenerate extents (all points share a coordinate) still map cleanly
        # by falling back to a unit-length span.
        self._span_x = extent.width if extent.width > 0 else 1.0
        self._span_y = extent.height if extent.height > 0 else 1.0

    # -- quantisation ------------------------------------------------------
    def cell_of(self, point: Point) -> Tuple[int, int]:
        """The integer grid cell containing ``point`` (clamped to the extent)."""
        return (self._quantise_x(point.x), self._quantise_y(point.y))

    def _quantise_x(self, x: float) -> int:
        ratio = (x - self.extent.xmin) / self._span_x
        return self._clamp(int(ratio * (self.grid_size - 1) + 0.5))

    def _quantise_y(self, y: float) -> int:
        ratio = (y - self.extent.ymin) / self._span_y
        return self._clamp(int(ratio * (self.grid_size - 1) + 0.5))

    def _clamp(self, value: int) -> int:
        return max(0, min(self.grid_size - 1, value))

    # -- encoding ------------------------------------------------------------
    def z_address(self, point: Point) -> int:
        """The Z-address of the grid cell containing ``point``."""
        cx, cy = self.cell_of(point)
        return interleave(cx, cy, self.bits)

    def cells_of_array(self, xs: np.ndarray, ys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`cell_of` over coordinate columns.

        Truncation-vs-floor differences against the scalar path only arise
        for values the clamp maps to cell 0 anyway, so the two paths agree
        element-wise.
        """
        grid_max = self.grid_size - 1
        cx = np.clip(
            np.floor((xs - self.extent.xmin) / self._span_x * grid_max + 0.5),
            0, grid_max,
        )
        cy = np.clip(
            np.floor((ys - self.extent.ymin) / self._span_y * grid_max + 0.5),
            0, grid_max,
        )
        return cx.astype(np.uint64), cy.astype(np.uint64)

    def z_addresses(self, points: Sequence[Point]) -> List[int]:
        """Z-addresses of a sequence of points (vectorized when possible)."""
        if self.bits <= 32 and len(points) > 32:
            xs, ys = points_to_arrays(points)
            cx, cy = self.cells_of_array(xs, ys)
            return interleave_array(cx, cy, self.bits).tolist()
        return [self.z_address(p) for p in points]

    def cell_center(self, z: int) -> Point:
        """The data-space center of the grid cell with Z-address ``z``."""
        cx, cy = deinterleave(z, self.bits)
        x = self.extent.xmin + (cx + 0.5) / self.grid_size * self._span_x
        y = self.extent.ymin + (cy + 0.5) / self.grid_size * self._span_y
        return Point(x, y)

    def z_range_of_query(self, query: Rect) -> Tuple[int, int]:
        """Z-addresses of a range query's bottom-left and top-right cells."""
        low = self.z_address(query.bottom_left)
        high = self.z_address(query.top_right)
        return (low, high)

    def integer_query(self, query: Rect) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Integer grid box ``(min_cell, max_cell)`` covering a query rectangle."""
        return (self.cell_of(query.bottom_left), self.cell_of(query.top_right))
