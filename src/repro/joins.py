"""Spatial joins and kNN joins on top of range queries.

Section 6.3 of the paper remarks that, for spatial indexes without a
specialised kNN or join path (all the indexes evaluated), kNN and spatial
joins are decomposed into sets of range queries and therefore inherit the
index's range-query behaviour.  This module implements exactly that
decomposition so downstream applications (and the examples) can run joins
against any index in the library:

* :func:`box_join` — for every point of the probe set, find the indexed
  points within a rectangular window centred on it (an index-nested-loop
  "within distance" join under the Chebyshev / L-infinity metric),
* :func:`radius_join` — the same under the Euclidean metric (window query
  followed by an exact distance filter),
* :func:`knn_join` — for every probe point, its k nearest indexed
  neighbours, using the index's expanding-window kNN.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.geometry import Point, Rect
from repro.interfaces import SpatialIndex

JoinPairs = List[Tuple[Point, Point]]


def box_join(index: SpatialIndex, probes: Sequence[Point], half_width: float,
             half_height: float = None) -> JoinPairs:
    """Join probe points with indexed points inside an axis-aligned window.

    For each probe ``p`` the window is
    ``[p.x - half_width, p.x + half_width] x [p.y - half_height, p.y + half_height]``
    (``half_height`` defaults to ``half_width``).  Returns the list of
    ``(probe, match)`` pairs, in probe order.
    """
    if half_width < 0:
        raise ValueError(f"half_width must be non-negative, got {half_width}")
    if half_height is None:
        half_height = half_width
    if half_height < 0:
        raise ValueError(f"half_height must be non-negative, got {half_height}")
    pairs: JoinPairs = []
    for probe in probes:
        window = Rect(
            probe.x - half_width, probe.y - half_height,
            probe.x + half_width, probe.y + half_height,
        )
        for match in index.range_query(window):
            pairs.append((probe, match))
    return pairs


def radius_join(index: SpatialIndex, probes: Sequence[Point], radius: float) -> JoinPairs:
    """Join probe points with indexed points within Euclidean ``radius``.

    Implemented as a square window query (the index does the heavy lifting)
    followed by an exact distance filter, which is the classic
    filter-and-refine decomposition the paper's remark describes.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    radius_squared = radius * radius
    pairs: JoinPairs = []
    for probe in probes:
        window = Rect(probe.x - radius, probe.y - radius, probe.x + radius, probe.y + radius)
        for candidate in index.range_query(window):
            if candidate.distance_squared(probe) <= radius_squared:
                pairs.append((probe, candidate))
    return pairs


def knn_join(index: SpatialIndex, probes: Sequence[Point], k: int) -> Dict[Point, List[Point]]:
    """For every probe point, its ``k`` nearest indexed neighbours.

    Returns a mapping from probe point to its neighbour list (closest
    first).  Probes that share coordinates share one dictionary entry.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return {probe: index.knn(probe, k) for probe in probes}


def join_selectivity(pairs: Iterable[Tuple[Point, Point]], num_probes: int, num_indexed: int) -> float:
    """Fraction of the probe x indexed cross product present in the join result."""
    if num_probes <= 0 or num_indexed <= 0:
        return 0.0
    return sum(1 for _ in pairs) / (num_probes * num_indexed)
