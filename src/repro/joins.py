"""Spatial joins and kNN joins on top of (batched) range queries.

Section 6.3 of the paper remarks that, for spatial indexes without a
specialised kNN or join path (all the indexes evaluated), kNN and spatial
joins are decomposed into sets of range queries and therefore inherit the
index's range-query behaviour.  This module implements exactly that
decomposition so downstream applications (and the examples) can run joins
against any index in the library:

* :func:`box_join` — for every point of the probe set, find the indexed
  points within a rectangular window centred on it (an index-nested-loop
  "within distance" join under the Chebyshev / L-infinity metric),
* :func:`radius_join` — the same under the Euclidean metric (window query
  followed by an exact distance filter),
* :func:`knn_join` — for every probe point, its k nearest indexed
  neighbours, using the index's expanding-window kNN.

All three helpers submit the whole probe set through the index's batch
entry points (:meth:`~repro.interfaces.SpatialIndex.batch_range_query` /
:meth:`~repro.interfaces.SpatialIndex.batch_knn`), so the Z-index family
answers joins through its vectorized columnar engine while every other
index transparently falls back to the scalar per-probe decomposition.  The
refinement step of :func:`radius_join` filters candidate distances with
NumPy array expressions instead of a per-pair Python loop.  Results are
identical (contents *and* order) to the scalar decomposition.

The ``index`` argument of every helper accepts either a bare
:class:`~repro.interfaces.SpatialIndex` or a
:class:`~repro.engine.SpatialEngine` (which delegates the whole index
protocol); the engine's ``execute(JoinQuery(...))`` dispatch is the
preferred public entry point and routes here.  :func:`knn_join` keeps the
per-probe neighbour collections as lazy
:class:`~repro.results.ResultSet` views, so array-consuming callers never
box them.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Point, Rect, points_to_arrays
from repro.interfaces import SpatialIndex, require_valid_radius
from repro.results import ResultSet

JoinPairs = List[Tuple[Point, Point]]

#: Per-probe kNN-join result: ``(probe, neighbours)`` entries in probe
#: order, the neighbours a lazy :class:`ResultSet` (closest-first).
KnnJoinResult = List[Tuple[Point, ResultSet]]


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")


def _probe_columns(probes: Sequence[Point]):
    """Probe coordinates as float64 columns, rejecting NaN/inf probes.

    A NaN coordinate would otherwise build a window rectangle that every
    containment test silently rejects (all comparisons with NaN are false),
    making the probe vanish from the join result instead of failing loudly.
    """
    xs, ys = points_to_arrays(probes)
    if not (np.isfinite(xs).all() and np.isfinite(ys).all()):
        bad = int(np.flatnonzero(~(np.isfinite(xs) & np.isfinite(ys)))[0])
        raise ValueError(
            f"probe coordinates must be finite, got {probes[bad]!r} at position {bad}"
        )
    return xs, ys


def _probe_windows(
    xs: np.ndarray, ys: np.ndarray, half_width: float, half_height: float
) -> List[Rect]:
    return [
        Rect(x - half_width, y - half_height, x + half_width, y + half_height)
        for x, y in zip(xs.tolist(), ys.tolist())
    ]


def box_join(index: SpatialIndex, probes: Sequence[Point], half_width: float,
             half_height: Optional[float] = None) -> JoinPairs:
    """Join probe points with indexed points inside an axis-aligned window.

    For each probe ``p`` the window is
    ``[p.x - half_width, p.x + half_width] x [p.y - half_height, p.y + half_height]``
    (``half_height`` defaults to ``half_width``).  Returns the list of
    ``(probe, match)`` pairs, in probe order.
    """
    _require_finite("half_width", half_width)
    if half_width < 0:
        raise ValueError(f"half_width must be non-negative, got {half_width}")
    if half_height is None:
        half_height = half_width
    _require_finite("half_height", half_height)
    if half_height < 0:
        raise ValueError(f"half_height must be non-negative, got {half_height}")
    if not probes:
        return []
    xs, ys = _probe_columns(probes)
    windows = _probe_windows(xs, ys, half_width, half_height)
    results = index.batch_range_query(windows)
    return [
        (probe, match)
        for probe, matches in zip(probes, results)
        for match in matches
    ]


def radius_join(index: SpatialIndex, probes: Sequence[Point], radius: float) -> JoinPairs:
    """Join probe points with indexed points within Euclidean ``radius``.

    Implemented as a square window query (the index does the heavy lifting)
    followed by an exact distance filter, which is the classic
    filter-and-refine decomposition the paper's remark describes.  The
    refinement masks each probe's candidate distances in one vectorized
    expression, with the same float arithmetic (and therefore the same
    accept/reject decisions) as ``Point.distance_squared``.
    """
    require_valid_radius(radius)
    if not probes:
        return []
    # batch_radius_query validates probe coordinates (require_finite_center).
    results = index.batch_radius_query(probes, radius)
    return [
        (probe, match)
        for probe, matches in zip(probes, results)
        for match in matches
    ]


def knn_join(index: SpatialIndex, probes: Sequence[Point], k: int) -> KnnJoinResult:
    """For every probe point, its ``k`` nearest indexed neighbours.

    Returns one ``(probe, neighbours)`` entry per probe, in probe order,
    with neighbours closest-first.  Every probe keeps its own entry:
    earlier revisions returned a ``dict`` keyed by probe, which silently
    collapsed duplicate-coordinate probes into one entry and made pair
    counts (and :func:`join_selectivity`) wrong.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not probes:
        return []
    # batch_knn validates probe coordinates (require_finite_center).
    neighbour_lists = index.batch_knn(probes, k)
    return list(zip(probes, neighbour_lists))


def knn_join_pairs(index: SpatialIndex, probes: Sequence[Point], k: int) -> JoinPairs:
    """:func:`knn_join` flattened to ``(probe, neighbour)`` pairs.

    Convenient for feeding :func:`join_selectivity`, which counts pairs.
    """
    return [
        (probe, neighbour)
        for probe, neighbours in knn_join(index, probes, k)
        for neighbour in neighbours
    ]


def join_selectivity(pairs: Iterable[Tuple[Point, Point]], num_probes: int, num_indexed: int) -> float:
    """Fraction of the probe x indexed cross product present in the join result."""
    if num_probes <= 0 or num_indexed <= 0:
        return 0.0
    return sum(1 for _ in pairs) / (num_probes * num_indexed)
