# repro-lint: public-api
"""The service error taxonomy, mapped onto HTTP status codes.

Every failure the JSON API can produce is one of these exception types;
the handler catches :class:`ServiceError` and renders the structured
body ``{"error": {"code": ..., "status": ..., "message": ...}}``.
Anything else escaping a handler is a bug and surfaces as a 500
``internal`` error, so clients can always parse the body.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "ServiceError",
    "BadRequestError",
    "NotFoundError",
    "MethodNotAllowedError",
    "ConflictError",
    "UnsupportedError",
    "InternalError",
]


class ServiceError(Exception):
    """Base class: a failure with an HTTP status and a stable error code."""

    status = 500
    code = "internal"

    def to_payload(self) -> Dict[str, Dict[str, object]]:
        return {
            "error": {
                "code": self.code,
                "status": self.status,
                "message": str(self),
            }
        }


class BadRequestError(ServiceError):
    """Malformed JSON, an unknown plan kind, or invalid plan parameters."""

    status = 400
    code = "bad-request"


class NotFoundError(ServiceError):
    """No route at the requested path."""

    status = 404
    code = "not-found"


class MethodNotAllowedError(ServiceError):
    """The route exists but not for this HTTP method."""

    status = 405
    code = "method-not-allowed"


class ConflictError(ServiceError):
    """A lifecycle precondition failed (e.g. adapt with nothing observed)."""

    status = 409
    code = "conflict"


class UnsupportedError(ServiceError):
    """The backend cannot perform the operation (e.g. adapt a sharded one)."""

    status = 501
    code = "unsupported"


class InternalError(ServiceError):
    """An unexpected failure inside the service."""

    status = 500
    code = "internal"
