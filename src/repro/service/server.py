# repro-lint: public-api
"""A stdlib HTTP JSON API over a :class:`~repro.engine.SpatialEngine`.

The service exposes the engine's whole serving lifecycle over HTTP:

* ``POST /query``  — execute one plan (``{"kind": "range", ...}``) or a
  batch (``{"queries": [...]}``), with ``count_only`` / ``limit``.
* ``GET /stats``   — index identity, cost counters, plan-cache stats,
  workload-log sizes, process RSS.
* ``GET /metrics`` — the attached registry in Prometheus text format.
* ``POST /advise`` — score the current layout against observed traffic.
* ``POST /adapt``  — re-derive the layout and hot-swap it atomically.
* ``POST /ingest`` — absorb inserts/deletes into the online delta buffer
  (409 unless the engine is online, see :meth:`SpatialEngine.online`).
* ``GET/POST /maintenance`` — the maintenance loop's status, or drive it
  (``run_once`` / ``start`` / ``stop``; POST is 409 when not online).
* ``GET /healthz`` — liveness.

Failures follow the :mod:`repro.service.errors` taxonomy, so clients
always get ``{"error": {"code", "status", "message"}}`` bodies.

Concurrency: the transport is a ``ThreadingHTTPServer`` (slow readers
don't block the accept loop), but query execution, advise and adapt are
serialized under one lock.  That is what makes the exported metrics
*exact* — per-kind histogram counts equal queries served, and the
scan-cost totals reconcile to the engine's CostCounters with equality,
not approximately — and it matches the engine's own thread-safety
contract.  The adapt hot-swap itself is a single attribute rebind
(atomic under the GIL), so even requests that slipped in before the
lock see either the old or the new layout, never a mix; retained
ResultSets stay valid via the Z-index generation counters.

All JSON rendering goes through :func:`render_json_bytes` — sorted keys,
``repr`` floats (exact float64 round-trip) — so a response body can be
compared byte-for-byte against an in-process twin; the service benchmark
does exactly that.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Union
from urllib.parse import urlsplit

from repro.engine import SpatialEngine, as_engine
from repro.geometry import Point, Rect
from repro.obs import MetricsRegistry, render_prometheus
from repro.query import KnnQuery, PointQuery, Query, RadiusQuery, RangeQuery
from repro.results import ResultSet
from repro.service.errors import (
    BadRequestError,
    ConflictError,
    InternalError,
    MethodNotAllowedError,
    NotFoundError,
    ServiceError,
    UnsupportedError,
)
from repro.serving.workers import process_rss

__all__ = ["SpatialService", "ServiceServer", "render_json_bytes", "serve"]


def render_json_bytes(payload: object) -> bytes:
    """A deterministic JSON encoding: sorted keys, exact float round-trip.

    Two identical payloads always render to identical bytes, which is
    what lets the service benchmark assert HTTP responses are
    *byte-identical* to in-process execution.
    """
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def _require_number(spec: Dict, key: str) -> float:
    value = spec.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise BadRequestError(f"{key!r} must be a number, got {value!r}")
    return float(value)


def _require_pair(spec: Dict, key: str) -> Point:
    value = spec.get(key)
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in value)
    ):
        raise BadRequestError(f"{key!r} must be a [x, y] pair, got {value!r}")
    return Point(float(value[0]), float(value[1]))


class SpatialService:
    """The transport-independent request handlers behind the HTTP server.

    Wraps an engine (or a bare index / sharded backend — anything
    :func:`~repro.engine.as_engine` accepts), attaches a metrics
    registry to it (and, for a sharded backend, to the dispatcher), and
    exposes one ``handle_*`` method per endpoint, each taking and
    returning plain JSON-shaped data.  The HTTP layer is a thin shell
    over these, so tests and the CLI's local mode call them directly.
    """

    def __init__(
        self,
        engine: Union[SpatialEngine, object],
        *,
        registry: Optional[MetricsRegistry] = None,
        record: bool = True,
        verbose: bool = False,
    ) -> None:
        self.engine = as_engine(engine)
        if registry is None:
            registry = (
                self.engine.metrics.registry
                if self.engine.metrics is not None
                else MetricsRegistry()
            )
        self.registry = registry
        if self.engine.metrics is None:
            self.engine.attach_metrics(registry)
        index = self.engine.index
        if getattr(index, "metrics", None) is None and hasattr(
            index, "attach_metrics"
        ):
            index.attach_metrics(registry)
        # An engine taken online before the service attached its registry
        # has a maintenance loop with no metrics sink — backfill it so
        # /ingest and /maintenance observations land in /metrics.
        loop = getattr(self.engine, "online_loop", None)
        if loop is not None and loop.metrics is None:
            from repro.obs.instrument import OnlineMetrics

            loop.metrics = OnlineMetrics(registry)
        if record:
            self.engine.start_recording()
        self.verbose = verbose
        # Serializes execute/advise/adapt: the engine's thread-safety
        # contract, and the reason /metrics reconciles exactly.
        self._lock = threading.Lock()

    # -- plan parsing --------------------------------------------------
    def parse_plan(self, spec: object) -> Query:
        """One JSON query spec -> a typed plan (BadRequestError on junk)."""
        if not isinstance(spec, dict):
            raise BadRequestError(f"query spec must be an object, got {spec!r}")
        kind = spec.get("kind")
        try:
            if kind == "range":
                rect = spec.get("rect")
                if not isinstance(rect, (list, tuple)) or len(rect) != 4:
                    raise BadRequestError(
                        f"'rect' must be [xmin, ymin, xmax, ymax], got {rect!r}"
                    )
                return RangeQuery(Rect(*(float(v) for v in rect)))
            if kind == "knn":
                k = spec.get("k")
                if not isinstance(k, int) or isinstance(k, bool):
                    raise BadRequestError(f"'k' must be an integer, got {k!r}")
                initial_radius = None
                if spec.get("initial_radius") is not None:
                    initial_radius = _require_number(spec, "initial_radius")
                return KnnQuery(_require_pair(spec, "center"), k, initial_radius)
            if kind == "radius":
                return RadiusQuery(
                    _require_pair(spec, "center"), _require_number(spec, "radius")
                )
            if kind == "point":
                return PointQuery(_require_pair(spec, "point"))
        except ServiceError:
            raise
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"invalid {kind} plan: {exc}") from exc
        raise BadRequestError(
            f"unknown plan kind {kind!r} (expected range/knn/radius/point)"
        )

    @staticmethod
    def _parse_limit(payload: Dict) -> Optional[int]:
        limit = payload.get("limit")
        if limit is None:
            return None
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise BadRequestError(f"'limit' must be a positive integer, got {limit!r}")
        return limit

    @staticmethod
    def _encode_result(value: object) -> Dict[str, object]:
        if isinstance(value, bool):
            return {"found": value}
        if isinstance(value, int):
            return {"count": value}
        if isinstance(value, ResultSet):
            xs, ys = value.as_arrays()
            return {"count": len(xs), "xs": xs.tolist(), "ys": ys.tolist()}
        raise InternalError(f"unencodable result type {type(value).__name__}")

    # -- endpoint handlers ---------------------------------------------
    def handle_query(self, payload: Dict) -> Dict[str, object]:
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        count_only = bool(payload.get("count_only", False))
        limit = self._parse_limit(payload)
        specs = payload.get("queries")
        if specs is not None:
            if not isinstance(specs, list):
                raise BadRequestError(f"'queries' must be a list, got {specs!r}")
            plans = [self.parse_plan(spec) for spec in specs]
            with self._lock:
                values = self.engine.execute_many(
                    plans, count_only=count_only, limit=limit
                )
            return {"results": [self._encode_result(v) for v in values]}
        plan = self.parse_plan(payload)
        with self._lock:
            value = self.engine.execute(plan, count_only=count_only, limit=limit)
        return {"result": self._encode_result(value)}

    def handle_stats(self) -> Dict[str, object]:
        engine = self.engine
        log = engine.workload_log
        stats: Dict[str, object] = {
            "index": engine.name,
            "num_points": len(engine),
            "size_bytes": engine.size_bytes(),
            "counters": engine.counters.snapshot(),
            "recording": engine.is_recording,
            "observed": {
                "ranges": log.num_ranges if log is not None else 0,
                "knn": log.num_knn if log is not None else 0,
                "radius": log.num_radius if log is not None else 0,
            },
            "process_rss_bytes": process_rss(),
        }
        if engine.plan_cache is not None:
            stats["plan_cache"] = engine.plan_cache.stats.snapshot()
        num_shards = getattr(engine.index, "num_shards", None)
        if num_shards is not None:
            stats["num_shards"] = num_shards
            stats["shard_busy_seconds"] = list(engine.index.shard_busy_seconds)
        return stats

    def handle_advise(self, payload: Dict) -> Dict[str, object]:
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        kwargs: Dict[str, object] = {}
        if payload.get("min_improvement") is not None:
            kwargs["min_improvement"] = _require_number(payload, "min_improvement")
        if payload.get("expected_future_queries") is not None:
            kwargs["expected_future_queries"] = _require_number(
                payload, "expected_future_queries"
            )
        sample = payload.get("sample")
        if sample is not None:
            if not isinstance(sample, int) or isinstance(sample, bool) or sample < 1:
                raise BadRequestError(
                    f"'sample' must be a positive integer, got {sample!r}"
                )
            kwargs["sample"] = sample
        try:
            with self._lock:
                report = self.engine.advise(**kwargs)
        except ValueError as exc:
            raise ConflictError(str(exc)) from exc
        except TypeError as exc:
            raise UnsupportedError(str(exc)) from exc
        return {"report": report.to_dict(), "rendered": report.render()}

    def handle_adapt(self, payload: Dict) -> Dict[str, object]:
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        tune = payload.get("tune_leaf_capacity", True)
        if not isinstance(tune, bool):
            raise BadRequestError(
                f"'tune_leaf_capacity' must be a boolean, got {tune!r}"
            )
        engine = self.engine
        try:
            with self._lock:
                engine.adapt(tune_leaf_capacity=tune)
        except ValueError as exc:
            raise ConflictError(str(exc)) from exc
        except TypeError as exc:
            raise UnsupportedError(str(exc)) from exc
        return {
            "adapted": True,
            "index": engine.name,
            "leaf_capacity": getattr(engine.index, "leaf_capacity", None),
            "seconds": engine._build_seconds,
        }

    # -- online lifecycle (repro.online) -------------------------------
    def _require_online(self):
        """The engine's maintenance loop, or 409 when not online."""
        loop = self.engine.online_loop
        if not self.engine.is_online or loop is None:
            raise ConflictError(
                "engine is not online — start the service with --online "
                "(or call engine.online()) to enable ingest and maintenance"
            )
        return loop

    @staticmethod
    def _parse_coord_list(payload: Dict, key: str) -> list:
        rows = payload.get(key, [])
        if rows is None:
            return []
        if not isinstance(rows, list):
            raise BadRequestError(f"'{key}' must be a list of [x, y] pairs")
        points = []
        for row in rows:
            if not isinstance(row, (list, tuple)) or len(row) != 2:
                raise BadRequestError(
                    f"'{key}' entries must be [x, y] pairs, got {row!r}"
                )
            try:
                points.append(Point(float(row[0]), float(row[1])))
            except (TypeError, ValueError) as exc:
                raise BadRequestError(f"invalid {key} entry {row!r}: {exc}") from exc
        return points

    def handle_ingest(self, payload: Dict) -> Dict[str, object]:
        """Absorb inserts/deletes into the online index's delta buffer."""
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        loop = self._require_online()
        inserts = self._parse_coord_list(payload, "insert")
        deletes = self._parse_coord_list(payload, "delete")
        if not inserts and not deletes:
            raise BadRequestError("nothing to ingest: provide 'insert' and/or 'delete'")
        index = self.engine.index
        deleted = 0
        with self._lock:
            for point in inserts:
                try:
                    index.insert(point)
                except ValueError as exc:
                    raise BadRequestError(str(exc)) from exc
            for point in deletes:
                if index.delete(point):
                    deleted += 1
        metrics = loop.metrics
        if metrics is not None:
            if inserts:
                metrics.observe_ingest("insert", len(inserts))
            if deleted:
                metrics.observe_ingest("delete", deleted)
            metrics.observe_delta(index.delta_stats())
        return {
            "inserted": len(inserts),
            "deleted": deleted,
            "delete_misses": len(deletes) - deleted,
            "num_points": len(index),
            "delta": index.delta_stats(),
        }

    def handle_maintenance_status(self) -> Dict[str, object]:
        """The maintenance loop's status (``online: false`` when offline)."""
        loop = self.engine.online_loop
        if not self.engine.is_online or loop is None:
            return {"online": False}
        status = loop.status()
        status["online"] = True
        return status

    def handle_maintenance(self, payload: Dict) -> Dict[str, object]:
        """Drive the maintenance loop: run_once (default), start, or stop."""
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        loop = self._require_online()
        action = payload.get("action", "run_once")
        if action == "run_once":
            with self._lock:
                summary = loop.run_once()
            body: Dict[str, object] = {"action": action, "summary": summary}
        elif action == "start":
            loop.start()
            body = {"action": action}
        elif action == "stop":
            loop.stop()
            body = {"action": action}
        else:
            raise BadRequestError(
                f"unknown action {action!r} (expected run_once/start/stop)"
            )
        status = loop.status()
        status["online"] = True
        body["status"] = status
        return body

    def handle_healthz(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "index": self.engine.name,
            "num_points": len(self.engine),
        }

    def metrics_text(self) -> str:
        return render_prometheus(self.registry)


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: SpatialService

    def handle_error(self, request, client_address) -> None:
        # A client hanging up mid-response (scraper timeout, curl | head)
        # is normal operation, not a server error worth a traceback.
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            return
        super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: object) -> None:
        self._send(status, render_json_bytes(payload), "application/json")

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        path = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            if path in ("/healthz", "/stats", "/metrics"):
                if method != "GET":
                    raise MethodNotAllowedError(f"{path} only supports GET")
                if path == "/metrics":
                    self._send(
                        200,
                        service.metrics_text().encode("utf-8"),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                    return
                handler = (
                    service.handle_healthz if path == "/healthz"
                    else service.handle_stats
                )
                self._send_json(200, handler())
                return
            if path == "/maintenance" and method == "GET":
                self._send_json(200, service.handle_maintenance_status())
                return
            if path in ("/query", "/advise", "/adapt", "/ingest", "/maintenance"):
                if method != "POST":
                    raise MethodNotAllowedError(f"{path} only supports POST")
                payload = self._read_json()
                handler = {
                    "/query": service.handle_query,
                    "/advise": service.handle_advise,
                    "/adapt": service.handle_adapt,
                    "/ingest": service.handle_ingest,
                    "/maintenance": service.handle_maintenance,
                }[path]
                self._send_json(200, handler(payload))
                return
            raise NotFoundError(f"no route at {path!r}")
        except ServiceError as exc:
            self._send_json(exc.status, exc.to_payload())
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, InternalError(f"{type(exc).__name__}: {exc}").to_payload())

    def _read_json(self) -> Dict:
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError as exc:
            raise BadRequestError("invalid Content-Length header") from exc
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}") from exc

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.service.verbose:
            super().log_message(format, *args)


class ServiceServer:
    """The HTTP shell around a :class:`SpatialService`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`url`).
    Use :meth:`serve_forever` for a foreground server (the CLI), or
    :meth:`start` / :meth:`close` for a daemon-thread one (tests,
    benchmarks).
    """

    def __init__(
        self, service: SpatialService, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._httpd = _ServiceHTTPServer((host, port), _Handler)
        self._httpd.service = service
        self.service = service
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def start(self) -> "ServiceServer":
        thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        thread.start()
        self._thread = thread
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(
    engine: Union[SpatialEngine, object],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[MetricsRegistry] = None,
    record: bool = True,
    verbose: bool = False,
) -> ServiceServer:
    """Wrap ``engine`` in a service and bind (but don't run) its server."""
    service = SpatialService(
        engine, registry=registry, record=record, verbose=verbose
    )
    return ServiceServer(service, host=host, port=port)
