"""HTTP serving front end: JSON query API + observability endpoints."""

from repro.service.errors import (
    BadRequestError,
    ConflictError,
    InternalError,
    MethodNotAllowedError,
    NotFoundError,
    ServiceError,
    UnsupportedError,
)
from repro.service.server import (
    ServiceServer,
    SpatialService,
    render_json_bytes,
    serve,
)

__all__ = [
    "BadRequestError",
    "ConflictError",
    "InternalError",
    "MethodNotAllowedError",
    "NotFoundError",
    "ServiceError",
    "ServiceServer",
    "SpatialService",
    "UnsupportedError",
    "render_json_bytes",
    "serve",
]
